#!/usr/bin/env bash
# Build and run the microbenchmark suite. Each bench_* binary prints the
# usual google-benchmark console table and writes BENCH_<name>.json (schema:
# EXPERIMENTS.md) into OUT_DIR for machine tracking across PRs. Observability
# artifacts the binaries emit alongside (*.trace.jsonl traces and
# metrics_*.prom Prometheus text files, e.g. from
# exp_observability_overhead) are collected into OUT_DIR too.
#
# Usage:
#   scripts/bench.sh                  # all benches
#   scripts/bench.sh bench_patterns   # just one
#   scripts/bench.sh exp_observability_overhead   # obs overhead + artifacts
#
# Environment:
#   BUILD_DIR  cmake build tree            (default: build)
#   OUT_DIR    where artifacts land        (default: $BUILD_DIR/bench-results)
#   BENCH_ARGS extra google-benchmark args (e.g. --benchmark_repetitions=5)
#   REDUNDANCY_THREADS  shared-pool size override, recorded in the JSON
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-${BUILD_DIR}/bench-results}"

cmake -S . -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
  benches=(bench_patterns bench_voters bench_checkpoint bench_vm
           bench_wrappers bench_sql bench_rollback)
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" -- "${benches[@]}" tracetool

mkdir -p "${OUT_DIR}"
repo_root="$(pwd)"
for b in "${benches[@]}"; do
  echo "=== ${b} ==="
  # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
  (cd "${OUT_DIR}" && "${repo_root}/${BUILD_DIR}/bench/${b}" ${BENCH_ARGS:-})
done
# Every recorded trace gets the tracetool treatment: per-technique
# reliability attribution, critical-path latency decomposition, and the
# SLO/error-budget report, as <trace>.report.md next to the trace.
for trace in "${OUT_DIR}"/*.trace.jsonl; do
  [ -e "${trace}" ] || continue
  report="${trace%.trace.jsonl}.report.md"
  echo "=== tracetool report $(basename "${trace}") ==="
  "${BUILD_DIR}/tools/tracetool" report --out="${report}" "${trace}"
done

artifacts="$(cd "${OUT_DIR}" &&
             ls BENCH_*.json ./*.trace.jsonl ./*.report.md metrics_*.prom \
               2>/dev/null || true)"
echo "results in ${OUT_DIR}:"
echo "${artifacts:-  (none)}"
