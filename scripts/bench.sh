#!/usr/bin/env bash
# Build and run the microbenchmark suite. Each bench_* binary prints the
# usual google-benchmark console table and writes BENCH_<name>.json (schema:
# EXPERIMENTS.md) into OUT_DIR for machine tracking across PRs.
#
# Usage:
#   scripts/bench.sh                  # all benches
#   scripts/bench.sh bench_patterns   # just one
#
# Environment:
#   BUILD_DIR  cmake build tree            (default: build)
#   OUT_DIR    where BENCH_*.json land     (default: $BUILD_DIR/bench-results)
#   BENCH_ARGS extra google-benchmark args (e.g. --benchmark_repetitions=5)
#   REDUNDANCY_THREADS  shared-pool size override, recorded in the JSON
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-${BUILD_DIR}/bench-results}"

cmake -S . -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
  benches=(bench_patterns bench_voters bench_checkpoint bench_vm
           bench_wrappers bench_sql bench_rollback)
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" -- "${benches[@]}"

mkdir -p "${OUT_DIR}"
repo_root="$(pwd)"
for b in "${benches[@]}"; do
  echo "=== ${b} ==="
  # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
  (cd "${OUT_DIR}" && "${repo_root}/${BUILD_DIR}/bench/${b}" ${BENCH_ARGS:-})
done
echo "results: ${OUT_DIR}/BENCH_*.json"
