#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against committed baselines.

Every BENCH_<name>.json under the baseline directory must have a matching
fresh file in the results directory, and every benchmark series in the
baseline must still exist. All numeric metrics shared by baseline and
candidate are compared in a per-metric delta table; the pass/fail gate is
ops_per_sec (throughput must not drop more than --threshold below the
recorded value — improvements and small wobble pass). Latency metrics
(latency_ns_*) are direction-aware in the table (lower is better) but
report-only: percentile tails are too machine-noisy to gate on.

A missing file, a vanished series, or an ops_per_sec regression beyond the
threshold fails the run.

Baselines are machine-specific throughput snapshots: refresh them
(--update) whenever the benchmark machine or the intended performance
envelope changes, and commit the result so the trajectory is reviewable.

Usage:
  scripts/bench_compare.py [results_dir]
      [--baselines bench/baselines] [--threshold 0.20] [--update]

Exit codes: 0 ok, 1 regression/missing data, 2 usage or I/O error.
"""

import argparse
import json
import pathlib
import shutil
import sys

# Metrics excluded from the delta table: identity/shape fields, not
# performance measurements.
NON_METRIC_KEYS = {"name", "repetitions", "threads"}

# The only gated metric. Everything else in the table is report-only.
GATED_METRIC = "ops_per_sec"


def load_series(path):
    """Map benchmark name -> {metric: value} for one BENCH_*.json file."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    series = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        if name is None:
            continue
        metrics = {}
        for key, value in bench.items():
            if key in NON_METRIC_KEYS:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[key] = float(value)
        series[name] = metrics
    return series


def lower_is_better(metric):
    # Latency tails and the syscalls-per-response family (sends_per_response,
    # enters_per_response, ...) all improve downward.
    return metric.startswith("latency") or metric.endswith("_per_response")


def fmt(value):
    # Ratios like sends_per_response live well below 1.0; one decimal place
    # would round them to 0.0 and hide the signal.
    return f"{value:>14.4f}" if abs(value) < 10.0 else f"{value:>14.1f}"


def compare_series(file_name, name, base, fresh, threshold, failures):
    """Print the per-metric delta table for one series; record failures."""
    for metric in sorted(set(base) & set(fresh)):
        base_v, fresh_v = base[metric], fresh[metric]
        delta = (fresh_v - base_v) / base_v if base_v else 0.0
        improved = delta < 0.0 if lower_is_better(metric) else delta > 0.0
        gated = metric == GATED_METRIC
        regressed = gated and fresh_v < base_v * (1.0 - threshold)
        if regressed:
            verdict = "REGRESSION"
        elif not gated:
            verdict = "better" if improved and abs(delta) > 1e-9 else "info"
        else:
            verdict = "ok"
        print(f"  {name:<26} {metric:<17} {fmt(base_v)} -> "
              f"{fmt(fresh_v)}  ({delta:+7.1%})  {verdict}")
        if regressed:
            failures.append(
                f"{file_name}: '{name}' {metric} {fresh_v:.0f} is "
                f"{-delta:.1%} below baseline {base_v:.0f} "
                f"(threshold {threshold:.0%})")
    for metric in sorted(set(base) - set(fresh)):
        print(f"  {name:<26} {metric:<17} only in baseline (skipped)")
    for metric in sorted(set(fresh) - set(base)):
        print(f"  {name:<26} {metric:<17} new metric (no baseline)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results_dir", nargs="?", default="build/bench",
                        help="directory holding fresh BENCH_*.json files")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline JSON files")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional ops_per_sec drop (0.20 = 20%%)")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh results over the baselines and exit")
    args = parser.parse_args()

    results = pathlib.Path(args.results_dir)
    baselines = pathlib.Path(args.baselines)
    if not results.is_dir():
        print(f"bench_compare: results dir {results} not found", file=sys.stderr)
        return 2
    if not baselines.is_dir():
        print(f"bench_compare: baseline dir {baselines} not found",
              file=sys.stderr)
        return 2

    if args.update:
        updated = 0
        for fresh in sorted(results.glob("BENCH_*.json")):
            shutil.copy(fresh, baselines / fresh.name)
            print(f"updated {baselines / fresh.name}")
            updated += 1
        if updated == 0:
            print(f"bench_compare: no BENCH_*.json in {results}",
                  file=sys.stderr)
            return 2
        return 0

    baseline_files = sorted(baselines.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"bench_compare: no baselines in {baselines}", file=sys.stderr)
        return 2

    failures = []
    for base_path in baseline_files:
        fresh_path = results / base_path.name
        if not fresh_path.is_file():
            failures.append(f"{base_path.name}: no fresh result in {results}")
            continue
        base = load_series(base_path)
        fresh = load_series(fresh_path)
        print(f"== {base_path.name}")
        for name, base_metrics in sorted(base.items()):
            if name not in fresh:
                failures.append(f"{base_path.name}: series '{name}' vanished")
                continue
            compare_series(base_path.name, name, base_metrics, fresh[name],
                           args.threshold, failures)
        for name in sorted(set(fresh) - set(base)):
            print(f"  {name:<26} NEW SERIES (no baseline) — "
                  "run --update to adopt")

    # Whole files present in the fresh run but absent from the baselines:
    # a warning row per series, never a failure — new benchmarks must be
    # able to land before their baselines are recorded.
    known = {p.name for p in baseline_files}
    for fresh_path in sorted(results.glob("BENCH_*.json")):
        if fresh_path.name in known:
            continue
        print(f"== {fresh_path.name} (no baseline file)")
        for name in sorted(load_series(fresh_path)):
            print(f"  {name:<26} NEW SERIES (no baseline) — "
                  "run --update to adopt")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
