#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against committed baselines.

Every BENCH_<name>.json under the baseline directory must have a matching
fresh file in the results directory, and every benchmark series in the
baseline must still exist with ops_per_sec no more than --threshold below
the recorded value. Improvements and small wobble pass; a missing file,
a vanished series, or a regression beyond the threshold fails the run.

Baselines are machine-specific throughput snapshots: refresh them
(--update) whenever the benchmark machine or the intended performance
envelope changes, and commit the result so the trajectory is reviewable.

Usage:
  scripts/bench_compare.py [results_dir]
      [--baselines bench/baselines] [--threshold 0.20] [--update]

Exit codes: 0 ok, 1 regression/missing data, 2 usage or I/O error.
"""

import argparse
import json
import pathlib
import shutil
import sys


def load_series(path):
    """Map benchmark name -> ops_per_sec for one BENCH_*.json file."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    series = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        ops = bench.get("ops_per_sec")
        if name is not None and isinstance(ops, (int, float)):
            series[name] = float(ops)
    return series


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results_dir", nargs="?", default="build/bench",
                        help="directory holding fresh BENCH_*.json files")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline JSON files")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional ops_per_sec drop (0.20 = 20%%)")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh results over the baselines and exit")
    args = parser.parse_args()

    results = pathlib.Path(args.results_dir)
    baselines = pathlib.Path(args.baselines)
    if not results.is_dir():
        print(f"bench_compare: results dir {results} not found", file=sys.stderr)
        return 2
    if not baselines.is_dir():
        print(f"bench_compare: baseline dir {baselines} not found",
              file=sys.stderr)
        return 2

    if args.update:
        updated = 0
        for fresh in sorted(results.glob("BENCH_*.json")):
            shutil.copy(fresh, baselines / fresh.name)
            print(f"updated {baselines / fresh.name}")
            updated += 1
        if updated == 0:
            print(f"bench_compare: no BENCH_*.json in {results}",
                  file=sys.stderr)
            return 2
        return 0

    baseline_files = sorted(baselines.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"bench_compare: no baselines in {baselines}", file=sys.stderr)
        return 2

    failures = []
    for base_path in baseline_files:
        fresh_path = results / base_path.name
        if not fresh_path.is_file():
            failures.append(f"{base_path.name}: no fresh result in {results}")
            continue
        base = load_series(base_path)
        fresh = load_series(fresh_path)
        print(f"== {base_path.name}")
        for name, base_ops in sorted(base.items()):
            if name not in fresh:
                failures.append(f"{base_path.name}: series '{name}' vanished")
                continue
            fresh_ops = fresh[name]
            delta = (fresh_ops - base_ops) / base_ops if base_ops else 0.0
            floor = base_ops * (1.0 - args.threshold)
            verdict = "ok" if fresh_ops >= floor else "REGRESSION"
            print(f"  {name:<32} {base_ops:>14.0f} -> {fresh_ops:>14.0f} "
                  f"ops/s  ({delta:+6.1%})  {verdict}")
            if fresh_ops < floor:
                failures.append(
                    f"{base_path.name}: '{name}' {fresh_ops:.0f} ops/s is "
                    f"{-delta:.1%} below baseline {base_ops:.0f} "
                    f"(threshold {args.threshold:.0%})")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
