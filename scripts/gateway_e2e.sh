#!/usr/bin/env bash
# End-to-end drill for the net::Gateway front door: start the long-running
# gateway_demo host, drive real traffic through every demo route, verify
# the in-process /metrics, /healthz, /slo and /debug/flight endpoints
# answer through the same socket (and that the SLO snapshot and flight
# dump parse), then run the exp_gateway load generator for the
# machine-readable BENCH_exp_gateway.json artifact.
#
# Usage:
#   scripts/gateway_e2e.sh
#
# Environment:
#   BUILD_DIR  cmake build tree                 (default: build)
#   OUT_DIR    where artifacts land             (default: $BUILD_DIR/gateway-e2e)
#   PORT       gateway_demo listen port         (default: 8217)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-${BUILD_DIR}/gateway-e2e}"
PORT="${PORT:-8217}"

mkdir -p "${OUT_DIR}"
repo_root="$(pwd)"

# Short SLO epochs so the drill sees at least one window rotation (and the
# slo:<route> verdicts that feed /healthz) before it scrapes.
REDUNDANCY_GATEWAY_PORT="${PORT}" REDUNDANCY_GATEWAY_LINGER_MS=120000 \
  REDUNDANCY_SLO_EPOCH_MS=500 \
  "${BUILD_DIR}/examples/gateway_demo" > "${OUT_DIR}/demo.log" & server=$!
trap 'kill "${server}" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  curl -sf "localhost:${PORT}/healthz" -o "${OUT_DIR}/healthz.txt" && break
  sleep 0.2
done

# The host must announce which event-loop backend the probe/env knob chose
# (uring on capable kernels, else epoll, else poll) — operators reading the
# log must never have to guess the I/O path.
grep -qE 'backend (uring|epoll|poll)' "${OUT_DIR}/demo.log"

# Drive traffic through every route; answers must be exact.
test "$(curl -sf "localhost:${PORT}/echo?x=41")" = "41"
fast_a="$(curl -sf "localhost:${PORT}/fast?x=7")"
fast_b="$(curl -sf "localhost:${PORT}/fast?x=7")"   # cache hit, same answer
vote="$(curl -sf "localhost:${PORT}/vote?x=7")"     # majority of 3 variants
test "${fast_a}" = "${fast_b}"
test "${fast_a}" = "${vote}"
for i in $(seq 1 100); do
  curl -sf "localhost:${PORT}/fast?x=${i}" > /dev/null
done
curl -s -o /dev/null -w '%{http_code}' "localhost:${PORT}/nope" | grep -q 404

# Let one SLO epoch close so the windowed rows and the slo:<route>
# verdicts behind /healthz have something to show.
sleep 1.2

# Operational endpoints, through the same front door, after real load.
curl -sf "localhost:${PORT}/metrics" -o "${OUT_DIR}/metrics_gateway.prom"
grep -q 'gateway_requests' "${OUT_DIR}/metrics_gateway.prom"
grep -q 'gateway_accepted' "${OUT_DIR}/metrics_gateway.prom"
grep -q 'technique_requests_total{technique="gateway_fast"}' \
  "${OUT_DIR}/metrics_gateway.prom"
curl -sf "localhost:${PORT}/healthz" -o "${OUT_DIR}/healthz.txt"
grep -q 'error_rate=' "${OUT_DIR}/healthz.txt"

# Live SLO snapshot: the demo registers /fast and /vote by default, and the
# traffic above must show up in the windowed rows.
curl -sf "localhost:${PORT}/slo" -o "${OUT_DIR}/slo_gateway.jsonl"
grep -q '"type":"slo_window"' "${OUT_DIR}/slo_gateway.jsonl"
grep -q '"type":"slo_class"' "${OUT_DIR}/slo_gateway.jsonl"
grep -q '"class":"/fast"' "${OUT_DIR}/slo_gateway.jsonl"

# Black box: trigger a flight dump through the front door; the served body
# is the same JSONL a crash handler would append.
curl -sf "localhost:${PORT}/debug/flight" -o "${OUT_DIR}/flight_gateway.jsonl"
grep -q '"type":"flight_header"' "${OUT_DIR}/flight_gateway.jsonl"
grep -q '"kind":"gateway"' "${OUT_DIR}/flight_gateway.jsonl"

# Both artifacts must parse through the tracetool analyzers when the tool
# was built alongside the demo.
if [ -x "${BUILD_DIR}/tools/tracetool" ]; then
  "${BUILD_DIR}/tools/tracetool" slo --out="${OUT_DIR}/slo_gateway.md" \
    "${OUT_DIR}/slo_gateway.jsonl"
  grep -q '| /fast |' "${OUT_DIR}/slo_gateway.md"
  "${BUILD_DIR}/tools/tracetool" flight --out="${OUT_DIR}/flight_gateway.md" \
    "${OUT_DIR}/flight_gateway.jsonl"
  grep -q '| kind | events |' "${OUT_DIR}/flight_gateway.md"
fi

kill "${server}"
wait "${server}"   # clean shutdown must report zero jobs in flight
trap - EXIT

# Multi-reactor drill: the same host sharded across two reactor loops.
# Every loop must accept and serve traffic (loop="N"-labelled metric
# shards) and drain to zero jobs in flight on shutdown.
REDUNDANCY_GATEWAY_PORT="${PORT}" REDUNDANCY_GATEWAY_LINGER_MS=120000 \
  REDUNDANCY_GATEWAY_LOOPS=2 REDUNDANCY_SLO_EPOCH_MS=500 \
  "${BUILD_DIR}/examples/gateway_demo" > "${OUT_DIR}/demo_loops2.log" &
server=$!
trap 'kill "${server}" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  curl -sf "localhost:${PORT}/healthz" -o /dev/null && break
  sleep 0.2
done
grep -q 'with 2 reactor loops' "${OUT_DIR}/demo_loops2.log"
grep -qE 'backend (uring|epoll|poll)' "${OUT_DIR}/demo_loops2.log"

# Fresh connections round-robin or hash across the two listeners; enough
# sequential requests land traffic on both loops.
for i in $(seq 1 64); do
  test "$(curl -sf "localhost:${PORT}/echo?x=${i}")" = "${i}"
done
curl -sf "localhost:${PORT}/metrics" -o "${OUT_DIR}/metrics_loops2.prom"
grep -q 'gateway_accepted_total{loop="0"}' "${OUT_DIR}/metrics_loops2.prom"
grep -q 'gateway_accepted_total{loop="1"}' "${OUT_DIR}/metrics_loops2.prom"
grep -q 'gateway_requests_total{loop="0"}' "${OUT_DIR}/metrics_loops2.prom"
grep -q 'gateway_requests_total{loop="1"}' "${OUT_DIR}/metrics_loops2.prom"

kill "${server}"
wait "${server}"   # exit code re-checks zero jobs in flight
trap - EXIT
grep -q 'loop 0 jobs in flight: 0' "${OUT_DIR}/demo_loops2.log"
grep -q 'loop 1 jobs in flight: 0' "${OUT_DIR}/demo_loops2.log"

# The load generator: brief closed+open-loop run plus the connection-scale
# part (fd-budget scaled; the 10k gate arms itself on >= 4 cores).
(cd "${OUT_DIR}" &&
  REDUNDANCY_GATEWAY_DURATION_MS="${GATEWAY_BENCH_DURATION_MS:-1000}" \
    "${repo_root}/${BUILD_DIR}/bench/exp_gateway")

echo "gateway-e2e artifacts in ${OUT_DIR}:"
ls "${OUT_DIR}"
