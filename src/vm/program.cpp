#include "vm/program.hpp"

#include <cstdio>

namespace redundancy::vm {

std::vector<Word> Program::image(std::int64_t base, std::uint8_t tag) const {
  std::vector<Word> words;
  words.reserve(code.size());
  for (const Instr& ins : code) {
    const std::int64_t operand =
        operand_is_address(ins.op) ? ins.operand + base : ins.operand;
    words.push_back(encode(ins.op, operand, tag));
  }
  return words;
}

std::string Program::disassemble() const {
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Instr& ins = code[i];
    if (has_operand(ins.op)) {
      std::snprintf(buf, sizeof buf, "%4zu: %-7s %lld\n", i,
                    std::string(mnemonic(ins.op)).c_str(),
                    static_cast<long long>(ins.operand));
    } else {
      std::snprintf(buf, sizeof buf, "%4zu: %s\n", i,
                    std::string(mnemonic(ins.op)).c_str());
    }
    out += buf;
  }
  return out;
}

}  // namespace redundancy::vm
