// The vulnerable server and its attack payloads.
//
// A classic memory-unsafe request handler, written for the VM: it copies a
// request payload into a fixed 8-word buffer using an *unchecked* length
// taken from the request header, then dispatches through a function-pointer
// cell that sits immediately after the buffer. Overflowing the buffer
// overwrites the function pointer — the textbook entry point for both
// attack payloads used in the process-replicas experiments:
//
//  * absolute-address attack — redirect the function pointer to an existing
//    privileged gadget (`leak`) using a hard-coded absolute address;
//  * code-injection attack — write shellcode words into the buffer and
//    redirect the function pointer at them.
//
// Address-space partitioning defeats the first (the absolute address is
// mapped in at most one replica); instruction tagging defeats the second
// (injected words carry at most one replica's tag).
#pragma once

#include <cstdint>
#include <vector>

#include "vm/program.hpp"

namespace redundancy::vm {

/// Data layout of the server, in words relative to its load base.
struct ServerLayout {
  static constexpr std::size_t counter = 100;   ///< copy-loop index
  static constexpr std::size_t buffer = 110;    ///< request buffer
  static constexpr std::size_t buffer_cap = 8;  ///< declared capacity
  static constexpr std::size_t fnptr = 118;     ///< dispatch cell (== buffer+8)
  static constexpr std::size_t secret = 120;    ///< privileged data
  static constexpr std::size_t data_end = 128;  ///< minimum partition size

  /// Instruction offsets of interest (verified by tests against the
  /// assembled program).
  static constexpr std::size_t handler_entry = 23;
  static constexpr std::size_t leak_gadget = 29;
};

/// The canonical secret planted at ServerLayout::secret.
inline constexpr std::int64_t kSecretValue = 424242;

/// Build the vulnerable request server (addresses relative; rebased at load).
[[nodiscard]] Program vulnerable_server();

/// A request is the VM argument vector: args[0] = declared payload length,
/// args[1..len] = payload words.
using Request = std::vector<std::int64_t>;

/// Well-formed request; the handler returns and outputs a + b.
[[nodiscard]] Request benign_request(std::int64_t a, std::int64_t b);

/// Overflow the buffer by one word, overwriting the function pointer with
/// the absolute address of the `leak` gadget in the address space rooted at
/// `victim_base` (what the attacker believes the layout to be).
[[nodiscard]] Request absolute_address_attack(std::size_t victim_base);

/// Inject shellcode into the buffer and pivot the function pointer to it.
/// The shellcode carries `tag_guess` as its instruction tag and reads the
/// secret at the absolute address derived from `victim_base`.
[[nodiscard]] Request code_injection_attack(std::size_t victim_base,
                                            std::uint8_t tag_guess);

}  // namespace redundancy::vm
