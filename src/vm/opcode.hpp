// Instruction set of the miniature von-Neumann stack machine.
//
// The VM is the framework's stand-in for a real process: code and data share
// one flat memory, so buffer overflows can overwrite function pointers and
// injected bytes can be executed — the attack surface that process-replica
// diversification (Cox et al.'s address-space partitioning and instruction
// tagging) defends. It is also the genotype for genetic-programming repair.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace redundancy::vm {

enum class Op : std::uint8_t {
  nop = 0,
  halt,    ///< stop; result = top of stack (or 0 if empty)
  push,    ///< push immediate operand
  pusha,   ///< push an *address* immediate (rebased by the loader)
  pop,
  dup,
  swap,
  over,    ///< push copy of second-from-top
  add,
  sub,
  mul,
  divi,    ///< integer division; divide-by-zero traps
  mod,
  neg,
  eq,      ///< pop b, a; push a==b
  lt,
  gt,
  land,
  lor,
  lnot,
  load,    ///< push memory[operand] (operand rebased by loader)
  store,   ///< memory[operand] = pop (operand rebased by loader)
  loadi,   ///< push memory[pop()]      — absolute, attacker-usable
  storei,  ///< addr = pop, val = pop; memory[addr] = val — absolute
  jmp,     ///< pc = operand (rebased)
  jz,      ///< pop; if zero, pc = operand (rebased)
  jnz,
  jmpi,    ///< pc = pop() — absolute indirect jump (fn-pointer dispatch)
  arg,     ///< push argument #operand
  argi,    ///< push argument #pop()  (dynamic index)
  nargs,   ///< push the argument count
  out,     ///< append pop() to the observable output trace
  count_,  // sentinel
};

/// Packed in-memory form: | operand (48-bit signed) | tag (8) | op (8) |.
using Word = std::int64_t;

[[nodiscard]] constexpr Word encode(Op op, std::int64_t operand = 0,
                                    std::uint8_t tag = 0) noexcept {
  const auto raw = static_cast<std::uint64_t>(operand) & 0xffffffffffffULL;
  return static_cast<Word>((raw << 16) |
                           (static_cast<std::uint64_t>(tag) << 8) |
                           static_cast<std::uint64_t>(op));
}

struct Decoded {
  Op op = Op::nop;
  std::int64_t operand = 0;
  std::uint8_t tag = 0;
  bool valid = false;
};

[[nodiscard]] constexpr Decoded decode(Word w) noexcept {
  Decoded d;
  const auto u = static_cast<std::uint64_t>(w);
  const auto opraw = static_cast<std::uint8_t>(u & 0xff);
  if (opraw >= static_cast<std::uint8_t>(Op::count_)) return d;
  d.op = static_cast<Op>(opraw);
  d.tag = static_cast<std::uint8_t>((u >> 8) & 0xff);
  // Sign-extend the 48-bit operand.
  std::uint64_t raw = u >> 16;
  if (raw & (1ULL << 47)) raw |= 0xffff000000000000ULL;
  d.operand = static_cast<std::int64_t>(raw);
  d.valid = true;
  return d;
}

/// True if the loader must add the code/data base to this op's operand.
[[nodiscard]] constexpr bool operand_is_address(Op op) noexcept {
  switch (op) {
    case Op::pusha:
    case Op::load:
    case Op::store:
    case Op::jmp:
    case Op::jz:
    case Op::jnz:
      return true;
    default:
      return false;
  }
}

/// True if the op consumes an immediate operand at all.
[[nodiscard]] constexpr bool has_operand(Op op) noexcept {
  switch (op) {
    case Op::push:
    case Op::pusha:
    case Op::load:
    case Op::store:
    case Op::jmp:
    case Op::jz:
    case Op::jnz:
    case Op::arg:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] std::string_view mnemonic(Op op) noexcept;
[[nodiscard]] std::optional<Op> parse_mnemonic(std::string_view text) noexcept;

}  // namespace redundancy::vm
