#include "vm/assembler.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <vector>

namespace redundancy::vm {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

struct Line {
  std::string mnemonic;
  std::string operand;  // literal number or label
  std::size_t source_line = 0;
};

}  // namespace

core::Result<Program> assemble(std::string name, std::string_view source) {
  std::map<std::string, std::int64_t, std::less<>> labels;
  std::vector<Line> lines;

  // Pass 1: strip comments, record labels, collect instructions.
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    std::string_view raw = source.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
    ++lineno;
    if (const auto comment = raw.find(';'); comment != std::string_view::npos) {
      raw = raw.substr(0, comment);
    }
    std::string_view text = trim(raw);
    while (!text.empty()) {
      const auto colon = text.find(':');
      const auto space = text.find_first_of(" \t");
      if (colon != std::string_view::npos &&
          (space == std::string_view::npos || colon < space)) {
        std::string_view label = trim(text.substr(0, colon));
        if (label.empty()) {
          return core::failure(core::FailureKind::crash,
                               "asm: empty label at line " +
                                   std::to_string(lineno));
        }
        labels[std::string{label}] = static_cast<std::int64_t>(lines.size());
        text = trim(text.substr(colon + 1));
        continue;
      }
      Line line;
      line.source_line = lineno;
      if (space == std::string_view::npos) {
        line.mnemonic = std::string{text};
        text = {};
      } else {
        line.mnemonic = std::string{text.substr(0, space)};
        line.operand = std::string{trim(text.substr(space + 1))};
        text = {};
      }
      lines.push_back(std::move(line));
    }
  }

  // Pass 2: resolve mnemonics and operands.
  Program prog;
  prog.name = std::move(name);
  prog.code.reserve(lines.size());
  for (const Line& line : lines) {
    const auto op = parse_mnemonic(line.mnemonic);
    if (!op) {
      return core::failure(core::FailureKind::crash,
                           "asm: unknown mnemonic '" + line.mnemonic +
                               "' at line " + std::to_string(line.source_line));
    }
    Instr ins{*op, 0};
    if (has_operand(*op)) {
      if (line.operand.empty()) {
        return core::failure(core::FailureKind::crash,
                             "asm: missing operand at line " +
                                 std::to_string(line.source_line));
      }
      std::int64_t value = 0;
      const char* begin = line.operand.data();
      const char* end = begin + line.operand.size();
      auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec == std::errc{} && ptr == end) {
        ins.operand = value;
      } else if (auto it = labels.find(line.operand); it != labels.end()) {
        ins.operand = it->second;
      } else {
        return core::failure(core::FailureKind::crash,
                             "asm: unresolved operand '" + line.operand +
                                 "' at line " +
                                 std::to_string(line.source_line));
      }
    } else if (!line.operand.empty()) {
      return core::failure(core::FailureKind::crash,
                           "asm: unexpected operand at line " +
                               std::to_string(line.source_line));
    }
    prog.code.push_back(ins);
  }
  return prog;
}

std::string format(const Program& program) {
  std::string out;
  for (const Instr& ins : program.code) {
    out += mnemonic(ins.op);
    if (has_operand(ins.op)) {
      out += ' ';
      out += std::to_string(ins.operand);
    }
    out += '\n';
  }
  return out;
}

}  // namespace redundancy::vm
