#include "vm/address_space.hpp"

namespace redundancy::vm {

std::vector<Partition> partition_address_space(std::size_t total_words,
                                               std::size_t replicas) {
  std::vector<Partition> parts;
  if (replicas == 0) return parts;
  const std::size_t slice = total_words / replicas;
  parts.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    parts.push_back(Partition{r * slice, slice});
  }
  return parts;
}

}  // namespace redundancy::vm
