// Two-pass assembler for the VM's textual assembly.
//
// Syntax: one instruction per line, `mnemonic [operand]`; labels are
// `name:` on their own line (or prefixing an instruction) and may be used
// as the operand of jmp/jz/jnz/pusha; `;` starts a comment.
#pragma once

#include <string>
#include <string_view>

#include "core/result.hpp"
#include "vm/program.hpp"

namespace redundancy::vm {

[[nodiscard]] core::Result<Program> assemble(std::string name,
                                             std::string_view source);

/// Render a program back to assembly accepted by assemble().
[[nodiscard]] std::string format(const Program& program);

}  // namespace redundancy::vm
