// The VM interpreter.
//
// Von-Neumann layout: code and data live in one flat word-addressed memory,
// so out-of-bounds stores can overwrite code or function-pointer cells and
// indirect jumps can land on attacker-written words. Optional instruction-
// tag enforcement implements Cox et al.'s tagged-instruction variant: every
// fetched word must carry the replica's tag or the machine traps.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "vm/program.hpp"

namespace redundancy::vm {

struct VmConfig {
  std::size_t memory_words = 4096;
  std::uint64_t max_steps = 20'000;
  std::size_t max_stack = 1024;
  bool enforce_tags = false;     ///< trap on fetched-instruction tag mismatch
  std::uint8_t expected_tag = 0;
  /// Address-space partitioning (Cox et al.): when region_words > 0, only
  /// addresses in [region_base, region_base + region_words) are mapped for
  /// this replica; any fetch or data access outside it traps (segfault).
  std::size_t region_base = 0;
  std::size_t region_words = 0;
};

/// Observable behaviour of one execution: return value + output trace.
/// Replica divergence detection compares these across variants.
struct Behaviour {
  std::int64_t ret = 0;
  std::vector<std::int64_t> output;

  friend bool operator==(const Behaviour&, const Behaviour&) = default;
};

class Vm {
 public:
  explicit Vm(VmConfig cfg = {});

  /// Copy a packed program image into memory starting at `at`.
  void load_image(std::span<const Word> image, std::size_t at);
  /// Convenience: rebase + stamp + load a Program at `base`.
  void load(const Program& program, std::size_t base, std::uint8_t tag);

  /// Execute starting at `entry` with the given arguments.
  core::Result<Behaviour> run(std::size_t entry,
                              std::span<const std::int64_t> args);

  // Raw memory access (the substrate for attacks and for data placement).
  [[nodiscard]] core::Result<std::int64_t> peek(std::size_t addr) const;
  core::Status poke(std::size_t addr, std::int64_t value);

  [[nodiscard]] std::size_t memory_words() const noexcept { return memory_.size(); }
  [[nodiscard]] std::uint64_t steps_executed() const noexcept { return steps_; }
  [[nodiscard]] const VmConfig& config() const noexcept { return cfg_; }

  void reset();  ///< zero memory, clear counters

 private:
  VmConfig cfg_;
  std::vector<Word> memory_;
  std::uint64_t steps_ = 0;
};

/// Run `program` standalone (fresh machine, program at 0): the execution
/// mode used by genetic repair and the arithmetic-kernel experiments.
[[nodiscard]] core::Result<Behaviour> execute(const Program& program,
                                              std::span<const std::int64_t> args,
                                              VmConfig cfg = {});

}  // namespace redundancy::vm
