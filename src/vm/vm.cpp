#include "vm/vm.hpp"

#include <array>

namespace redundancy::vm {

namespace {

constexpr std::array<std::string_view,
                     static_cast<std::size_t>(Op::count_)>
    kMnemonics{"nop",  "halt", "push", "pusha", "pop",   "dup",  "swap",
               "over", "add",  "sub",  "mul",   "div",   "mod",  "neg",
               "eq",   "lt",   "gt",   "and",   "or",    "not",  "load",
               "store", "loadi", "storei", "jmp", "jz",  "jnz",  "jmpi",
               "arg",  "argi", "nargs", "out"};

}  // namespace

std::string_view mnemonic(Op op) noexcept {
  const auto idx = static_cast<std::size_t>(op);
  return idx < kMnemonics.size() ? kMnemonics[idx] : "??";
}

std::optional<Op> parse_mnemonic(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kMnemonics.size(); ++i) {
    if (kMnemonics[i] == text) return static_cast<Op>(i);
  }
  return std::nullopt;
}

Vm::Vm(VmConfig cfg) : cfg_(cfg), memory_(cfg.memory_words, 0) {}

void Vm::reset() {
  memory_.assign(cfg_.memory_words, 0);
  steps_ = 0;
}

void Vm::load_image(std::span<const Word> image, std::size_t at) {
  for (std::size_t i = 0; i < image.size() && at + i < memory_.size(); ++i) {
    memory_[at + i] = image[i];
  }
}

void Vm::load(const Program& program, std::size_t base, std::uint8_t tag) {
  load_image(program.image(static_cast<std::int64_t>(base), tag), base);
}

core::Result<std::int64_t> Vm::peek(std::size_t addr) const {
  if (addr >= memory_.size()) {
    return core::failure(core::FailureKind::crash, "peek out of range");
  }
  return memory_[addr];
}

core::Status Vm::poke(std::size_t addr, std::int64_t value) {
  if (addr >= memory_.size()) {
    return core::failure(core::FailureKind::crash, "poke out of range");
  }
  memory_[addr] = value;
  return core::ok_status();
}

core::Result<Behaviour> Vm::run(std::size_t entry,
                                std::span<const std::int64_t> args) {
  using core::failure;
  using core::FailureKind;

  auto trap = [](std::string why) {
    return core::Result<Behaviour>{
        failure(FailureKind::crash, "vm trap: " + std::move(why))};
  };

  std::vector<std::int64_t> stack;
  stack.reserve(64);
  Behaviour behaviour;
  std::size_t pc = entry;
  steps_ = 0;

  auto pop = [&stack]() {
    const std::int64_t v = stack.back();
    stack.pop_back();
    return v;
  };

  // Partitioned-address-space check: with region_words set, only this
  // replica's partition is mapped; everything else segfaults.
  const std::size_t lo = cfg_.region_words ? cfg_.region_base : 0;
  const std::size_t hi =
      cfg_.region_words ? cfg_.region_base + cfg_.region_words : memory_.size();
  auto mapped = [lo, hi](std::int64_t addr) {
    return addr >= 0 && static_cast<std::size_t>(addr) >= lo &&
           static_cast<std::size_t>(addr) < hi;
  };

  for (;;) {
    if (++steps_ > cfg_.max_steps) {
      return core::Result<Behaviour>{
          failure(FailureKind::timeout, "vm step limit exceeded")};
    }
    if (pc >= memory_.size()) return trap("pc out of range");
    if (!mapped(static_cast<std::int64_t>(pc))) {
      return trap("segmentation fault: fetch outside partition");
    }
    const Decoded ins = decode(memory_[pc]);
    if (!ins.valid) return trap("illegal instruction");
    if (cfg_.enforce_tags && ins.tag != cfg_.expected_tag) {
      return trap("instruction tag mismatch at " + std::to_string(pc));
    }
    ++pc;

    // Stack-arity checks, centralized.
    const auto need = [&](std::size_t n) { return stack.size() >= n; };
    switch (ins.op) {
      case Op::nop:
        break;
      case Op::halt:
        behaviour.ret = stack.empty() ? 0 : stack.back();
        return behaviour;
      case Op::push:
      case Op::pusha:
        if (stack.size() >= cfg_.max_stack) return trap("stack overflow");
        stack.push_back(ins.operand);
        break;
      case Op::pop:
        if (!need(1)) return trap("stack underflow");
        stack.pop_back();
        break;
      case Op::dup:
        if (!need(1)) return trap("stack underflow");
        if (stack.size() >= cfg_.max_stack) return trap("stack overflow");
        stack.push_back(stack.back());
        break;
      case Op::swap: {
        if (!need(2)) return trap("stack underflow");
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      }
      case Op::over:
        if (!need(2)) return trap("stack underflow");
        if (stack.size() >= cfg_.max_stack) return trap("stack overflow");
        stack.push_back(stack[stack.size() - 2]);
        break;
      case Op::add:
      case Op::sub:
      case Op::mul:
      case Op::divi:
      case Op::mod:
      case Op::eq:
      case Op::lt:
      case Op::gt:
      case Op::land:
      case Op::lor: {
        if (!need(2)) return trap("stack underflow");
        const std::int64_t b = pop();
        const std::int64_t a = pop();
        std::int64_t r = 0;
        switch (ins.op) {
          case Op::add: r = a + b; break;
          case Op::sub: r = a - b; break;
          case Op::mul: r = a * b; break;
          case Op::divi:
            if (b == 0) return trap("division by zero");
            r = a / b;
            break;
          case Op::mod:
            if (b == 0) return trap("modulo by zero");
            r = a % b;
            break;
          case Op::eq: r = a == b; break;
          case Op::lt: r = a < b; break;
          case Op::gt: r = a > b; break;
          case Op::land: r = (a != 0) && (b != 0); break;
          case Op::lor: r = (a != 0) || (b != 0); break;
          default: break;
        }
        stack.push_back(r);
        break;
      }
      case Op::neg:
        if (!need(1)) return trap("stack underflow");
        stack.back() = -stack.back();
        break;
      case Op::lnot:
        if (!need(1)) return trap("stack underflow");
        stack.back() = stack.back() == 0;
        break;
      case Op::load: {
        if (!mapped(ins.operand)) return trap("segmentation fault: load");
        if (stack.size() >= cfg_.max_stack) return trap("stack overflow");
        stack.push_back(memory_[static_cast<std::size_t>(ins.operand)]);
        break;
      }
      case Op::store: {
        if (!need(1)) return trap("stack underflow");
        if (!mapped(ins.operand)) return trap("segmentation fault: store");
        memory_[static_cast<std::size_t>(ins.operand)] = pop();
        break;
      }
      case Op::loadi: {
        if (!need(1)) return trap("stack underflow");
        const std::int64_t a = pop();
        if (!mapped(a)) return trap("segmentation fault: indirect load");
        stack.push_back(memory_[static_cast<std::size_t>(a)]);
        break;
      }
      case Op::storei: {
        if (!need(2)) return trap("stack underflow");
        const std::int64_t addr = pop();
        const std::int64_t val = pop();
        if (!mapped(addr)) return trap("segmentation fault: indirect store");
        memory_[static_cast<std::size_t>(addr)] = val;
        break;
      }
      case Op::jmp:
        if (ins.operand < 0) return trap("jump out of range");
        pc = static_cast<std::size_t>(ins.operand);
        break;
      case Op::jz: {
        if (!need(1)) return trap("stack underflow");
        if (pop() == 0) {
          if (ins.operand < 0) return trap("jump out of range");
          pc = static_cast<std::size_t>(ins.operand);
        }
        break;
      }
      case Op::jnz: {
        if (!need(1)) return trap("stack underflow");
        if (pop() != 0) {
          if (ins.operand < 0) return trap("jump out of range");
          pc = static_cast<std::size_t>(ins.operand);
        }
        break;
      }
      case Op::jmpi: {
        if (!need(1)) return trap("stack underflow");
        const std::int64_t a = pop();
        if (a < 0 || static_cast<std::size_t>(a) >= memory_.size()) {
          return trap("indirect jump out of range");
        }
        pc = static_cast<std::size_t>(a);
        break;
      }
      case Op::arg: {
        const auto idx = static_cast<std::size_t>(ins.operand);
        if (ins.operand < 0 || idx >= args.size()) {
          return trap("argument index out of range");
        }
        if (stack.size() >= cfg_.max_stack) return trap("stack overflow");
        stack.push_back(args[idx]);
        break;
      }
      case Op::argi: {
        if (!need(1)) return trap("stack underflow");
        const std::int64_t a = pop();
        if (a < 0 || static_cast<std::size_t>(a) >= args.size()) {
          return trap("argument index out of range");
        }
        stack.push_back(args[static_cast<std::size_t>(a)]);
        break;
      }
      case Op::nargs:
        if (stack.size() >= cfg_.max_stack) return trap("stack overflow");
        stack.push_back(static_cast<std::int64_t>(args.size()));
        break;
      case Op::out:
        if (!need(1)) return trap("stack underflow");
        behaviour.output.push_back(pop());
        break;
      case Op::count_:
        return trap("illegal instruction");
    }
  }
}

core::Result<Behaviour> execute(const Program& program,
                                std::span<const std::int64_t> args,
                                VmConfig cfg) {
  Vm machine{cfg};
  machine.load(program, 0, cfg.expected_tag);
  return machine.run(0, args);
}

}  // namespace redundancy::vm
