// Program: a sequence of VM instructions with a name.
//
// Programs are the genotype for genetic repair (vm-level mutation and
// crossover live in techniques/genetic_repair) and the payload the process-
// replica loader stamps and rebases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/opcode.hpp"

namespace redundancy::vm {

struct Instr {
  Op op = Op::nop;
  std::int64_t operand = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

struct Program {
  std::string name;
  std::vector<Instr> code;

  [[nodiscard]] std::size_t size() const noexcept { return code.size(); }
  [[nodiscard]] bool empty() const noexcept { return code.empty(); }

  /// Pack into memory words with the given tag, rebasing address operands
  /// by `base` (the loader's half of address-space partitioning).
  [[nodiscard]] std::vector<Word> image(std::int64_t base = 0,
                                        std::uint8_t tag = 0) const;

  /// Disassembly for debugging and for the assembler round-trip tests.
  [[nodiscard]] std::string disassemble() const;

  friend bool operator==(const Program&, const Program&) = default;
};

}  // namespace redundancy::vm
