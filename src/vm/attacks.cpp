#include "vm/attacks.hpp"

#include <string>

#include "vm/assembler.hpp"

namespace redundancy::vm {

Program vulnerable_server() {
  using L = ServerLayout;
  const std::string source =
      "  pusha handler\n"
      "  store " + std::to_string(L::fnptr) + "   ; fnptr = &handler\n"
      "  push 0\n"
      "  store " + std::to_string(L::counter) + " ; i = 0\n"
      "loop:\n"
      "  load " + std::to_string(L::counter) + "\n"
      "  arg 0            ; declared length — trusted, unchecked\n"
      "  lt\n"
      "  jz done\n"
      "  load " + std::to_string(L::counter) + "\n"
      "  push 1\n"
      "  add\n"
      "  argi             ; payload word i\n"
      "  pusha " + std::to_string(L::buffer) + "\n"
      "  load " + std::to_string(L::counter) + "\n"
      "  add\n"
      "  storei           ; buffer[i] = payload[i] — no bounds check\n"
      "  load " + std::to_string(L::counter) + "\n"
      "  push 1\n"
      "  add\n"
      "  store " + std::to_string(L::counter) + "\n"
      "  jmp loop\n"
      "done:\n"
      "  load " + std::to_string(L::fnptr) + "\n"
      "  jmpi             ; dispatch through the (possibly clobbered) fnptr\n"
      "handler:\n"
      "  load " + std::to_string(L::buffer) + "\n"
      "  load " + std::to_string(L::buffer + 1) + "\n"
      "  add\n"
      "  dup\n"
      "  out\n"
      "  halt\n"
      "leak:              ; privileged gadget — never called legitimately\n"
      "  load " + std::to_string(L::secret) + "\n"
      "  dup\n"
      "  out\n"
      "  halt\n";
  auto prog = assemble("vulnerable-server", source);
  // The source above is a compile-time constant of this library; assembly
  // failure is a programming error, not a runtime condition.
  return std::move(prog).take();
}

Request benign_request(std::int64_t a, std::int64_t b) { return {2, a, b}; }

Request absolute_address_attack(std::size_t victim_base) {
  using L = ServerLayout;
  Request req;
  req.push_back(static_cast<std::int64_t>(L::buffer_cap + 1));  // len = 9
  for (std::size_t i = 0; i < L::buffer_cap; ++i) req.push_back(0);
  // The 9th copied word lands on the fnptr cell.
  req.push_back(static_cast<std::int64_t>(victim_base + L::leak_gadget));
  return req;
}

Request code_injection_attack(std::size_t victim_base, std::uint8_t tag_guess) {
  using L = ServerLayout;
  const auto secret_abs = static_cast<std::int64_t>(victim_base + L::secret);
  const std::vector<Word> shellcode = {
      encode(Op::push, secret_abs, tag_guess),
      encode(Op::loadi, 0, tag_guess),
      encode(Op::dup, 0, tag_guess),
      encode(Op::out, 0, tag_guess),
      encode(Op::halt, 0, tag_guess),
  };
  Request req;
  req.push_back(static_cast<std::int64_t>(L::buffer_cap + 1));  // len = 9
  for (std::size_t i = 0; i < L::buffer_cap; ++i) {
    req.push_back(i < shellcode.size() ? shellcode[i] : 0);
  }
  // Pivot the function pointer into the buffer.
  req.push_back(static_cast<std::int64_t>(victim_base + L::buffer));
  return req;
}

}  // namespace redundancy::vm
