// Address-space partitioning (Cox et al., "N-variant systems").
//
// Each replica receives a disjoint slice of the address space; the loader
// rebases all *static* addresses into the replica's slice, so legitimate
// code never notices — but an attacker-supplied *absolute* address can be
// valid in at most one replica's slice. In every other replica the access
// segfaults, and the replicas' behaviours diverge.
#pragma once

#include <cstddef>
#include <vector>

namespace redundancy::vm {

struct Partition {
  std::size_t base = 0;
  std::size_t words = 0;

  [[nodiscard]] bool contains(std::size_t addr) const noexcept {
    return addr >= base && addr < base + words;
  }
  [[nodiscard]] bool overlaps(const Partition& other) const noexcept {
    return base < other.base + other.words && other.base < base + words;
  }
};

/// Split `total_words` into `replicas` equal disjoint partitions (any
/// remainder is left unmapped at the top, acting as a guard).
[[nodiscard]] std::vector<Partition> partition_address_space(
    std::size_t total_words, std::size_t replicas);

}  // namespace redundancy::vm
