// Word-wise byte kernels for the adjudication hot path.
//
// Voting over N variant outputs is, at the byte level, "are these blobs
// identical?" asked O(N²)/O(N) times per verdict. These kernels answer it
// in 8-byte words instead of bytes: `equal` compares 32-byte blocks with a
// branch per block (the inner word loop auto-vectorizes to SIMD compares),
// and `hash64` folds a blob to a 64-bit digest so an N-way vote can group
// ballots with O(N) integer compares and at most one byte-exact confirm.
//
// `byte_view` defines which output types may take this path. Soundness
// rule: byte equality must coincide with value equality, so a type
// qualifies only when std::has_unique_object_representations_v holds for
// it (or for its element type) — padding bytes, NaNs and -0.0 disqualify
// themselves automatically and stay on the scalar Eq path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "util/checksum.hpp"

namespace redundancy::util::wordwise {

namespace detail {

/// Contiguous-storage types (std::string, std::vector<T>, ByteBuffer,
/// std::span, std::array) whose elements compare correctly byte-wise.
template <typename T>
concept ContiguousBytes = requires(const T& t) {
  { t.data() };
  { t.size() } -> std::convertible_to<std::size_t>;
} && std::is_pointer_v<decltype(std::declval<const T&>().data())> &&
    std::has_unique_object_representations_v<std::remove_cv_t<
        std::remove_pointer_t<decltype(std::declval<const T&>().data())>>>;

}  // namespace detail

/// Types whose value equality is exactly byte equality of their view.
template <typename T>
inline constexpr bool byte_viewable_v =
    detail::ContiguousBytes<T> ||
    (std::is_trivially_copyable_v<T> &&
     std::has_unique_object_representations_v<T>);

/// The raw bytes of `v` — contiguous storage for string/vector-like types,
/// the object representation for padding-free scalar/struct types.
template <typename T>
  requires(byte_viewable_v<T>)
[[nodiscard]] std::span<const std::byte> byte_view(const T& v) noexcept {
  if constexpr (detail::ContiguousBytes<T>) {
    using E = std::remove_cv_t<
        std::remove_pointer_t<decltype(std::declval<const T&>().data())>>;
    return {reinterpret_cast<const std::byte*>(v.data()),
            v.size() * sizeof(E)};
  } else {
    return {reinterpret_cast<const std::byte*>(&v), sizeof(T)};
  }
}

/// Byte equality in 8-byte words. Compares 32-byte blocks with one branch
/// per block — the four-word accumulation inside a block has no early
/// exit, so the compiler turns it into SIMD loads and compares. Handles
/// any alignment (memcpy word loads) and any length (overlapping final
/// word when n >= 8, byte loop below that).
[[nodiscard]] inline bool equal(std::span<const std::byte> a,
                                std::span<const std::byte> b) noexcept {
  if (a.size() != b.size()) return false;
  const std::size_t n = a.size();
  const std::byte* pa = a.data();
  const std::byte* pb = b.data();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t wa[4];
    std::uint64_t wb[4];
    std::memcpy(wa, pa + i, 32);
    std::memcpy(wb, pb + i, 32);
    const std::uint64_t diff = (wa[0] ^ wb[0]) | (wa[1] ^ wb[1]) |
                               (wa[2] ^ wb[2]) | (wa[3] ^ wb[3]);
    if (diff != 0) return false;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t wa;
    std::uint64_t wb;
    std::memcpy(&wa, pa + i, 8);
    std::memcpy(&wb, pb + i, 8);
    if (wa != wb) return false;
  }
  if (i < n) {
    if (n >= 8) {
      // Overlapping final word re-reads a few already-compared bytes.
      std::uint64_t wa;
      std::uint64_t wb;
      std::memcpy(&wa, pa + n - 8, 8);
      std::memcpy(&wb, pb + n - 8, 8);
      return wa == wb;
    }
    for (; i < n; ++i) {
      if (pa[i] != pb[i]) return false;
    }
  }
  return true;
}

/// 64-bit content digest: FNV-1a over 8-byte words, length folded into the
/// seed (so "" and "\0" differ), mix64-finalized for full avalanche. Equal
/// blobs always collide; unequal blobs collide with probability ~2^-64,
/// which is why voters confirm the winning group byte-exactly.
[[nodiscard]] inline std::uint64_t hash64(
    std::span<const std::byte> bytes) noexcept {
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kOffset ^ (static_cast<std::uint64_t>(bytes.size()) * kPrime);
  const std::byte* p = bytes.data();
  const std::size_t n = bytes.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * kPrime;
  }
  if (i < n) {
    std::uint64_t w = 0;  // zero-padded tail; length in the seed disambiguates
    std::memcpy(&w, p + i, n - i);
    h = (h ^ w) * kPrime;
  }
  return mix64(h);
}

/// Digest of any byte-viewable value.
template <typename T>
  requires(byte_viewable_v<T>)
[[nodiscard]] std::uint64_t hash64_of(const T& v) noexcept {
  return hash64(byte_view(v));
}

/// Byte equality of any two byte-viewable values.
template <typename T>
  requires(byte_viewable_v<T>)
[[nodiscard]] bool equal_values(const T& a, const T& b) noexcept {
  return equal(byte_view(a), byte_view(b));
}

}  // namespace redundancy::util::wordwise
