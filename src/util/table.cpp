#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace redundancy::util {

Table& Table::header(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  lines_.push_back({std::move(cells), false});
  return *this;
}

Table& Table::separator() {
  lines_.push_back({{}, true});
  return *this;
}

void Table::print(std::ostream& os) const {
  // Compute column widths across header and rows.
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& line : lines_) {
    if (!line.is_separator) widen(line.cells);
  }

  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (auto w : widths) total += w;

  auto rule = [&os, total](char c) {
    for (std::size_t i = 0; i < total; ++i) os << c;
    os << '\n';
  };
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << cell;
      if (i + 1 < widths.size()) {
        os << std::string(widths[i] - cell.size(), ' ') << " | ";
      }
    }
    os << '\n';
  };

  os << '\n' << title_ << '\n';
  rule('=');
  if (!header_.empty()) {
    emit(header_);
    rule('-');
  }
  for (const auto& line : lines_) {
    if (line.is_separator) {
      rule('-');
    } else {
      emit(line.cells);
    }
  }
  rule('=');
}

std::string Table::str() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::count(std::size_t v) { return std::to_string(v); }

}  // namespace redundancy::util
