// Move-only callable wrapper with small-buffer optimization.
//
// std::function requires copyability, which forces task queues to wrap
// move-only payloads (promises, packaged_tasks) in shared_ptr — one heap
// allocation and two atomic refcount bumps per submitted task. UniqueFunction
// stores any move-constructible callable, inline when it fits, so the
// ThreadPool hot path allocates nothing for small closures.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace redundancy::util {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
  // Large enough for a packaged_task, a first-wins wrapper (shared state +
  // index + small callable), or a lambda with a handful of captured
  // pointers; anything bigger spills to the heap.
  static constexpr std::size_t kInlineSize = 8 * sizeof(void*);
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

 public:
  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, UniqueFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFunction(F&& fn) {  // NOLINT(bugprone-forwarding-reference-overload)
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buffer_))
          D*(new D(std::forward<F>(fn)));
      ops_ = &heap_ops<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    void (*relocate)(void* dst, void* src) noexcept;  // move into dst, destroy src
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static D& inline_target(void* storage) noexcept {
    return *std::launder(reinterpret_cast<D*>(storage));
  }
  template <typename D>
  static D*& heap_slot(void* storage) noexcept {
    return *std::launder(reinterpret_cast<D**>(storage));
  }

  template <typename D>
  static constexpr Ops inline_ops{
      [](void* s, Args&&... args) -> R {
        return inline_target<D>(s)(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(inline_target<D>(src)));
        inline_target<D>(src).~D();
      },
      [](void* s) noexcept { inline_target<D>(s).~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops{
      [](void* s, Args&&... args) -> R {
        return (*heap_slot<D>(s))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(heap_slot<D>(src));
      },
      [](void* s) noexcept { delete heap_slot<D>(s); },
  };

  void move_from(UniqueFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buffer_, other.buffer_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buffer_[kInlineSize]{};
  const Ops* ops_ = nullptr;
};

}  // namespace redundancy::util
