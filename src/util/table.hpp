// Plain-text table rendering for the experiment harnesses in bench/.
// Every experiment prints its results as a paper-style table.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace redundancy::util {

/// Column-aligned text table with a title, header row, and optional
/// horizontal separators. Cells are strings; format helpers are provided.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);
  Table& separator();

  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;

  // Cell formatting helpers.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);  ///< 0.42 -> "42.0%"
  static std::string count(std::size_t v);

 private:
  struct Line {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Line> lines_;
};

}  // namespace redundancy::util
