// Deterministic pseudo-random number generation.
//
// Every stochastic element of the framework (fault triggers, environment
// nondeterminism, workload generators, genetic operators) draws from a
// util::Rng seeded explicitly, so that every test, experiment, and benchmark
// is reproducible bit-for-bit from its seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace redundancy::util {

/// SplitMix64 step; used for seeding and as a cheap standalone generator.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit generator.
///
/// Satisfies std::uniform_random_bit_generator, so it can be handed to
/// standard distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) noexcept {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -mean * log_(u);
  }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_(-2.0 * log_(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Derive an independent child generator (for per-replica streams).
  Rng split() noexcept {
    std::uint64_t s = (*this)();
    return Rng{s};
  }

  /// Derive the `stream`-th child generator WITHOUT mutating this one:
  /// a counter-based SplitMix64 derivation over (state, stream), so
  /// split(i) is a pure function of the parent's seed and i. The parallel
  /// campaign runner relies on this to give request i the same generator
  /// no matter which worker (or how many workers) processes it.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                       rotl(state_[3], 43);
    sm += stream;
    return Rng{splitmix64(sm)};
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      using std::swap;
      swap(c[i], c[static_cast<std::size_t>(below(i + 1))]);
    }
  }

  /// Pick a uniformly random element index for a container of size n.
  std::size_t index(std::size_t n) noexcept { return static_cast<std::size_t>(below(n)); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  // Tiny local wrappers so this header stays <cmath>-free for constexpr use.
  static double log_(double x) noexcept;
  static double sqrt_(double x) noexcept;

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

inline double Rng::log_(double x) noexcept { return __builtin_log(x); }
inline double Rng::sqrt_(double x) noexcept { return __builtin_sqrt(x); }

}  // namespace redundancy::util
