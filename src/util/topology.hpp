// One-time CPU topology probe backing the pool's near-first steal order.
//
// Stealing walks victims in distance order: a task stolen from a worker on
// the same core (SMT sibling) or the same last-level cache arrives with its
// lines already warm, while a steal across packages pays the full coherence
// round trip. The pool cannot know which CPU a worker lands on (workers are
// not pinned), but Linux creates and schedules sibling threads close
// together often enough that "nearby worker index" is a useful proxy — so
// the probe reduces the machine to two numbers:
//
//   * smt_width    — hardware threads per core (thread_siblings of cpu0);
//   * cluster_size — logical CPUs sharing the last-level cache (falling
//                    back to the package, then to a fixed guess).
//
// Workers at indices [k*cluster_size, (k+1)*cluster_size) are treated as
// one cluster; steal orders visit the own cluster first. The probe reads
// sysfs once per process (cheap, no allocation after the first call) and
// degrades to a portable guess ({1, 4}) when sysfs is absent (non-Linux,
// containers with masked /sys).
#pragma once

#include <cstddef>

namespace redundancy::util {

struct Topology {
  std::size_t smt_width = 1;     ///< hardware threads per physical core
  std::size_t cluster_size = 4;  ///< logical CPUs sharing the LLC
  bool probed = false;           ///< true when sysfs answered, false on fallback
};

/// The process-wide topology, probed on first call and cached.
[[nodiscard]] const Topology& topology() noexcept;

/// Parse a sysfs CPU list ("0-3", "0,4", "0-1,8-9") and return the number
/// of CPUs it names, or 0 on malformed input. Exposed for tests.
[[nodiscard]] std::size_t parse_cpu_list_count(const char* text) noexcept;

/// The CPU slot a gateway reactor should prefer: reactors are spread one
/// per LLC cluster first (so each front-door loop feeds pool workers out of
/// a different cache domain instead of stacking on one), then wrap within
/// clusters. Pure function of (reactor index, CPU count, cluster size) so
/// the placement policy is testable without pinning anything.
[[nodiscard]] std::size_t reactor_cpu_slot(std::size_t reactor,
                                           std::size_t cpus,
                                           std::size_t cluster_size) noexcept;

/// Best-effort affinity pin of the calling thread to `cpu`. Returns false
/// (and changes nothing) off Linux, on masked cpusets, or when the kernel
/// refuses — pinning is an optimization, never a requirement.
bool pin_current_thread_to_cpu(std::size_t cpu) noexcept;

}  // namespace redundancy::util
