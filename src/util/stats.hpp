// Streaming statistics and histograms for experiment harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace redundancy::util {

/// Welford streaming accumulator: mean, variance, min/max, confidence bounds.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;   ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double stderror() const noexcept;   ///< stddev / sqrt(n)
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ratio estimator for Bernoulli outcomes (success counts) with Wilson CI.
class Proportion {
 public:
  void add(bool success) noexcept {
    ++n_;
    if (success) ++k_;
  }
  [[nodiscard]] std::size_t trials() const noexcept { return n_; }
  [[nodiscard]] std::size_t successes() const noexcept { return k_; }
  [[nodiscard]] double value() const noexcept {
    return n_ ? static_cast<double>(k_) / static_cast<double>(n_) : 0.0;
  }
  /// Wilson score interval at 95%.
  [[nodiscard]] std::pair<double, double> wilson95() const noexcept;

  /// Pool another sample into this one (commutative and associative, so
  /// shard-local proportions can be merged in any order).
  void merge(const Proportion& other) noexcept {
    n_ += other.n_;
    k_ += other.k_;
  }

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
};

/// Fixed-boundary histogram with percentile queries.
class Histogram {
 public:
  /// Buckets spanning [lo, hi) split into `buckets` equal cells, plus
  /// underflow/overflow cells.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  /// Linear-interpolated percentile (p in [0,100]).
  [[nodiscard]] double percentile(double p) const noexcept;
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_, cell_;
  std::vector<std::size_t> counts_;  // [under, cells..., over]
  std::size_t total_ = 0;
};

/// Exact quantiles over a retained sample (for small experiment runs).
class Sample {
 public:
  void add(double x) { values_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double percentile(double p) const;  ///< p in [0,100]
  [[nodiscard]] double mean() const noexcept;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace redundancy::util
