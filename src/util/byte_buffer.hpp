// Simple serialization buffer used by the checkpoint store and by service
// messages. Little-endian, length-prefixed strings, no alignment games.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace redundancy::util {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::span<const std::byte> span() const noexcept { return bytes_; }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  void put_string(std::string_view s) {
    put(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    bytes_.insert(bytes_.end(), p, p + s.size());
  }

  /// Sequential reader over a ByteBuffer.
  class Reader {
   public:
    explicit Reader(const ByteBuffer& buf) : bytes_(buf.bytes_) {}

    template <typename T>
      requires std::is_trivially_copyable_v<T>
    T get() {
      if (pos_ + sizeof(T) > bytes_.size()) {
        throw std::out_of_range{"ByteBuffer::Reader: truncated read"};
      }
      T v;
      std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
      return v;
    }

    std::string get_string() {
      const auto len = get<std::uint32_t>();
      if (pos_ + len > bytes_.size()) {
        throw std::out_of_range{"ByteBuffer::Reader: truncated string"};
      }
      std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
      pos_ += len;
      return s;
    }

    [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

   private:
    const std::vector<std::byte>& bytes_;
    std::size_t pos_ = 0;
  };

  [[nodiscard]] Reader reader() const { return Reader{*this}; }

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace redundancy::util
