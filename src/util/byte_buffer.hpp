// Simple serialization buffer used by the checkpoint store and by service
// messages. Little-endian, length-prefixed strings, no alignment games.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/wordwise.hpp"

namespace redundancy::util {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::byte* data() const noexcept { return bytes_.data(); }
  [[nodiscard]] std::span<const std::byte> span() const noexcept { return bytes_; }

  void reserve(std::size_t capacity) { bytes_.reserve(capacity); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    append(p, sizeof(T));
  }

  /// Raw-bytes fast path: one capacity check + one memcpy.
  void put_bytes(std::span<const std::byte> bytes) {
    append(bytes.data(), bytes.size());
  }

  void put_string(std::string_view s) {
    // One growth decision for prefix + payload, then two appends that are
    // guaranteed not to reallocate.
    ensure(sizeof(std::uint32_t) + s.size());
    put(static_cast<std::uint32_t>(s.size()));
    append(reinterpret_cast<const std::byte*>(s.data()), s.size());
  }

  /// Word-wise byte equality (see util/wordwise.hpp) — checkpoint blobs
  /// compare at SIMD speed in the adjudication voters.
  [[nodiscard]] friend bool operator==(const ByteBuffer& a,
                                       const ByteBuffer& b) noexcept {
    return wordwise::equal(a.span(), b.span());
  }

  /// Sequential reader over a ByteBuffer.
  class Reader {
   public:
    explicit Reader(const ByteBuffer& buf) : bytes_(buf.bytes_) {}

    template <typename T>
      requires std::is_trivially_copyable_v<T>
    T get() {
      if (pos_ + sizeof(T) > bytes_.size()) {
        throw std::out_of_range{"ByteBuffer::Reader: truncated read"};
      }
      T v;
      std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
      return v;
    }

    std::string get_string() {
      const auto len = get<std::uint32_t>();
      if (pos_ + len > bytes_.size()) {
        throw std::out_of_range{"ByteBuffer::Reader: truncated string"};
      }
      std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
      pos_ += len;
      return s;
    }

    [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

   private:
    const std::vector<std::byte>& bytes_;
    std::size_t pos_ = 0;
  };

  [[nodiscard]] Reader reader() const { return Reader{*this}; }

 private:
  /// Geometric growth ahead of an `extra`-byte append. libstdc++'s insert
  /// range already grows geometrically, but an explicit doubling policy
  /// here keeps large checkpoint serialization linear on every toolchain
  /// and lets put_string make one growth decision for two appends.
  void ensure(std::size_t extra) {
    const std::size_t need = bytes_.size() + extra;
    if (need <= bytes_.capacity()) return;
    bytes_.reserve(std::max(need, bytes_.capacity() * 2));
  }

  void append(const std::byte* p, std::size_t n) {
    ensure(n);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::vector<std::byte> bytes_;
};

}  // namespace redundancy::util
