// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005), in the C++11
// memory-model formulation of Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013,
// "Correct and Efficient Work-Stealing for Weak Memory Models").
//
// One owner thread pushes and pops at the *bottom*; any number of thieves
// steal from the *top*. The owner's push is a release store and its pop is
// a single RMW-free fast path except for the last-element race, which a
// seq_cst CAS on `top` arbitrates. Thieves race each other (and the owner's
// last-element pop) with the same CAS, so the deque needs no mutex at all.
//
// Deviations from the letter of the PPoPP'13 listing, both deliberate:
//
//   * The fence-based relaxed accesses are folded into the atomic
//     operations themselves (seq_cst store of `bottom` in pop, seq_cst
//     loads in steal, release/acquire on the slots). ThreadSanitizer does
//     not model standalone atomic_thread_fence, so the fence formulation
//     reports false races; the folded form is TSan-exact and costs one
//     XCHG per pop on x86.
//   * Slots hold std::atomic<T> where T is a trivially-copyable word
//     (static_asserted). A thief must read a slot *before* its CAS claims
//     it and discard the value on CAS failure — only a word-sized atomic
//     read makes that benign. Task payloads therefore go through the deque
//     by pointer (the ThreadPool stores TaskNode*).
//
// The circular array grows by doubling. Retired arrays are kept on a chain
// until the deque is destroyed: a thief that loaded the old array can still
// read a stale slot, so the memory must outlive every concurrent steal; the
// elements it read remain valid because grow() copies the live range
// [top, bottom) and `top` only moves through successful CASes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "util/cacheline.hpp"

namespace redundancy::util {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(void*),
                "slots are raced through std::atomic<T>: T must be a "
                "trivially-copyable word (use a pointer for bigger payloads)");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : array_(Array::create(round_up_pow2(initial_capacity), nullptr)) {}

  ~ChaseLevDeque() {
    Array* a = array_.load(std::memory_order_relaxed);
    while (a != nullptr) {
      Array* prev = a->retired_prev;
      Array::destroy(a);
      a = prev;
    }
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push at the bottom. Grows the array when full.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->capacity)) {
      a = grow(a, t, b);
    }
    // Release: a thief that acquire-loads this slot (after observing the
    // advanced bottom) also sees everything the owner wrote into the
    // pointee before pushing.
    a->slot(b).store(value, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop from the bottom (LIFO). Returns false when empty.
  [[nodiscard]] bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    // seq_cst store/load pair: the reservation of slot b must be globally
    // ordered against a concurrent thief's top load, or both could take
    // the last element.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = a->slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread: steal from the top (FIFO). Returns false when empty or
  /// when the CAS lost a race (callers treat both as "try elsewhere").
  [[nodiscard]] bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    Array* a = array_.load(std::memory_order_acquire);
    // Read before claiming; on CAS failure the (word-sized) value is
    // simply discarded.
    const T value = a->slot(t).load(std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    out = value;
    return true;
  }

  /// Approximate size (racy; monitoring only).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty_approx() const noexcept {
    return size_approx() == 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return array_.load(std::memory_order_relaxed)->capacity;
  }

 private:
  struct Array {
    std::size_t capacity;   // power of two
    std::size_t mask;       // capacity - 1
    Array* retired_prev;    // predecessor kept alive for in-flight thieves
    // Flexible slot storage lives right behind the header.
    [[nodiscard]] std::atomic<T>& slot(std::int64_t i) noexcept {
      return slots()[static_cast<std::size_t>(i) & mask];
    }
    [[nodiscard]] std::atomic<T>* slots() noexcept {
      return reinterpret_cast<std::atomic<T>*>(this + 1);
    }

    static Array* create(std::size_t capacity, Array* prev) {
      void* mem = ::operator new(sizeof(Array) +
                                 capacity * sizeof(std::atomic<T>));
      Array* a = static_cast<Array*>(mem);
      a->capacity = capacity;
      a->mask = capacity - 1;
      a->retired_prev = prev;
      std::atomic<T>* s = a->slots();
      for (std::size_t i = 0; i < capacity; ++i) {
        ::new (static_cast<void*>(&s[i])) std::atomic<T>();
      }
      return a;
    }
    static void destroy(Array* a) { ::operator delete(a); }
  };

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    Array* bigger = Array::create(old->capacity * 2, old);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    // Release-publish so thieves acquire-loading array_ see filled slots.
    array_.store(bigger, std::memory_order_release);
    return bigger;
  }

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  // top_ and bottom_ live on separate cache lines: thieves CAS top_ on
  // every steal attempt while the owner writes bottom_ on every push/pop.
  // Sharing one line would make each owner push invalidate every thief's
  // cached copy of top_ (and vice versa) — classic false sharing on the
  // single hottest pair of words in the engine. array_ rides with bottom_:
  // both are owner-written (push/grow) and thief-read, so they change
  // together.
  alignas(kCacheLine) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLine) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;

 public:
  /// Layout introspection for tests/util/layout_test.cpp (FL001/FL002
  /// regression guard): the contended indices must not share a line.
  [[nodiscard]] const void* top_addr() const noexcept { return &top_; }
  [[nodiscard]] const void* bottom_addr() const noexcept { return &bottom_; }
};

static_assert(alignof(ChaseLevDeque<void*>) >= kCacheLine,
              "deque instances must start on a cache-line boundary");
static_assert(sizeof(ChaseLevDeque<void*>) % kCacheLine == 0,
              "adjacent deques must not share a cache line");

}  // namespace redundancy::util
