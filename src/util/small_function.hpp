// Copyable callable wrapper with small-buffer optimization — the
// static-dispatch replacement for std::function on the adjudication hot
// path.
//
// std::function is the right shape for Voter / Variant::fn / AcceptanceTest
// (copyable, type-erased, storable in vectors of variants), but libstdc++'s
// implementation routes every call through _M_invoker plus a second jump
// into the manager thunk machinery, and its 16-byte buffer spills most
// capturing lambdas (a weighted voter's vector + flag, a comparator with
// state) to the heap. SmallFunction keeps the type erasure — one indirect
// call through a per-type ops table — but with a 64-byte inline buffer
// sized for every closure the core patterns build, so adjudicating a round
// is call-through-pointer with zero allocation and the callable's state on
// the same cache line as the wrapper.
//
// Unlike util::UniqueFunction (move-only, task queues) this is copyable:
// Variant<In, Out> values are copied into pattern executors and campaign
// grids. Invocation is const-qualified like std::function's: the target is
// invoked through a mutable buffer, so stateful callables keep working.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace redundancy::util {

template <typename Signature>
class SmallFunction;

template <typename R, typename... Args>
class SmallFunction<R(Args...)> {
  // Covers every adjudicator the library builds: the biggest (weighted
  // voter: vector<double> + bool + comparator) is 32 bytes on LP64.
  static constexpr std::size_t kInlineSize = 8 * sizeof(void*);
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

 public:
  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, SmallFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& fn) {  // NOLINT(bugprone-forwarding-reference-overload)
    static_assert(std::is_copy_constructible_v<D>,
                  "SmallFunction targets must be copyable (use "
                  "util::UniqueFunction for move-only callables)");
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(buffer_)) D*(new D(std::forward<F>(fn)));
      ops_ = &heap_ops<D>;
    }
  }

  SmallFunction(const SmallFunction& other) {
    if (other.ops_ != nullptr) {
      other.ops_->copy(buffer_, other.buffer_);
      ops_ = other.ops_;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(const SmallFunction& other) {
    if (this != &other) {
      SmallFunction tmp{other};  // copy may throw; build it first
      reset();
      move_from(tmp);
    }
    return *this;
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  ~SmallFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Const like std::function::operator(): the target lives in a mutable
  /// buffer, so stateful callables are invoked through a non-const lvalue.
  R operator()(Args... args) const {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    void (*copy)(void* dst, const void* src);  // copy-construct into dst
    void (*relocate)(void* dst, void* src) noexcept;  // move into dst + destroy
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static D& inline_target(void* storage) noexcept {
    return *std::launder(reinterpret_cast<D*>(storage));
  }
  template <typename D>
  static const D& inline_ctarget(const void* storage) noexcept {
    return *std::launder(reinterpret_cast<const D*>(storage));
  }
  template <typename D>
  static D*& heap_slot(void* storage) noexcept {
    return *std::launder(reinterpret_cast<D**>(storage));
  }
  template <typename D>
  static D* const& heap_cslot(const void* storage) noexcept {
    return *std::launder(reinterpret_cast<D* const*>(storage));
  }

  template <typename D>
  static constexpr Ops inline_ops{
      [](void* s, Args&&... args) -> R {
        return inline_target<D>(s)(std::forward<Args>(args)...);
      },
      [](void* dst, const void* src) {
        ::new (dst) D(inline_ctarget<D>(src));
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(inline_target<D>(src)));
        inline_target<D>(src).~D();
      },
      [](void* s) noexcept { inline_target<D>(s).~D(); },
  };

  template <typename D>
  static constexpr Ops heap_ops{
      [](void* s, Args&&... args) -> R {
        return (*heap_slot<D>(s))(std::forward<Args>(args)...);
      },
      [](void* dst, const void* src) {
        ::new (dst) D*(new D(*heap_cslot<D>(src)));
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(heap_slot<D>(src));
      },
      [](void* s) noexcept { delete heap_slot<D>(s); },
  };

  void move_from(SmallFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buffer_, other.buffer_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) mutable unsigned char buffer_[kInlineSize]{};
  const Ops* ops_ = nullptr;
};

}  // namespace redundancy::util
