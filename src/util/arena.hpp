// Bump-pointer arena for per-call scratch on the adjudication hot path.
//
// A vote over N ballots needs a handful of short arrays (digests, group
// reps, counts) whose lifetime is exactly one adjudication. Allocating
// them from the heap puts malloc/free on every cache-miss verdict; the
// arena hands out pointers by bumping a cursor and reclaims everything at
// scope exit by moving the cursor back.
//
// Usage is stack-disciplined via ArenaScope, so nested users on the same
// thread (an outer adjudication that indirectly triggers an inner one)
// compose: each scope releases only what was allocated after it opened.
// Memory blocks are never freed on release — they are reused by the next
// scope — so a thread's arena reaches its high-water mark once and the
// steady state performs no allocation at all (see thread_arena()).
//
// Only trivially-destructible types may be placed here: release never
// runs destructors.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace redundancy::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_block_bytes = 4096)
      : initial_block_bytes_(initial_block_bytes < 64 ? 64
                                                      : initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation; `align` must be a power of two.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    while (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      const std::size_t aligned = align_up(b.used, align);
      if (aligned + bytes <= b.capacity) {
        b.used = aligned + bytes;
        return b.data.get() + aligned;
      }
      ++current_;
      if (current_ < blocks_.size()) blocks_[current_].used = 0;
    }
    const std::size_t last_cap =
        blocks_.empty() ? initial_block_bytes_ / 2 : blocks_.back().capacity;
    std::size_t cap = last_cap * 2;
    if (cap < bytes + align) cap = bytes + align;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(cap), cap, 0});
    current_ = blocks_.size() - 1;
    Block& b = blocks_.back();
    const std::size_t aligned = align_up(0, align);
    b.used = aligned + bytes;
    return b.data.get() + aligned;
  }

  /// Uninitialized array of n Ts (value-initialized), arena-owned.
  template <typename T>
    requires(std::is_trivially_destructible_v<T>)
  [[nodiscard]] std::span<T> alloc_array(std::size_t n) {
    if (n == 0) return {};
    auto* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T{};
    return {p, n};
  }

  struct Marker {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Marker mark() const noexcept {
    if (blocks_.empty()) return {};
    return {current_, blocks_[current_].used};
  }

  /// Roll the cursor back to `m`. Everything allocated after the marker is
  /// reclaimed; the blocks stay around for reuse.
  void release_to(Marker m) noexcept {
    if (blocks_.empty()) return;
    if (m.block >= blocks_.size()) return;  // stale marker; keep everything
    for (std::size_t i = m.block + 1; i <= current_ && i < blocks_.size(); ++i) {
      blocks_[i].used = 0;
    }
    current_ = m.block;
    blocks_[current_].used = m.used;
  }

  void reset() noexcept { release_to(Marker{}); }

  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    return total;
  }

  [[nodiscard]] std::size_t bytes_used() const noexcept {
    std::size_t total = 0;
    for (std::size_t i = 0; i <= current_ && i < blocks_.size(); ++i) {
      total += blocks_[i].used;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity;
    std::size_t used;
  };

  static std::size_t align_up(std::size_t v, std::size_t align) noexcept {
    return (v + align - 1) & ~(align - 1);
  }

  std::size_t initial_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;
};

/// RAII watermark: releases everything allocated in the scope on exit.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) noexcept
      : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.release_to(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Marker mark_;
};

/// The calling thread's scratch arena. Warm after first use: steady-state
/// adjudication allocates nothing.
[[nodiscard]] inline Arena& thread_arena() {
  thread_local Arena arena{4096};
  return arena;
}

}  // namespace redundancy::util
