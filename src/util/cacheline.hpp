// Cache-line geometry for the hot-path layout rules (DESIGN.md "Memory
// layout & dispatch rules").
//
// kCacheLine is the *destructive* interference size: two atomics closer
// than this ping-pong a line between cores when written from different
// threads (false sharing, faultline FL002), and a mutable struct that
// straddles a line boundary pays two coherence misses per touch (FL001).
// Hot per-worker / per-shard state is therefore
//
//   * aligned to kCacheLine (`alignas(util::kCacheLine)`), and
//   * padded to a whole multiple of it (static_asserted at the type),
//
// so adjacent instances in an array can never share a line.
//
// std::hardware_destructive_interference_size is the standard spelling,
// but GCC warns on every ABI-visible use (-Winterference-size) because its
// value may differ between translation units compiled with different
// -mtune flags. A project-wide constant sidesteps that: one value,
// everywhere, chosen per architecture (128 on modern aarch64/ppc64 where
// the prefetcher pairs lines; 64 elsewhere).
#pragma once

#include <cstddef>

namespace redundancy::util {

#if defined(__aarch64__) || defined(__powerpc64__)
inline constexpr std::size_t kCacheLine = 128;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

/// Round `n` up to the next multiple of the cache line size.
[[nodiscard]] constexpr std::size_t cacheline_ceil(std::size_t n) noexcept {
  return (n + kCacheLine - 1) / kCacheLine * kCacheLine;
}

/// Round `n` up to the next power of two (minimum 1).
[[nodiscard]] constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace redundancy::util
