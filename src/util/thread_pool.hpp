// Minimal work-stealing-free fixed thread pool used by the parallel
// redundancy patterns (parallel evaluation / parallel selection).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace redundancy::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 2).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run all thunks, blocking until every one has completed.
  void run_all(std::vector<std::function<void()>> tasks);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Process-wide shared pool for pattern executors that do not own one.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace redundancy::util
