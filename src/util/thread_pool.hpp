// Lock-free work-stealing thread pool used by the parallel redundancy
// patterns (parallel evaluation / parallel selection), hedged sequential
// alternatives, and the parallel campaign runner.
//
// Each worker owns a Chase–Lev deque (util/chase_lev_deque.hpp): the owner
// pushes and pops at the bottom with plain release stores (LIFO, cache-hot)
// and thieves CAS the top (FIFO, oldest first) — no mutex anywhere on the
// worker hot path. Submissions from non-worker threads land in a *sharded*
// injector: a power-of-two array of cache-line-aligned lanes, each its own
// mutex-protected FIFO chain, with submitter threads hashed to a sticky
// home lane — eight external submitters contend on eight different locks
// instead of one (the PR-5 injector was a single centralized dispatcher,
// faultline FL061/FL041). Workers drain lanes in amortized batches into
// their own deques, where the tasks become stealable; each worker prefers
// the lane it is affine to, so a submitter/worker pair in steady state
// keeps reusing the same lane's lines. Idle workers park on their own
// mutex+condvar pair (one parking lot per worker, not a global broadcast
// condition variable): a submitter wakes exactly one parked worker, and a
// worker that dequeues work while more is pending wakes the next — wake-ups
// chain instead of stampeding.
//
// Steal order is topology-aware: at construction each worker gets its own
// victim permutation that visits same-cluster workers (util/topology.hpp —
// SMT siblings / LLC sharers, by worker index as a locality proxy) before
// remote ones, with per-worker randomized tie-breaking inside each distance
// class so simultaneously-starved workers fan out over different victims
// instead of stampeding the same deque.
//
// submit_batch posts a whole fan-out with one pending-counter epoch and one
// wake-up instead of N; BatchRunner (bottom of this header) is the reusable
// builder the pattern executors use, so a steady-state variant fan-out
// performs no allocation beyond recycled task nodes.
//
// Waiters (run_all, submit_first_wins, the incremental adjudication loop in
// ParallelEvaluation) that are themselves pool workers *help*: while blocked
// they steal and execute queued tasks, so nested fan-out on the shared pool
// cannot deadlock even when every worker is itself waiting. External waiters
// block instead — helping would let a slow stolen task delay an
// already-decided early-return verdict.
//
// When the obs:: layer is enabled the engine reports itself through the
// metrics registry: pool.tasks_posted/executed/stolen/helped counters, a
// pool.queue_depth_at_post histogram, a pool.task_exec_ns latency histogram,
// and a pool.steal_ns histogram over successful steal operations. Disabled
// cost is one relaxed atomic load per site.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "util/cacheline.hpp"
#include "util/chase_lev_deque.hpp"
#include "util/unique_function.hpp"

namespace redundancy::util {

/// Cooperative cancellation: a shared flag observed by in-flight tasks.
/// Copies share the flag. Cancelling never interrupts a running task; it
/// tells tasks that have not started (and cooperative loops inside tasks)
/// that their result is no longer wanted.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }
  void cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

namespace pool_detail {

/// A queued task. Owned linearly: freelist/submitter → deque or injector →
/// executor → freelist. Handed across threads only through the deque's
/// release/acquire slot protocol or a lane mutex, so the payload needs no
/// synchronization of its own. Recycled through a bounded thread-local
/// cache, making the steady-state submit path allocation-free. Cache-line
/// aligned: the executor writes the node (payload teardown, next link)
/// while the recycler chains through it — a node sharing a line with its
/// freelist neighbour would ping-pong between the freeing and reusing
/// threads.
struct alignas(kCacheLine) TaskNode {
  UniqueFunction<void()> task;
  TaskNode* next = nullptr;  ///< injector/freelist chain link
  /// False for tasks that must never run nested inside a help-wait (see
  /// try_run_one): tasks that may take locks or block — e.g. gateway route
  /// jobs — would self-deadlock if a pattern's helping wait re-entered one
  /// on a stack frame that already holds the same lock. Workers in their
  /// normal loop run every task regardless.
  bool helpable = true;
};
static_assert(sizeof(TaskNode) % kCacheLine == 0,
              "adjacent task nodes must not share a cache line");

/// Per-worker state: the lock-free deque plus a private parking lot.
/// Aligned and padded to whole cache lines so workers packed in an array
/// never share a line: the deque indices are the hottest words in the
/// engine (owner writes bottom, every thief CASes top), and the parking
/// flags are written by submitters during the wake handshake. The deque
/// leads (its own internal alignment keeps top/bottom apart); the parking
/// lot trails on its own line — it is only touched on the park/unpark
/// slow path, so parking traffic never invalidates deque lines.
struct alignas(kCacheLine) Worker {
  ChaseLevDeque<TaskNode*> deque;
  alignas(kCacheLine) std::mutex m;  ///< guards the condvar handshake only
  std::condition_variable cv;
  std::atomic<bool> parked{false};   ///< registered as sleeping
  std::atomic<bool> notified{false}; ///< wake token (consumed on wake)
};
static_assert(sizeof(Worker) % kCacheLine == 0,
              "adjacent workers must not share a cache line");

/// One injector lane: a mutex-protected FIFO chain of externally-submitted
/// tasks. The emptiness probe (`size`) sits alone on the first line so the
/// every-claim "is there injector work?" scan by idle workers never touches
/// the line the lock and chain pointers bounce on; lanes are aligned and
/// padded so neighbouring lanes in the array never share a line (the whole
/// point of sharding the injector is that submitters on different lanes do
/// not communicate at all).
struct alignas(kCacheLine) InjectorLane {
  std::atomic<std::size_t> size{0};  ///< lock-free emptiness probe
  char probe_pad_[kCacheLine - sizeof(std::atomic<std::size_t>)]{};
  std::mutex m;
  TaskNode* head = nullptr;
  TaskNode* tail = nullptr;
};
static_assert(sizeof(InjectorLane) % kCacheLine == 0,
              "adjacent injector lanes must not share a cache line");

}  // namespace pool_detail

class ThreadPool {
 public:
  using Task = UniqueFunction<void()>;

  enum class ExceptionPolicy {
    swallow,  ///< drop exceptions thrown by tasks
    forward,  ///< rethrow the first task exception in the waiting thread
  };

  /// Outcome of submit_first_wins.
  template <typename R>
  struct FirstWins {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::optional<R> value;     ///< the winning result, if any task produced one
    std::size_t winner = npos;  ///< index of the winning task
    std::size_t executed = 0;   ///< tasks that ran before cancellation took hold
                                ///< (counted at the time the wait ended)
  };

  /// Spawns `threads` workers (defaults to hardware concurrency, min 2).
  /// `injector_lanes` overrides the external-submission lane count (0 =
  /// derive a power of two from the worker count; 1 reproduces the PR-5
  /// single-injector shape, used by the engine benchmarks as the
  /// contention baseline). Rounded up to a power of two, capped at 64.
  explicit ThreadPool(std::size_t threads = 0, std::size_t injector_lanes = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result. The callable is moved
  /// straight into the queue — no shared_ptr/packaged-task heap wrapping.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task{std::forward<F>(fn)};
    std::future<R> fut = task.get_future();
    post(Task{std::move(task)});
    return fut;
  }

  /// Enqueue a fire-and-forget task. The task must not throw.
  void post(Task task);

  /// Enqueue every task in the span (each is moved from) with a single
  /// pending-counter update and a single wake-up: the woken worker wakes
  /// the next as long as work remains, so a whole variant fan-out pays one
  /// epoch of bookkeeping instead of N. From a worker thread the batch goes
  /// to the worker's own deque (thieves distribute it); from an external
  /// thread it is appended to the injector under one lock. `helpable =
  /// false` marks every task in the batch as off-limits to helping waits
  /// (see TaskNode::helpable) — only dedicated workers will run them.
  void submit_batch(std::span<Task> tasks, bool helpable = true);

  /// Run all tasks, blocking until every one has completed. Exceptions are
  /// swallowed by default; ExceptionPolicy::forward rethrows the first task
  /// exception in the waiting thread. The waiting thread helps execute
  /// queued tasks. run_all is a barrier, so the enqueued wrappers borrow
  /// the caller's tasks and the join state by raw pointer — two words per
  /// task, and the whole batch is submitted with one wake-up.
  void run_all(std::span<Task> tasks,
               ExceptionPolicy policy = ExceptionPolicy::swallow);
  void run_all(std::vector<Task> tasks,
               ExceptionPolicy policy = ExceptionPolicy::swallow) {
    run_all(std::span<Task>{tasks}, policy);
  }

  /// Submit every task and block until one returns an engaged optional (the
  /// "first acceptable ballot") or all return nullopt. On a win the shared
  /// CancellationToken is cancelled: queued tasks that have not started are
  /// skipped, and stragglers already running finish in the background
  /// without blocking the caller. Tasks must own (or share ownership of)
  /// everything they touch, since they may outlive this call. F is any
  /// callable `std::optional<R>(const CancellationToken&)` — pass raw
  /// lambdas, not std::function, so the enqueued wrapper (shared state +
  /// index + callable) stays inside the Task inline buffer. The whole
  /// candidate set is submitted as one batch (one wake-up).
  template <typename R, typename F>
  FirstWins<R> submit_first_wins(std::vector<F> tasks) {
    static_assert(
        std::is_invocable_r_v<std::optional<R>, F&, const CancellationToken&>,
        "first-wins tasks take the shared CancellationToken and return "
        "std::optional<R>");
    FirstWins<R> out;
    const std::size_t n = tasks.size();
    if (n == 0) return out;

    struct State {
      std::mutex m;
      std::condition_variable cv;
      std::optional<R> value;
      std::size_t winner = FirstWins<R>::npos;
      std::size_t settled = 0;   // tasks finished or skipped
      std::size_t executed = 0;  // tasks that actually ran
      CancellationToken token;
    };
    auto st = std::make_shared<State>();

    std::vector<Task> wrapped;
    wrapped.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      wrapped.emplace_back([st, i, fn = std::move(tasks[i])]() mutable {
        std::optional<R> r;
        const bool ran = !st->token.cancelled();
        if (ran) {
          try {
            r = fn(st->token);
          } catch (...) {
            r.reset();  // a throwing candidate is a losing candidate
          }
        }
        {
          std::lock_guard lock(st->m);
          if (ran) ++st->executed;
          if (r.has_value() && st->winner == FirstWins<R>::npos) {
            st->winner = i;
            st->value = std::move(r);
            st->token.cancel();
          }
          ++st->settled;
        }
        st->cv.notify_all();
      });
    }
    submit_batch(wrapped);

    std::unique_lock lock(st->m);
    help_until(lock, st->cv, [&] {
      return st->winner != FirstWins<R>::npos || st->settled == n;
    });
    out.value = st->value;  // winner is fixed once set; copy is race-free
    out.winner = st->winner;
    out.executed = st->executed;
    return out;
  }

  /// Steal one queued task and run it on the calling thread. Returns false
  /// if every deque (and the injector) was empty. A non-helpable task (see
  /// TaskNode::helpable) is never run here: it is handed back to the
  /// injector (with a wake, so a dedicated worker picks it up) and the call
  /// reports no progress — running it nested inside a blocked frame could
  /// deadlock on locks that frame holds.
  bool try_run_one();

  /// Block until no task is queued or running — i.e. all stragglers from
  /// first-wins / incremental-adjudication runs have settled. The caller
  /// helps drain the queues while waiting.
  void wait_idle();

  /// Wait until done() holds. A caller that is itself a worker of this pool
  /// helps with queued work instead of blocking (otherwise nested fan-out
  /// could leave every worker waiting on tasks nobody runs). An external
  /// caller just waits: helping would risk running a slow straggler inline
  /// and missing an already-decided first-wins / incremental verdict.
  /// `lock` must be held on entry and is held again on return; done() is
  /// only evaluated under the lock.
  template <typename Pred>
  void help_until(std::unique_lock<std::mutex>& lock,
                  std::condition_variable& cv, Pred done) {
    const bool helper = on_worker_thread();
    while (!done()) {
      if (helper) {
        lock.unlock();
        const bool ran = try_run_one();
        lock.lock();
        if (done()) break;
        if (ran) continue;
      }
      cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Number of external-submission lanes (power of two).
  [[nodiscard]] std::size_t injector_lanes() const noexcept {
    return lane_mask_ + 1;
  }

  /// The lane external submissions from the calling thread land in. Sticky
  /// per thread (submitter-affinity hashing); exposed for tests.
  [[nodiscard]] std::size_t home_lane() const noexcept;

  /// The victim order worker `self` sweeps on a failed pop (topology-near
  /// workers first, per-worker shuffled tie-breaks). Exposed for tests.
  [[nodiscard]] std::vector<std::size_t> steal_order(std::size_t self) const;

  /// Number of tasks queued but not yet claimed by a worker. Transiently
  /// over-counts during a submission (the counter rises before the nodes
  /// land), never under-counts.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// True when no task is queued or running. Claims raise active_ before
  /// dropping pending_, and submissions raise pending_ before the nodes
  /// land, so this can transiently read false for an idle pool but never
  /// true for a busy one — safe to poll as a quiescence barrier without
  /// the helping drain wait_idle() performs.
  [[nodiscard]] bool idle() const noexcept {
    return pending_.load(std::memory_order_acquire) == 0 &&
           active_.load(std::memory_order_acquire) == 0;
  }

  /// Process-wide shared pool for pattern executors that do not own one.
  /// Sized from the REDUNDANCY_THREADS environment variable when set to a
  /// valid count (1..1024), otherwise max(hardware concurrency, 8) —
  /// latency-bound redundancy patterns want a variant-wide fan-out even on
  /// small machines. Invalid values (zero, negative, garbage, overflow)
  /// are rejected with a stderr warning and fall back.
  static ThreadPool& shared();

  /// The size shared() would use (exposed so the env-var parsing is
  /// testable without touching the process-wide singleton).
  static std::size_t shared_size_from_env() noexcept;

 private:
  using TaskNode = pool_detail::TaskNode;
  using Worker = pool_detail::Worker;
  using InjectorLane = pool_detail::InjectorLane;

  void worker_loop(std::size_t self);
  [[nodiscard]] bool on_worker_thread() const noexcept;
  void build_steal_orders();

  /// Claim the next runnable node for worker `self`: own deque, then an
  /// amortized grab from the affine injector lane (then the others), then
  /// a near-first steal sweep over the other deques.
  TaskNode* acquire_task(std::size_t self);
  /// Claim a node as an outsider (try_run_one from a non-worker thread):
  /// injector lanes first, then steal from every deque.
  TaskNode* acquire_task_external();
  /// One steal attempt against `victim` with claim bookkeeping.
  TaskNode* try_steal(std::size_t victim);
  TaskNode* steal_sweep_worker(std::size_t self);
  TaskNode* steal_sweep_external();
  /// Drain the front of `lane` (caller runs the first node; a fair share
  /// of the rest lands in worker `self`'s deque when self != npos).
  TaskNode* drain_lane(InjectorLane& lane, std::size_t self);
  void enqueue_chain(TaskNode* head, TaskNode* tail, std::size_t n);
  void execute(TaskNode* node);
  void unpark_one();
  void unpark_all();

  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

  // Workers live in one contiguous aligned array (not a vector of
  // unique_ptrs): the per-worker alignas padding, not allocator luck, is
  // what guarantees neighbouring workers never share a line — and the
  // layout test can assert it.
  std::unique_ptr<Worker[]> workers_state_;
  std::size_t nworkers_ = 0;
  std::unique_ptr<InjectorLane[]> lanes_;  ///< power-of-two sharded injector
  std::size_t lane_mask_ = 0;
  /// Flattened per-worker victim permutations, nworkers_-1 entries each,
  /// built once at construction (near clusters first, shuffled ties).
  std::vector<std::uint32_t> steal_orders_;
  std::vector<std::thread> workers_;
  // Each global counter on its own line: pending_ is written by every
  // submit and every claim, active_ by every execute, num_parked_ only on
  // the park/unpark slow path — stacking them on one line would couple the
  // slow path's writes to the hot counters (FL002).
  alignas(kCacheLine) std::atomic<std::size_t> pending_{0};
  alignas(kCacheLine) std::atomic<std::size_t> active_{0};
  alignas(kCacheLine) std::atomic<std::size_t> num_parked_{0};
  std::atomic<bool> stopping_{false};

 public:
  /// Layout introspection for tests/util/layout_test.cpp.
  [[nodiscard]] const void* pending_addr() const noexcept { return &pending_; }
  [[nodiscard]] const void* active_addr() const noexcept { return &active_; }
  [[nodiscard]] const void* parked_count_addr() const noexcept {
    return &num_parked_;
  }
};

/// Reusable fan-out builder: collect the tasks of one submission epoch,
/// then hand the whole batch to the pool at once (one pending-counter
/// update, one wake-up). The internal vector keeps its capacity across
/// epochs, so a pattern that owns a BatchRunner fans out allocation-free in
/// steady state. Not thread-safe; one builder per submitting thread.
class BatchRunner {
 public:
  /// Bind to `pool`, or to ThreadPool::shared() when null. The pool is
  /// resolved lazily so a BatchRunner member does not force singleton
  /// construction at pattern-construction time.
  explicit BatchRunner(ThreadPool* pool = nullptr) noexcept : pool_(pool) {}

  template <typename F>
  void add(F&& fn) {
    tasks_.emplace_back(std::forward<F>(fn));
  }
  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  /// Dispatched tasks may take locks or block (e.g. gateway route jobs):
  /// exclude them from helping waits so a pattern's help-wait can never
  /// re-enter one on a stack that already holds the lock it needs.
  void set_helpable(bool helpable) noexcept { helpable_ = helpable; }

  /// Fire-and-forget: submit everything added since the last dispatch.
  void dispatch() {
    pool().submit_batch(tasks_, helpable_);
    tasks_.clear();  // keeps capacity for the next epoch
  }

  /// Barrier: submit the batch and help until every task completed.
  void run_and_wait(
      ThreadPool::ExceptionPolicy policy = ThreadPool::ExceptionPolicy::swallow) {
    pool().run_all(std::span<ThreadPool::Task>{tasks_}, policy);
    tasks_.clear();
  }

  [[nodiscard]] ThreadPool& pool() noexcept {
    return pool_ != nullptr ? *pool_ : ThreadPool::shared();
  }

 private:
  ThreadPool* pool_;
  std::vector<ThreadPool::Task> tasks_;
  bool helpable_ = true;
};

}  // namespace redundancy::util
