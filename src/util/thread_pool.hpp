// Work-stealing fixed thread pool used by the parallel redundancy patterns
// (parallel evaluation / parallel selection) and the parallel campaign
// runner.
//
// Each worker owns a deque: it pushes and pops at the back (LIFO, cache-hot)
// and thieves steal from the front (FIFO, oldest first). Submissions from
// non-worker threads are distributed round-robin; submissions from a worker
// go to that worker's own deque. Waiters (run_all, submit_first_wins, the
// incremental adjudication loop in ParallelEvaluation) that are themselves
// pool workers *help*: while blocked they steal and execute queued tasks, so
// nested fan-out on the shared pool cannot deadlock even when every worker
// is itself waiting. External waiters block instead — helping would let a
// slow stolen task delay an already-decided early-return verdict.
//
// When the obs:: layer is enabled the engine reports itself through the
// metrics registry: pool.tasks_posted/executed/stolen/helped counters, a
// pool.queue_depth_at_post histogram, and a pool.task_exec_ns latency
// histogram. Disabled cost is one relaxed atomic load per site.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "util/unique_function.hpp"

namespace redundancy::util {

/// Cooperative cancellation: a shared flag observed by in-flight tasks.
/// Copies share the flag. Cancelling never interrupts a running task; it
/// tells tasks that have not started (and cooperative loops inside tasks)
/// that their result is no longer wanted.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }
  void cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class ThreadPool {
 public:
  using Task = UniqueFunction<void()>;

  enum class ExceptionPolicy {
    swallow,  ///< drop exceptions thrown by tasks
    forward,  ///< rethrow the first task exception in the waiting thread
  };

  /// Outcome of submit_first_wins.
  template <typename R>
  struct FirstWins {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::optional<R> value;     ///< the winning result, if any task produced one
    std::size_t winner = npos;  ///< index of the winning task
    std::size_t executed = 0;   ///< tasks that ran before cancellation took hold
                                ///< (counted at the time the wait ended)
  };

  /// Spawns `threads` workers (defaults to hardware concurrency, min 2).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result. The callable is moved
  /// straight into the queue — no shared_ptr/packaged-task heap wrapping.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task{std::forward<F>(fn)};
    std::future<R> fut = task.get_future();
    post(Task{std::move(task)});
    return fut;
  }

  /// Enqueue a fire-and-forget task. The task must not throw.
  void post(Task task);

  /// Run all tasks, blocking until every one has completed. Exceptions are
  /// swallowed by default; ExceptionPolicy::forward rethrows the first task
  /// exception in the waiting thread. The waiting thread helps execute
  /// queued tasks. run_all is a barrier, so the posted wrappers borrow the
  /// task vector and the join state by raw pointer — two words per task,
  /// always inline in the queue's UniqueFunction buffer, no per-task heap
  /// allocation.
  void run_all(std::vector<Task> tasks,
               ExceptionPolicy policy = ExceptionPolicy::swallow);

  /// Submit every task and block until one returns an engaged optional (the
  /// "first acceptable ballot") or all return nullopt. On a win the shared
  /// CancellationToken is cancelled: queued tasks that have not started are
  /// skipped, and stragglers already running finish in the background
  /// without blocking the caller. Tasks must own (or share ownership of)
  /// everything they touch, since they may outlive this call. F is any
  /// callable `std::optional<R>(const CancellationToken&)` — pass raw
  /// lambdas, not std::function, so the posted wrapper (shared state + index
  /// + callable) stays inside the Task inline buffer.
  template <typename R, typename F>
  FirstWins<R> submit_first_wins(std::vector<F> tasks) {
    static_assert(
        std::is_invocable_r_v<std::optional<R>, F&, const CancellationToken&>,
        "first-wins tasks take the shared CancellationToken and return "
        "std::optional<R>");
    FirstWins<R> out;
    const std::size_t n = tasks.size();
    if (n == 0) return out;

    struct State {
      std::mutex m;
      std::condition_variable cv;
      std::optional<R> value;
      std::size_t winner = FirstWins<R>::npos;
      std::size_t settled = 0;   // tasks finished or skipped
      std::size_t executed = 0;  // tasks that actually ran
      CancellationToken token;
    };
    auto st = std::make_shared<State>();

    for (std::size_t i = 0; i < n; ++i) {
      post(Task{[st, i, fn = std::move(tasks[i])]() mutable {
        std::optional<R> r;
        const bool ran = !st->token.cancelled();
        if (ran) {
          try {
            r = fn(st->token);
          } catch (...) {
            r.reset();  // a throwing candidate is a losing candidate
          }
        }
        {
          std::lock_guard lock(st->m);
          if (ran) ++st->executed;
          if (r.has_value() && st->winner == FirstWins<R>::npos) {
            st->winner = i;
            st->value = std::move(r);
            st->token.cancel();
          }
          ++st->settled;
        }
        st->cv.notify_all();
      }});
    }

    std::unique_lock lock(st->m);
    help_until(lock, st->cv, [&] {
      return st->winner != FirstWins<R>::npos || st->settled == n;
    });
    out.value = st->value;  // winner is fixed once set; copy is race-free
    out.winner = st->winner;
    out.executed = st->executed;
    return out;
  }

  /// Steal one queued task and run it on the calling thread. Returns false
  /// if every deque was empty.
  bool try_run_one();

  /// Block until no task is queued or running — i.e. all stragglers from
  /// first-wins / incremental-adjudication runs have settled. The caller
  /// helps drain the queues while waiting.
  void wait_idle();

  /// Wait until done() holds. A caller that is itself a worker of this pool
  /// helps with queued work instead of blocking (otherwise nested fan-out
  /// could leave every worker waiting on tasks nobody runs). An external
  /// caller just waits: helping would risk running a slow straggler inline
  /// and missing an already-decided first-wins / incremental verdict.
  /// `lock` must be held on entry and is held again on return; done() is
  /// only evaluated under the lock.
  template <typename Pred>
  void help_until(std::unique_lock<std::mutex>& lock,
                  std::condition_variable& cv, Pred done) {
    const bool helper = on_worker_thread();
    while (!done()) {
      if (helper) {
        lock.unlock();
        const bool ran = try_run_one();
        lock.lock();
        if (done()) break;
        if (ran) continue;
      }
      cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Number of tasks queued but not yet claimed by a worker.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// Process-wide shared pool for pattern executors that do not own one.
  /// Sized from the REDUNDANCY_THREADS environment variable when set,
  /// otherwise max(hardware concurrency, 8) — latency-bound redundancy
  /// patterns want a variant-wide fan-out even on small machines.
  static ThreadPool& shared();

  /// The size shared() would use (exposed so the env-var parsing is
  /// testable without touching the process-wide singleton).
  static std::size_t shared_size_from_env() noexcept;

 private:
  struct WorkerQueue {
    std::mutex m;
    std::deque<Task> q;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, Task& out);
  [[nodiscard]] bool on_worker_thread() const noexcept;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> active_{0};  ///< tasks currently executing
  std::atomic<std::size_t> next_queue_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stopping_{false};
};

}  // namespace redundancy::util
