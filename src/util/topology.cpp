#include "util/topology.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace redundancy::util {

namespace {

/// Read a small sysfs file into `buf` (NUL-terminated). Returns false when
/// the file is absent or unreadable — the caller falls back.
bool read_small_file(const char* path, char* buf, std::size_t cap) noexcept {
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return false;
  const std::size_t n = std::fread(buf, 1, cap - 1, f);
  std::fclose(f);
  if (n == 0) return false;
  buf[n] = '\0';
  return true;
}

std::size_t cpu_list_count_at(const char* path) noexcept {
  char buf[512];
  if (!read_small_file(path, buf, sizeof(buf))) return 0;
  return parse_cpu_list_count(buf);
}

Topology probe() noexcept {
  Topology t;
  // Threads per core: cpu0's thread siblings.
  const std::size_t smt = cpu_list_count_at(
      "/sys/devices/system/cpu/cpu0/topology/thread_siblings_list");
  // LLC sharing set: the last cache index that lists shared CPUs is the
  // biggest cache; walk indices upward and keep the last readable one.
  std::size_t llc = 0;
  for (int index = 0; index < 8; ++index) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/cpu/cpu0/cache/index%d/"
                  "shared_cpu_list",
                  index);
    const std::size_t n = cpu_list_count_at(path);
    if (n == 0) break;
    llc = n;
  }
  if (llc == 0) {
    // No cache info: fall back to the package as the cluster.
    llc = cpu_list_count_at(
        "/sys/devices/system/cpu/cpu0/topology/package_cpus_list");
    if (llc == 0) {
      llc = cpu_list_count_at(
          "/sys/devices/system/cpu/cpu0/topology/core_siblings_list");
    }
  }
  if (smt > 0) {
    t.smt_width = smt;
    t.probed = true;
  }
  if (llc > 0) {
    t.cluster_size = llc;
    t.probed = true;
  }
  if (t.cluster_size < t.smt_width) t.cluster_size = t.smt_width;
  if (t.cluster_size == 0) t.cluster_size = 4;
  if (t.smt_width == 0) t.smt_width = 1;
  return t;
}

}  // namespace

std::size_t parse_cpu_list_count(const char* text) noexcept {
  if (text == nullptr) return 0;
  std::size_t count = 0;
  const char* p = text;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const long first = std::strtol(p, &end, 10);
    if (end == p || first < 0) return 0;
    long last = first;
    p = end;
    if (*p == '-') {
      ++p;
      last = std::strtol(p, &end, 10);
      if (end == p || last < first) return 0;
      p = end;
    }
    count += static_cast<std::size_t>(last - first) + 1;
    if (*p == ',') ++p;
  }
  return count;
}

const Topology& topology() noexcept {
  static const Topology t = probe();
  return t;
}

std::size_t reactor_cpu_slot(std::size_t reactor, std::size_t cpus,
                             std::size_t cluster_size) noexcept {
  if (cpus == 0) return 0;
  if (cluster_size == 0 || cluster_size > cpus) cluster_size = cpus;
  // Spread one reactor per cluster before doubling up: reactor i goes to
  // cluster (i mod clusters), at the (i div clusters)-th slot inside it.
  const std::size_t clusters = cpus / cluster_size > 0 ? cpus / cluster_size
                                                       : 1;
  const std::size_t cluster = reactor % clusters;
  const std::size_t within = reactor / clusters;
  return (cluster * cluster_size + within) % cpus;
}

bool pin_current_thread_to_cpu(std::size_t cpu) noexcept {
#if defined(__linux__)
  if (cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace redundancy::util
