// Checksums and hashes used by robust data structures, software audits,
// checkpoint integrity verification, and N-variant data tagging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace redundancy::util {

/// CRC-32 (IEEE 802.3 polynomial, reflected).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t seed = 0) noexcept;
[[nodiscard]] std::uint32_t crc32(std::string_view data,
                                  std::uint32_t seed = 0) noexcept;

/// FNV-1a 64-bit hash.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mix an integer into an FNV-style running hash (for structural audits).
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t h,
                                               std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace redundancy::util
