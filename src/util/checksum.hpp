// Checksums and hashes used by robust data structures, software audits,
// checkpoint integrity verification, N-variant data tagging, and the
// redundancy result cache (Digest64 / digest64 below).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace redundancy::util {

/// CRC-32 (IEEE 802.3 polynomial, reflected).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t seed = 0) noexcept;
[[nodiscard]] std::uint32_t crc32(std::string_view data,
                                  std::uint32_t seed = 0) noexcept;

/// FNV-1a 64-bit hash.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mix an integer into an FNV-style running hash (for structural audits).
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t h,
                                               std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Strong 64-bit finalizer (splitmix64): full-avalanche bit mixing, so
/// nearby inputs (sequential keys, short strings) land in unrelated cache
/// shards and TinyLFU sketch rows.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Streaming 64-bit digest for cache keys: FNV-1a accumulation over a typed,
/// length-prefixed encoding, finalized through mix64 (wyhash-style avalanche).
/// Unlike the buffer-oriented crc32/fnv1a above, Digest64 consumes *values* —
/// integers, floats, strings, containers — with no intermediate buffer, so a
/// request key is computed allocation-free on the cache hot path. Every
/// variable-length update is length-prefixed, making the encoding
/// prefix-unambiguous: update("ab"), update("c") never collides with
/// update("a"), update("bc").
class Digest64 {
 public:
  constexpr Digest64() = default;

  /// Raw bytes (no length prefix; compose carefully or prefer update()).
  constexpr Digest64& bytes(const char* data, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<std::uint8_t>(data[i]);
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }

  constexpr Digest64& update(std::string_view s) noexcept {
    word(s.size());
    return bytes(s.data(), s.size());
  }
  constexpr Digest64& update(const char* s) noexcept {
    return update(std::string_view{s});
  }
  constexpr Digest64& update(bool v) noexcept { return word(v ? 1 : 0); }

  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> ||
                                        std::is_enum_v<T>>>
  constexpr Digest64& update(T v) noexcept {
    // Canonical 8-byte form: sign-extended for signed types, so the digest
    // of an int equals the digest of the same value as int64_t.
    if constexpr (std::is_enum_v<T>) {
      return word(static_cast<std::uint64_t>(
          static_cast<std::underlying_type_t<T>>(v)));
    } else if constexpr (std::is_signed_v<T>) {
      return word(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
    } else {
      return word(static_cast<std::uint64_t>(v));
    }
  }

  Digest64& update(double v) noexcept {
    // Bit pattern of the canonical double; +0.0 and -0.0 digest equal.
    if (v == 0.0) v = 0.0;
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    return word(bits);
  }
  Digest64& update(float v) noexcept { return update(static_cast<double>(v)); }

  template <typename T>
  Digest64& update(const std::vector<T>& vs) noexcept {
    word(vs.size());
    for (const auto& v : vs) update(v);
    return *this;
  }
  template <typename T>
  Digest64& update(const std::optional<T>& v) noexcept {
    word(v.has_value() ? 1 : 0);
    if (v.has_value()) update(*v);
    return *this;
  }
  template <typename A, typename B>
  Digest64& update(const std::pair<A, B>& p) noexcept {
    update(p.first);
    return update(p.second);
  }

  /// Finalized digest of everything updated so far.
  [[nodiscard]] constexpr std::uint64_t value() const noexcept {
    return mix64(h_);
  }

 private:
  constexpr Digest64& word(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffU;
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }

  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
};

/// One-shot digest of a value sequence: digest64(a, b, c).
template <typename... Ts>
[[nodiscard]] std::uint64_t digest64(const Ts&... vs) noexcept {
  Digest64 d;
  (d.update(vs), ...);
  return d.value();
}

namespace detail {
template <typename T, typename = void>
struct IsDigestible : std::false_type {};
template <typename T>
struct IsDigestible<T, std::void_t<decltype(std::declval<Digest64&>().update(
                           std::declval<const T&>()))>> : std::true_type {};
}  // namespace detail

/// True when digest64(T) compiles — the pattern executors use this to derive
/// a default cache key function for their input type.
template <typename T>
inline constexpr bool is_digestible_v = detail::IsDigestible<T>::value;

}  // namespace redundancy::util
