#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace redundancy::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderror() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double Accumulator::ci95() const noexcept { return 1.96 * stderror(); }

std::pair<double, double> Proportion::wilson95() const noexcept {
  if (n_ == 0) return {0.0, 1.0};
  constexpr double z = 1.96;
  const auto n = static_cast<double>(n_);
  const double phat = value();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), cell_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets + 2, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
  } else if (x >= hi_) {
    ++counts_.back();
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / cell_);
    idx = std::min(idx, counts_.size() - 3);
    ++counts_[idx + 1];
  }
}

double Histogram::percentile(double p) const noexcept {
  if (total_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = 0.0;
  // Underflow bucket reports the low boundary; overflow the high boundary.
  cum += static_cast<double>(counts_.front());
  if (cum >= target) return lo_;
  for (std::size_t i = 1; i + 1 < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0) {
      const double frac = (target - cum) / c;
      return lo_ + (static_cast<double>(i - 1) + frac) * cell_;
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t i = 1; i + 1 < counts_.size(); ++i) peak = std::max(peak, counts_[i]);
  std::string out;
  if (peak == 0) return out;
  char buf[64];
  for (std::size_t i = 1; i + 1 < counts_.size(); ++i) {
    const double left = lo_ + static_cast<double>(i - 1) * cell_;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(buf, sizeof buf, "%10.3f | ", left);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

double Sample::percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Sample::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

}  // namespace redundancy::util
