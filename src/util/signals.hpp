// Process-wide signal hygiene for components that write to sockets.
//
// A peer that disappears mid-response turns the next send() into SIGPIPE,
// and the default disposition kills the process — the one failure mode a
// redundancy layer must never import from the transport. Every send in the
// tree passes MSG_NOSIGNAL, but that flag does not cover write()s made by
// third-party code sharing the process, so socket-owning subsystems (the
// gateway, live telemetry) also ignore the signal process-wide at startup.
#pragma once

#include <csignal>

namespace redundancy::util {

/// Idempotent, thread-safe-enough (both racers store the same disposition).
inline void ignore_sigpipe() noexcept {
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
}

}  // namespace redundancy::util
