// Process-wide signal hygiene for components that write to sockets.
//
// A peer that disappears mid-response turns the next send() into SIGPIPE,
// and the default disposition kills the process — the one failure mode a
// redundancy layer must never import from the transport. Every send in the
// tree passes MSG_NOSIGNAL, but that flag does not cover write()s made by
// third-party code sharing the process, so socket-owning subsystems (the
// gateway, live telemetry) also ignore the signal process-wide at startup.
// Crash-signal interception (the flight-recorder black box) follows the
// same principle in reverse: a fault that IS going to kill the process must
// first leave its trace. install_crash_signals() points the fatal-signal
// set at a caller-supplied async-signal-safe handler with SA_RESETHAND, so
// the handler runs exactly once and the re-raised signal then takes the
// default path — the process still dies with the original signal (correct
// exit status, core dump policy untouched), it just dumps first.
#pragma once

#include <csignal>

namespace redundancy::util {

/// Idempotent, thread-safe-enough (both racers store the same disposition).
inline void ignore_sigpipe() noexcept {
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);
#endif
}

/// A handler for install_crash_signals. Everything it calls must be
/// async-signal-safe: write()/open()/close() and plain memory reads only —
/// no allocation, no locks, no stdio.
using CrashSignalHandler = void (*)(int);

/// Route the fatal-signal set (SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL)
/// through `handler`. SA_RESETHAND restores the default disposition before
/// the handler runs, so the handler finishes by re-raising its signal and
/// the process dies exactly as it would have — after the black box dumped.
/// SA_NODEFER keeps a fault *inside* the handler fatal instead of deadlocky.
inline void install_crash_signals(CrashSignalHandler handler) noexcept {
  struct sigaction sa = {};
  sa.sa_handler = handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    (void)sigaction(sig, &sa, nullptr);
  }
}

}  // namespace redundancy::util
