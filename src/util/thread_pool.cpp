#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace redundancy::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::atomic<std::size_t> remaining{tasks.size()};
  std::promise<void> done;
  auto fut = done.get_future();
  for (auto& t : tasks) {
    submit([&remaining, &done, task = std::move(t)] {
      task();
      if (remaining.fetch_sub(1) == 1) done.set_value();
    });
  }
  fut.wait();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace redundancy::util
