#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "obs/obs.hpp"

namespace redundancy::util {

namespace {

// Which pool (if any) owns the current thread, and that worker's deque
// index. Lets submit-from-worker go to the submitter's own deque, keeping
// recursive fan-out cache-local and contention-free.
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

// Engine metrics, resolved once and leaked with the registry so workers
// draining during static destruction stay safe. Updated only when
// obs::enabled() — the disabled hot path pays one relaxed load.
struct PoolMetrics {
  obs::Counter& posted = obs::counter("pool.tasks_posted");
  obs::Counter& executed = obs::counter("pool.tasks_executed");
  obs::Counter& stolen = obs::counter("pool.tasks_stolen");
  obs::Counter& helped = obs::counter("pool.tasks_helped");
  obs::Histogram& queue_depth = obs::histogram("pool.queue_depth_at_post");
  obs::Histogram& task_ns = obs::histogram("pool.task_exec_ns");
  obs::Histogram& steal_ns = obs::histogram("pool.steal_ns");

  static PoolMetrics& get() {
    static PoolMetrics* metrics = new PoolMetrics();
    return *metrics;
  }
};

// Recycled TaskNode storage. Nodes migrate between threads — allocated by
// the submitter, freed by the executor — so per-thread caches drift
// one-sided: a pure submitter's cache drains while the workers' caches
// overflow, and a naive bounded cache degenerates to one malloc + one
// free per task. The global transfer list fixes that: overflow is spliced
// to it in chains of kNodeTransfer under one lock, and an empty cache
// refills from it the same way, so the amortized cross-thread cost is two
// lock round-trips per kNodeTransfer tasks. A cache is only ever touched
// by its owning thread; cross-thread handoff of a node's *contents*
// happens through the deque slots' release/acquire or the injector mutex.
constexpr std::size_t kNodeCacheMax = 256;   // per-thread hoard bound
constexpr std::size_t kNodeTransfer = 128;   // chain length per splice

struct GlobalNodeList {
  std::mutex m;
  pool_detail::TaskNode* head = nullptr;  // chains linked through ->next
  std::size_t size = 0;

  // Leaked singleton, same idiom as PoolMetrics: worker threads of
  // static-storage pools free nodes during process teardown.
  static GlobalNodeList& get() {
    static GlobalNodeList* list = new GlobalNodeList();
    return *list;
  }
};

struct NodeCache {
  std::vector<pool_detail::TaskNode*> free;
  ~NodeCache() {
    for (pool_detail::TaskNode* n : free) delete n;
  }
};

NodeCache& node_cache() {
  thread_local NodeCache cache;
  return cache;
}

pool_detail::TaskNode* alloc_node(UniqueFunction<void()>&& task) {
  NodeCache& cache = node_cache();
  if (cache.free.empty()) {
    // Refill in bulk from the global list before falling back to new.
    GlobalNodeList& global = GlobalNodeList::get();
    std::lock_guard lock(global.m);
    while (global.head != nullptr && cache.free.size() < kNodeTransfer) {
      pool_detail::TaskNode* n = global.head;
      global.head = n->next;
      --global.size;
      cache.free.push_back(n);
    }
  }
  pool_detail::TaskNode* n;
  if (!cache.free.empty()) {
    n = cache.free.back();
    cache.free.pop_back();
  } else {
    n = new pool_detail::TaskNode();
  }
  n->task = std::move(task);
  n->next = nullptr;
  return n;
}

void free_node(pool_detail::TaskNode* n) {
  n->task = UniqueFunction<void()>{};  // release the payload eagerly
  n->next = nullptr;
  NodeCache& cache = node_cache();
  cache.free.push_back(n);
  if (cache.free.size() > kNodeCacheMax) {
    // Splice half the hoard to the global list as one chain, built before
    // the lock so the critical section is two pointer writes.
    pool_detail::TaskNode* head = nullptr;
    pool_detail::TaskNode* tail = nullptr;
    for (std::size_t i = 0; i < kNodeTransfer; ++i) {
      pool_detail::TaskNode* t = cache.free.back();
      cache.free.pop_back();
      t->next = head;
      head = t;
      if (tail == nullptr) tail = t;
    }
    GlobalNodeList& global = GlobalNodeList::get();
    std::lock_guard lock(global.m);
    tail->next = global.head;
    global.head = head;
    global.size += kNodeTransfer;
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  }
  workers_state_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_state_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_seq_cst);
  unpark_all();
  for (auto& w : workers_) w.join();
  // Workers only exit once pending_ == 0, so the injector is empty here.
}

bool ThreadPool::on_worker_thread() const noexcept { return tls_pool == this; }

void ThreadPool::post(Task task) {
  TaskNode* node = alloc_node(std::move(task));
  enqueue_chain(node, node, 1);
}

void ThreadPool::submit_batch(std::span<Task> tasks) {
  if (tasks.empty()) return;
  TaskNode* head = nullptr;
  TaskNode* tail = nullptr;
  for (Task& t : tasks) {
    TaskNode* node = alloc_node(std::move(t));
    if (head == nullptr) {
      head = tail = node;
    } else {
      tail->next = node;
      tail = node;
    }
  }
  enqueue_chain(head, tail, tasks.size());
}

void ThreadPool::enqueue_chain(TaskNode* head, TaskNode* tail,
                               std::size_t n) {
  // The counter rises before any node becomes claimable, so pending_ never
  // underflows; seq_cst makes the increment globally ordered against a
  // parking worker's recheck (Dekker handshake — see worker_loop).
  const std::size_t depth =
      pending_.fetch_add(n, std::memory_order_seq_cst) + n;
  if (tls_pool == this) {
    // Worker fan-out: straight into our own deque, where thieves (woken by
    // the chain below) redistribute it. No lock at all on this path.
    Worker& me = *workers_state_[tls_index];
    for (TaskNode* p = head; p != nullptr;) {
      TaskNode* next = p->next;
      p->next = nullptr;
      me.deque.push(p);
      p = next;
    }
  } else {
    std::lock_guard lock(injector_m_);
    if (injector_tail_ != nullptr) {
      injector_tail_->next = head;
    } else {
      injector_head_ = head;
    }
    injector_tail_ = tail;
    injector_size_.fetch_add(n, std::memory_order_release);
  }
  if (obs::enabled()) {
    PoolMetrics& m = PoolMetrics::get();
    m.posted.add(n);
    m.queue_depth.record(depth);
  }
  unpark_one();
}

void ThreadPool::unpark_one() {
  // seq_cst pairs with the parking worker's advertisement + pending
  // recheck: either the worker sees our pending_ add and aborts the park,
  // or its num_parked_ increment is ordered before this load and we find
  // its parked flag in the scan below.
  if (num_parked_.load(std::memory_order_seq_cst) == 0) return;
  for (auto& wp : workers_state_) {
    Worker& w = *wp;
    if (w.parked.load(std::memory_order_seq_cst)) {
      {
        // The lock orders the token against the condvar wait predicate; a
        // worker between "parked = true" and the wait still sees it.
        std::lock_guard lock(w.m);
        w.notified.store(true, std::memory_order_relaxed);
      }
      w.cv.notify_one();
      return;
    }
  }
}

void ThreadPool::unpark_all() {
  for (auto& wp : workers_state_) {
    Worker& w = *wp;
    {
      std::lock_guard lock(w.m);
      w.notified.store(true, std::memory_order_relaxed);
    }
    w.cv.notify_all();
  }
}

ThreadPool::TaskNode* ThreadPool::injector_pop_locked() {
  TaskNode* n = injector_head_;
  if (n == nullptr) return nullptr;
  injector_head_ = n->next;
  if (injector_head_ == nullptr) injector_tail_ = nullptr;
  n->next = nullptr;
  injector_size_.fetch_sub(1, std::memory_order_release);
  return n;
}

ThreadPool::TaskNode* ThreadPool::steal_sweep(std::size_t start,
                                              std::size_t skip) {
  const std::size_t n = workers_state_.size();
  const bool timed = obs::enabled();
  const std::uint64_t t0 = timed ? obs::now_ns() : 0;
  for (std::size_t off = 0; off < n; ++off) {
    const std::size_t victim = (start + off) % n;
    if (victim == skip) continue;
    TaskNode* node = nullptr;
    if (workers_state_[victim]->deque.steal(node)) {
      // active_ rises before pending_ falls, so wait_idle never observes
      // "nothing queued, nothing running" for an in-flight task.
      active_.fetch_add(1, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_release);
      if (timed) {
        PoolMetrics& m = PoolMetrics::get();
        m.stolen.add();
        m.steal_ns.record(obs::now_ns() - t0);
      }
      return node;
    }
  }
  return nullptr;
}

ThreadPool::TaskNode* ThreadPool::acquire_task(std::size_t self) {
  Worker& me = *workers_state_[self];
  TaskNode* node = nullptr;
  if (me.deque.pop(node)) {
    active_.fetch_add(1, std::memory_order_release);
    pending_.fetch_sub(1, std::memory_order_release);
    return node;
  }
  if (injector_size_.load(std::memory_order_acquire) > 0) {
    // Amortized injector drain: claim one node to run and move a fair
    // share of the backlog into our own deque, where it becomes stealable
    // (moved nodes stay "pending" — they are still queued, just elsewhere).
    TaskNode* extras = nullptr;
    {
      std::lock_guard lock(injector_m_);
      node = injector_pop_locked();
      if (node != nullptr) {
        std::size_t share = injector_size_.load(std::memory_order_relaxed) /
                            (workers_state_.size() + 1);
        share = std::min<std::size_t>(share, 32);
        if (share > 0 && injector_head_ != nullptr) {
          extras = injector_head_;
          TaskNode* last = extras;
          std::size_t taken = 1;
          while (taken < share && last->next != nullptr) {
            last = last->next;
            ++taken;
          }
          injector_head_ = last->next;
          if (injector_head_ == nullptr) injector_tail_ = nullptr;
          last->next = nullptr;
          injector_size_.fetch_sub(taken, std::memory_order_release);
        }
      }
    }
    if (node != nullptr) {
      active_.fetch_add(1, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_release);
      for (TaskNode* p = extras; p != nullptr;) {
        TaskNode* next = p->next;
        p->next = nullptr;
        me.deque.push(p);
        p = next;
      }
      return node;
    }
  }
  return steal_sweep(self + 1, self);
}

ThreadPool::TaskNode* ThreadPool::acquire_task_external() {
  if (injector_size_.load(std::memory_order_acquire) > 0) {
    TaskNode* node = nullptr;
    {
      std::lock_guard lock(injector_m_);
      node = injector_pop_locked();
    }
    if (node != nullptr) {
      active_.fetch_add(1, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_release);
      return node;
    }
  }
  return steal_sweep(0, static_cast<std::size_t>(-1));
}

void ThreadPool::execute(TaskNode* node) {
  if (obs::enabled()) {
    PoolMetrics& m = PoolMetrics::get();
    const std::uint64_t t0 = obs::now_ns();
    node->task();
    m.task_ns.record(obs::now_ns() - t0);
    m.executed.add();
  } else {
    node->task();
  }
  active_.fetch_sub(1, std::memory_order_release);
  free_node(node);
}

bool ThreadPool::try_run_one() {
  TaskNode* node = on_worker_thread() ? acquire_task(tls_index)
                                      : acquire_task_external();
  if (node == nullptr) return false;
  if (obs::enabled()) PoolMetrics::get().helped.add();
  execute(node);
  return true;
}

void ThreadPool::wait_idle() {
  for (;;) {
    while (try_run_one()) {
    }
    if (pending_.load(std::memory_order_acquire) == 0 &&
        active_.load(std::memory_order_acquire) == 0) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_index = self;
  Worker& me = *workers_state_[self];
  for (;;) {
    TaskNode* node = acquire_task(self);
    if (node != nullptr) {
      // Wake chaining: if more work remains and someone is asleep, pass
      // the baton before executing — a batch of N wakes workers one by
      // one without a thundering herd.
      if (pending_.load(std::memory_order_acquire) > 0 &&
          num_parked_.load(std::memory_order_acquire) > 0) {
        unpark_one();
      }
      execute(node);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // Park. Dekker-style handshake with enqueue_chain: advertise the park
    // (parked flag + num_parked_), then recheck pending_ — all seq_cst. A
    // submitter either sees our advertisement in its wake scan or we see
    // its pending_ increment here and abort the park.
    me.parked.store(true, std::memory_order_seq_cst);
    num_parked_.fetch_add(1, std::memory_order_seq_cst);
    if (pending_.load(std::memory_order_seq_cst) > 0 ||
        stopping_.load(std::memory_order_seq_cst)) {
      me.parked.store(false, std::memory_order_relaxed);
      num_parked_.fetch_sub(1, std::memory_order_seq_cst);
      std::this_thread::yield();  // tasks are in flight; rescan shortly
      continue;
    }
    {
      std::unique_lock lock(me.m);
      // The timed wait is a safety net only: every wake normally arrives
      // through the notified token set under this mutex.
      me.cv.wait_for(lock, std::chrono::milliseconds(2), [&] {
        return me.notified.load(std::memory_order_relaxed) ||
               stopping_.load(std::memory_order_acquire);
      });
      me.notified.store(false, std::memory_order_relaxed);
    }
    me.parked.store(false, std::memory_order_relaxed);
    num_parked_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void ThreadPool::run_all(std::span<Task> tasks, ExceptionPolicy policy) {
  if (tasks.empty()) return;
  struct State {
    std::atomic<std::size_t> remaining;
    std::mutex m;
    std::condition_variable cv;
    bool done = false;               // guarded by m
    std::exception_ptr first_error;  // guarded by m
  };
  // run_all is a barrier: this frame outlives every wrapper, so the join
  // state lives on the stack and wrappers borrow it (and the tasks) by raw
  // pointer — 16 bytes captured, always inline in the Task buffer. The
  // whole batch goes in with one pending epoch and one wake-up, and
  // completions count down on an atomic: only the LAST wrapper takes the
  // mutex (to flip `done` and notify), so a batch of N costs one lock
  // round-trip instead of N. The waiter reads `done` — never the atomic —
  // under the mutex, so it cannot pop this frame until the last wrapper
  // has released m, after which no wrapper touches st again.
  State st;
  st.remaining.store(tasks.size(), std::memory_order_relaxed);
  TaskNode* head = nullptr;
  TaskNode* tail = nullptr;
  for (Task& t : tasks) {
    TaskNode* node = alloc_node(Task{[st_ptr = &st, task = &t] {
      std::exception_ptr error;
      try {
        (*task)();
      } catch (...) {
        error = std::current_exception();
      }
      if (error) {
        std::lock_guard lock(st_ptr->m);
        if (!st_ptr->first_error) st_ptr->first_error = error;
      }
      // acq_rel: completions happen-before the last wrapper's notify, and
      // thus before the waiter returns.
      if (st_ptr->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(st_ptr->m);
        st_ptr->done = true;
        st_ptr->cv.notify_all();
      }
    }});
    if (head == nullptr) {
      head = tail = node;
    } else {
      tail->next = node;
      tail = node;
    }
  }
  enqueue_chain(head, tail, tasks.size());
  // Helper fast path: drain work without touching the join mutex — the
  // countdown is the only thing the loop reads. Only when the queues run
  // dry with wrappers still in flight (another worker claimed them) does
  // the waiter fall through to the lock + cv slow path.
  if (on_worker_thread()) {
    while (st.remaining.load(std::memory_order_acquire) != 0) {
      if (!try_run_one()) break;
    }
  }
  std::unique_lock lock(st.m);
  help_until(lock, st.cv, [&] { return st.done; });
  if (policy == ExceptionPolicy::forward && st.first_error) {
    std::rethrow_exception(st.first_error);
  }
}

std::size_t ThreadPool::shared_size_from_env() noexcept {
  const std::size_t fallback =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 8);
  const char* env = std::getenv("REDUNDANCY_THREADS");
  if (env == nullptr) return fallback;
  // Strict parse: decimal digits only (no sign, whitespace, or suffix),
  // value in [1, 1024]. Anything else is loudly rejected — a silently
  // mis-sized pool is exactly the kind of configuration fault this library
  // exists to catch elsewhere.
  std::size_t value = 0;
  bool valid = *env != '\0';
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      valid = false;
      break;
    }
    value = value * 10 + static_cast<std::size_t>(*p - '0');
    if (value > 1024) {
      valid = false;
      break;
    }
  }
  if (!valid || value == 0) {
    std::fprintf(stderr,
                 "[redundancy] REDUNDANCY_THREADS='%s' is not a valid thread "
                 "count (expected an integer in 1..1024); using %zu threads\n",
                 env, fallback);
    return fallback;
  }
  return value;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{shared_size_from_env()};
  return pool;
}

}  // namespace redundancy::util
