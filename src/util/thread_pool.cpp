#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "obs/obs.hpp"
#include "util/topology.hpp"

namespace redundancy::util {

namespace {

// Which pool (if any) owns the current thread, and that worker's deque
// index. Lets submit-from-worker go to the submitter's own deque, keeping
// recursive fan-out cache-local and contention-free.
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

// Sticky per-thread submitter cookie: external submitters are spread over
// the injector lanes round-robin at first submission and then stay on
// their lane, so a steady submitter keeps hitting lines it already owns.
std::size_t submitter_cookie() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

// SplitMix64 step — used for the per-worker steal-order shuffles (seeded
// deterministically by worker index, so orders are stable run to run) and
// for the external sweep's rotating start.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Engine metrics, resolved once and leaked with the registry so workers
// draining during static destruction stay safe. Updated only when
// obs::enabled() — the disabled hot path pays one relaxed load.
struct PoolMetrics {
  obs::Counter& posted = obs::counter("pool.tasks_posted");
  obs::Counter& executed = obs::counter("pool.tasks_executed");
  obs::Counter& stolen = obs::counter("pool.tasks_stolen");
  obs::Counter& helped = obs::counter("pool.tasks_helped");
  obs::Histogram& queue_depth = obs::histogram("pool.queue_depth_at_post");
  obs::Histogram& task_ns = obs::histogram("pool.task_exec_ns");
  obs::Histogram& steal_ns = obs::histogram("pool.steal_ns");

  static PoolMetrics& get() {
    static PoolMetrics* metrics = new PoolMetrics();
    return *metrics;
  }
};

// Recycled TaskNode storage. Nodes migrate between threads — allocated by
// the submitter, freed by the executor — so per-thread caches drift
// one-sided: a pure submitter's cache drains while the workers' caches
// overflow, and a naive bounded cache degenerates to one malloc + one
// free per task. The global transfer list fixes that: overflow is spliced
// to it in chains of kNodeTransfer under one lock, and an empty cache
// refills from it the same way, so the amortized cross-thread cost is two
// lock round-trips per kNodeTransfer tasks. A cache is only ever touched
// by its owning thread; cross-thread handoff of a node's *contents*
// happens through the deque slots' release/acquire or a lane mutex.
constexpr std::size_t kNodeCacheMax = 256;   // per-thread hoard bound
constexpr std::size_t kNodeTransfer = 128;   // chain length per splice

struct GlobalNodeList {
  std::mutex m;
  pool_detail::TaskNode* head = nullptr;  // chains linked through ->next
  std::size_t size = 0;

  // Leaked singleton, same idiom as PoolMetrics: worker threads of
  // static-storage pools free nodes during process teardown.
  static GlobalNodeList& get() {
    static GlobalNodeList* list = new GlobalNodeList();
    return *list;
  }
};

struct NodeCache {
  std::vector<pool_detail::TaskNode*> free;
  ~NodeCache() {
    for (pool_detail::TaskNode* n : free) delete n;
  }
};

NodeCache& node_cache() {
  thread_local NodeCache cache;
  return cache;
}

pool_detail::TaskNode* alloc_node(UniqueFunction<void()>&& task) {
  NodeCache& cache = node_cache();
  if (cache.free.empty()) {
    // Refill in bulk from the global list before falling back to new.
    GlobalNodeList& global = GlobalNodeList::get();
    std::lock_guard lock(global.m);
    while (global.head != nullptr && cache.free.size() < kNodeTransfer) {
      pool_detail::TaskNode* n = global.head;
      global.head = n->next;
      --global.size;
      cache.free.push_back(n);
    }
  }
  pool_detail::TaskNode* n;
  if (!cache.free.empty()) {
    n = cache.free.back();
    cache.free.pop_back();
  } else {
    n = new pool_detail::TaskNode();
  }
  n->task = std::move(task);
  n->next = nullptr;
  n->helpable = true;  // recycled nodes must not inherit the previous flag
  return n;
}

void free_node(pool_detail::TaskNode* n) {
  n->task = UniqueFunction<void()>{};  // release the payload eagerly
  n->next = nullptr;
  NodeCache& cache = node_cache();
  cache.free.push_back(n);
  if (cache.free.size() > kNodeCacheMax) {
    // Splice half the hoard to the global list as one chain, built before
    // the lock so the critical section is two pointer writes.
    pool_detail::TaskNode* head = nullptr;
    pool_detail::TaskNode* tail = nullptr;
    for (std::size_t i = 0; i < kNodeTransfer; ++i) {
      pool_detail::TaskNode* t = cache.free.back();
      cache.free.pop_back();
      t->next = head;
      head = t;
      if (tail == nullptr) tail = t;
    }
    GlobalNodeList& global = GlobalNodeList::get();
    std::lock_guard lock(global.m);
    tail->next = global.head;
    global.head = head;
    global.size += kNodeTransfer;
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, std::size_t injector_lanes) {
  if (threads == 0) {
    threads = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  }
  nworkers_ = threads;
  workers_state_.reset(new Worker[threads]);

  // Lane count: a power of two near the worker count (at least 2 so two
  // concurrent submitters can always avoid each other), capped at 64 —
  // idle workers scan every lane's emptiness probe, so lanes must stay
  // bounded. An explicit injector_lanes (e.g. 1 in the benchmark's
  // single-injector baseline) wins.
  std::size_t lanes = injector_lanes != 0
                          ? injector_lanes
                          : std::max<std::size_t>(2, threads);
  lanes = std::min<std::size_t>(round_up_pow2(lanes), 64);
  lanes_.reset(new InjectorLane[lanes]);
  lane_mask_ = lanes - 1;

  build_steal_orders();

  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_seq_cst);
  unpark_all();
  for (auto& w : workers_) w.join();
  // Workers only exit once pending_ == 0, so every lane is empty here.
}

void ThreadPool::build_steal_orders() {
  // Near-first victim order per worker. Worker indices are grouped into
  // clusters of `cluster` (the probed LLC-sharing width — an index-based
  // locality proxy, since workers are not pinned): a worker sweeps its own
  // cluster first, then the rest. Each distance class is shuffled with a
  // per-worker deterministic rng so two starved workers start their sweeps
  // at different victims (randomized tie-breaking, no thundering herd).
  const std::size_t n = nworkers_;
  steal_orders_.assign(n > 1 ? n * (n - 1) : 0, 0);
  if (n <= 1) return;
  const std::size_t cluster =
      std::clamp<std::size_t>(topology().cluster_size, 1, n);
  for (std::size_t self = 0; self < n; ++self) {
    std::uint32_t* order = steal_orders_.data() + self * (n - 1);
    std::size_t near_count = 0;
    std::size_t far_at = 0;
    const std::size_t my_cluster = self / cluster;
    // Partition: same-cluster victims first, preserving index order.
    for (std::size_t v = 0; v < n; ++v) {
      if (v == self) continue;
      if (v / cluster == my_cluster) {
        order[near_count++] = static_cast<std::uint32_t>(v);
      }
    }
    far_at = near_count;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == self || v / cluster == my_cluster) continue;
      order[far_at++] = static_cast<std::uint32_t>(v);
    }
    // Fisher–Yates each class with a worker-seeded rng.
    std::uint64_t rng = 0x9E3779B97F4A7C15ull ^ (self * 0x100000001B3ull);
    auto shuffle = [&rng, order](std::size_t begin, std::size_t end) {
      for (std::size_t i = end; i > begin + 1; --i) {
        const std::size_t j = begin + splitmix64(rng) % (i - begin);
        std::swap(order[i - 1], order[j]);
      }
    };
    shuffle(0, near_count);
    shuffle(near_count, n - 1);
  }
}

std::vector<std::size_t> ThreadPool::steal_order(std::size_t self) const {
  std::vector<std::size_t> out;
  if (nworkers_ <= 1 || self >= nworkers_) return out;
  out.reserve(nworkers_ - 1);
  const std::uint32_t* order = steal_orders_.data() + self * (nworkers_ - 1);
  for (std::size_t i = 0; i + 1 < nworkers_; ++i) out.push_back(order[i]);
  return out;
}

std::size_t ThreadPool::home_lane() const noexcept {
  return submitter_cookie() & lane_mask_;
}

bool ThreadPool::on_worker_thread() const noexcept { return tls_pool == this; }

void ThreadPool::post(Task task) {
  TaskNode* node = alloc_node(std::move(task));
  enqueue_chain(node, node, 1);
}

void ThreadPool::submit_batch(std::span<Task> tasks, bool helpable) {
  if (tasks.empty()) return;
  TaskNode* head = nullptr;
  TaskNode* tail = nullptr;
  for (Task& t : tasks) {
    TaskNode* node = alloc_node(std::move(t));
    node->helpable = helpable;
    if (head == nullptr) {
      head = tail = node;
    } else {
      tail->next = node;
      tail = node;
    }
  }
  enqueue_chain(head, tail, tasks.size());
}

void ThreadPool::enqueue_chain(TaskNode* head, TaskNode* tail,
                               std::size_t n) {
  // The counter rises before any node becomes claimable, so pending_ never
  // underflows; seq_cst makes the increment globally ordered against a
  // parking worker's recheck (Dekker handshake — see worker_loop).
  const std::size_t depth =
      pending_.fetch_add(n, std::memory_order_seq_cst) + n;
  if (tls_pool == this) {
    // Worker fan-out: straight into our own deque, where thieves (woken by
    // the chain below) redistribute it. No lock at all on this path.
    Worker& me = workers_state_[tls_index];
    for (TaskNode* p = head; p != nullptr;) {
      TaskNode* next = p->next;
      p->next = nullptr;
      me.deque.push(p);
      p = next;
    }
  } else {
    // External submission: the whole chain lands in the submitter's home
    // lane under that lane's lock — submitters hashed to different lanes
    // never contend, and a batch stays one contiguous FIFO run within its
    // lane. The batch still pays exactly one pending epoch (above) and one
    // wake-up (below) regardless of size.
    InjectorLane& lane = lanes_[submitter_cookie() & lane_mask_];
    std::lock_guard lock(lane.m);
    if (lane.tail != nullptr) {
      lane.tail->next = head;
    } else {
      lane.head = head;
    }
    lane.tail = tail;
    lane.size.fetch_add(n, std::memory_order_release);
  }
  if (obs::enabled()) {
    PoolMetrics& m = PoolMetrics::get();
    m.posted.add(n);
    m.queue_depth.record(depth);
  }
  unpark_one();
}

void ThreadPool::unpark_one() {
  // seq_cst pairs with the parking worker's advertisement + pending
  // recheck: either the worker sees our pending_ add and aborts the park,
  // or its num_parked_ increment is ordered before this load and we find
  // its parked flag in the scan below.
  if (num_parked_.load(std::memory_order_seq_cst) == 0) return;
  for (std::size_t i = 0; i < nworkers_; ++i) {
    Worker& w = workers_state_[i];
    if (w.parked.load(std::memory_order_seq_cst)) {
      {
        // The lock orders the token against the condvar wait predicate; a
        // worker between "parked = true" and the wait still sees it.
        std::lock_guard lock(w.m);
        w.notified.store(true, std::memory_order_relaxed);
      }
      w.cv.notify_one();
      return;
    }
  }
}

void ThreadPool::unpark_all() {
  for (std::size_t i = 0; i < nworkers_; ++i) {
    Worker& w = workers_state_[i];
    {
      std::lock_guard lock(w.m);
      w.notified.store(true, std::memory_order_relaxed);
    }
    w.cv.notify_all();
  }
}

ThreadPool::TaskNode* ThreadPool::drain_lane(InjectorLane& lane,
                                             std::size_t self) {
  // Amortized lane drain: claim one node to run and (for a worker) move a
  // fair share of the lane's backlog into the worker's own deque, where it
  // becomes stealable. Moved nodes stay "pending" — still queued, just
  // elsewhere. The share is computed against this lane only: with L lanes
  // the backlog is already spread L ways, so per-lane shares keep the
  // per-drain critical section short.
  TaskNode* node = nullptr;
  TaskNode* extras = nullptr;
  {
    std::lock_guard lock(lane.m);
    node = lane.head;
    if (node == nullptr) return nullptr;
    lane.head = node->next;
    if (lane.head == nullptr) lane.tail = nullptr;
    node->next = nullptr;
    std::size_t taken = 1;
    if (self != kNoWorker && lane.head != nullptr) {
      std::size_t share = (lane.size.load(std::memory_order_relaxed) - 1) /
                          (nworkers_ + 1);
      share = std::min<std::size_t>(share, 32);
      if (share > 0) {
        extras = lane.head;
        TaskNode* last = extras;
        std::size_t moved = 1;
        while (moved < share && last->next != nullptr) {
          last = last->next;
          ++moved;
        }
        lane.head = last->next;
        if (lane.head == nullptr) lane.tail = nullptr;
        last->next = nullptr;
        taken += moved;
      }
    }
    lane.size.fetch_sub(taken, std::memory_order_release);
  }
  // active_ rises before pending_ falls, so wait_idle never observes
  // "nothing queued, nothing running" for an in-flight task.
  active_.fetch_add(1, std::memory_order_release);
  pending_.fetch_sub(1, std::memory_order_release);
  if (extras != nullptr) {
    Worker& me = workers_state_[self];
    for (TaskNode* p = extras; p != nullptr;) {
      TaskNode* next = p->next;
      p->next = nullptr;
      me.deque.push(p);
      p = next;
    }
  }
  return node;
}

ThreadPool::TaskNode* ThreadPool::try_steal(std::size_t victim) {
  TaskNode* node = nullptr;
  if (workers_state_[victim].deque.steal(node)) {
    active_.fetch_add(1, std::memory_order_release);
    pending_.fetch_sub(1, std::memory_order_release);
    return node;
  }
  return nullptr;
}

ThreadPool::TaskNode* ThreadPool::steal_sweep_worker(std::size_t self) {
  if (nworkers_ <= 1) return nullptr;
  const bool timed = obs::enabled();
  const std::uint64_t t0 = timed ? obs::now_ns() : 0;
  const std::uint32_t* order = steal_orders_.data() + self * (nworkers_ - 1);
  for (std::size_t i = 0; i + 1 < nworkers_; ++i) {
    if (TaskNode* node = try_steal(order[i])) {
      if (timed) {
        PoolMetrics& m = PoolMetrics::get();
        m.stolen.add();
        m.steal_ns.record(obs::now_ns() - t0);
      }
      return node;
    }
  }
  return nullptr;
}

ThreadPool::TaskNode* ThreadPool::steal_sweep_external() {
  const std::size_t n = nworkers_;
  const bool timed = obs::enabled();
  const std::uint64_t t0 = timed ? obs::now_ns() : 0;
  // External helpers have no topology home; a per-thread rotating start
  // keeps concurrent helpers off each other's victims.
  thread_local std::uint64_t rot = submitter_cookie();
  const std::size_t start = static_cast<std::size_t>(rot++) % n;
  for (std::size_t off = 0; off < n; ++off) {
    if (TaskNode* node = try_steal((start + off) % n)) {
      if (timed) {
        PoolMetrics& m = PoolMetrics::get();
        m.stolen.add();
        m.steal_ns.record(obs::now_ns() - t0);
      }
      return node;
    }
  }
  return nullptr;
}

ThreadPool::TaskNode* ThreadPool::acquire_task(std::size_t self) {
  Worker& me = workers_state_[self];
  TaskNode* node = nullptr;
  if (me.deque.pop(node)) {
    active_.fetch_add(1, std::memory_order_release);
    pending_.fetch_sub(1, std::memory_order_release);
    return node;
  }
  // Injector lanes, affine lane first: worker i and the submitters hashed
  // to lane (i & mask) meet on the same lane in steady state, so the
  // drained nodes' lines were last written nearby. The probe loads touch
  // one isolated line per lane and take no lock on empty lanes.
  const std::size_t nlanes = lane_mask_ + 1;
  for (std::size_t off = 0; off < nlanes; ++off) {
    InjectorLane& lane = lanes_[(self + off) & lane_mask_];
    if (lane.size.load(std::memory_order_acquire) > 0) {
      if (TaskNode* got = drain_lane(lane, self)) return got;
    }
  }
  return steal_sweep_worker(self);
}

ThreadPool::TaskNode* ThreadPool::acquire_task_external() {
  const std::size_t nlanes = lane_mask_ + 1;
  const std::size_t start = submitter_cookie();
  for (std::size_t off = 0; off < nlanes; ++off) {
    InjectorLane& lane = lanes_[(start + off) & lane_mask_];
    if (lane.size.load(std::memory_order_acquire) > 0) {
      if (TaskNode* got = drain_lane(lane, kNoWorker)) return got;
    }
  }
  return steal_sweep_external();
}

void ThreadPool::execute(TaskNode* node) {
  if (obs::enabled()) {
    PoolMetrics& m = PoolMetrics::get();
    const std::uint64_t t0 = obs::now_ns();
    node->task();
    m.task_ns.record(obs::now_ns() - t0);
    m.executed.add();
  } else {
    node->task();
  }
  active_.fetch_sub(1, std::memory_order_release);
  free_node(node);
}

bool ThreadPool::try_run_one() {
  TaskNode* node = on_worker_thread() ? acquire_task(tls_index)
                                      : acquire_task_external();
  if (node == nullptr) return false;
  if (!node->helpable) {
    // This frame may sit above a lock-holding wait (a pattern's help loop):
    // running a route job here could re-take that lock and self-deadlock.
    // Hand the node back and wake a dedicated worker for it. In practice
    // help still makes progress: a waiting worker's own hedge/ballot legs
    // land in its own deque and are claimed before the injector is
    // consulted, so only externally-injected jobs are declined.
    active_.fetch_sub(1, std::memory_order_release);
    node->next = nullptr;
    enqueue_chain(node, node, 1);
    return false;
  }
  if (obs::enabled()) PoolMetrics::get().helped.add();
  execute(node);
  return true;
}

void ThreadPool::wait_idle() {
  for (;;) {
    while (try_run_one()) {
    }
    if (pending_.load(std::memory_order_acquire) == 0 &&
        active_.load(std::memory_order_acquire) == 0) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_index = self;
  Worker& me = workers_state_[self];
  for (;;) {
    TaskNode* node = acquire_task(self);
    if (node != nullptr) {
      // Wake chaining: if more work remains and someone is asleep, pass
      // the baton before executing — a batch of N wakes workers one by
      // one without a thundering herd.
      if (pending_.load(std::memory_order_acquire) > 0 &&
          num_parked_.load(std::memory_order_acquire) > 0) {
        unpark_one();
      }
      execute(node);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // Park. Dekker-style handshake with enqueue_chain: advertise the park
    // (parked flag + num_parked_), then recheck pending_ — all seq_cst. A
    // submitter either sees our advertisement in its wake scan or we see
    // its pending_ increment here and abort the park.
    me.parked.store(true, std::memory_order_seq_cst);
    num_parked_.fetch_add(1, std::memory_order_seq_cst);
    if (pending_.load(std::memory_order_seq_cst) > 0 ||
        stopping_.load(std::memory_order_seq_cst)) {
      me.parked.store(false, std::memory_order_relaxed);
      num_parked_.fetch_sub(1, std::memory_order_seq_cst);
      std::this_thread::yield();  // tasks are in flight; rescan shortly
      continue;
    }
    {
      std::unique_lock lock(me.m);
      // The timed wait is a safety net only: every wake normally arrives
      // through the notified token set under this mutex.
      me.cv.wait_for(lock, std::chrono::milliseconds(2), [&] {
        return me.notified.load(std::memory_order_relaxed) ||
               stopping_.load(std::memory_order_acquire);
      });
      me.notified.store(false, std::memory_order_relaxed);
    }
    me.parked.store(false, std::memory_order_relaxed);
    num_parked_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void ThreadPool::run_all(std::span<Task> tasks, ExceptionPolicy policy) {
  if (tasks.empty()) return;
  struct State {
    std::atomic<std::size_t> remaining;
    std::mutex m;
    std::condition_variable cv;
    bool done = false;               // guarded by m
    std::exception_ptr first_error;  // guarded by m
  };
  // run_all is a barrier: this frame outlives every wrapper, so the join
  // state lives on the stack and wrappers borrow it (and the tasks) by raw
  // pointer — 16 bytes captured, always inline in the Task buffer. The
  // whole batch goes in with one pending epoch and one wake-up, and
  // completions count down on an atomic: only the LAST wrapper takes the
  // mutex (to flip `done` and notify), so a batch of N costs one lock
  // round-trip instead of N. The waiter reads `done` — never the atomic —
  // under the mutex, so it cannot pop this frame until the last wrapper
  // has released m, after which no wrapper touches st again.
  State st;
  st.remaining.store(tasks.size(), std::memory_order_relaxed);
  TaskNode* head = nullptr;
  TaskNode* tail = nullptr;
  for (Task& t : tasks) {
    TaskNode* node = alloc_node(Task{[st_ptr = &st, task = &t] {
      std::exception_ptr error;
      try {
        (*task)();
      } catch (...) {
        error = std::current_exception();
      }
      if (error) {
        std::lock_guard lock(st_ptr->m);
        if (!st_ptr->first_error) st_ptr->first_error = error;
      }
      // acq_rel: completions happen-before the last wrapper's notify, and
      // thus before the waiter returns.
      if (st_ptr->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(st_ptr->m);
        st_ptr->done = true;
        st_ptr->cv.notify_all();
      }
    }});
    if (head == nullptr) {
      head = tail = node;
    } else {
      tail->next = node;
      tail = node;
    }
  }
  enqueue_chain(head, tail, tasks.size());
  // Helper fast path: drain work without touching the join mutex — the
  // countdown is the only thing the loop reads. Only when the queues run
  // dry with wrappers still in flight (another worker claimed them) does
  // the waiter fall through to the lock + cv slow path.
  if (on_worker_thread()) {
    while (st.remaining.load(std::memory_order_acquire) != 0) {
      if (!try_run_one()) break;
    }
  }
  std::unique_lock lock(st.m);
  help_until(lock, st.cv, [&] { return st.done; });
  if (policy == ExceptionPolicy::forward && st.first_error) {
    std::rethrow_exception(st.first_error);
  }
}

std::size_t ThreadPool::shared_size_from_env() noexcept {
  const std::size_t fallback =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 8);
  const char* env = std::getenv("REDUNDANCY_THREADS");
  if (env == nullptr) return fallback;
  // Strict parse: decimal digits only (no sign, whitespace, or suffix),
  // value in [1, 1024]. Anything else is loudly rejected — a silently
  // mis-sized pool is exactly the kind of configuration fault this library
  // exists to catch elsewhere.
  std::size_t value = 0;
  bool valid = *env != '\0';
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      valid = false;
      break;
    }
    value = value * 10 + static_cast<std::size_t>(*p - '0');
    if (value > 1024) {
      valid = false;
      break;
    }
  }
  if (!valid || value == 0) {
    std::fprintf(stderr,
                 "[redundancy] REDUNDANCY_THREADS='%s' is not a valid thread "
                 "count (expected an integer in 1..1024); using %zu threads\n",
                 env, fallback);
    return fallback;
  }
  return value;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{shared_size_from_env()};
  return pool;
}

}  // namespace redundancy::util
