#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "obs/obs.hpp"

namespace redundancy::util {

namespace {

// Which pool (if any) owns the current thread, and that worker's queue
// index. Lets submit-from-worker go to the submitter's own deque, keeping
// recursive fan-out cache-local and contention-free.
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

// Engine metrics, resolved once and leaked with the registry so workers
// draining during static destruction stay safe. Updated only when
// obs::enabled() — the disabled hot path pays one relaxed load.
struct PoolMetrics {
  obs::Counter& posted = obs::counter("pool.tasks_posted");
  obs::Counter& executed = obs::counter("pool.tasks_executed");
  obs::Counter& stolen = obs::counter("pool.tasks_stolen");
  obs::Counter& helped = obs::counter("pool.tasks_helped");
  obs::Histogram& queue_depth = obs::histogram("pool.queue_depth_at_post");
  obs::Histogram& task_ns = obs::histogram("pool.task_exec_ns");

  static PoolMetrics& get() {
    static PoolMetrics* metrics = new PoolMetrics();
    return *metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(2, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(Task task) {
  std::size_t qi;
  if (tls_pool == this) {
    qi = tls_index;
  } else {
    qi = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard lock(queues_[qi]->m);
    queues_[qi]->q.push_back(std::move(task));
  }
  const std::size_t depth = pending_.fetch_add(1, std::memory_order_release) + 1;
  if (obs::enabled()) {
    PoolMetrics& m = PoolMetrics::get();
    m.posted.add();
    m.queue_depth.record(depth);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::on_worker_thread() const noexcept { return tls_pool == this; }

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // active_ rises before pending_ falls, so wait_idle never observes
  // "nothing queued, nothing running" for a task that is between queues.
  {  // Own deque first, newest task first: depth-first, cache-hot.
    WorkerQueue& mine = *queues_[self];
    std::lock_guard lock(mine.m);
    if (!mine.q.empty()) {
      out = std::move(mine.q.back());
      mine.q.pop_back();
      active_.fetch_add(1, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  // Steal the oldest task from a victim, scanning from our right neighbour.
  const std::size_t n = queues_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % n];
    std::lock_guard lock(victim.m);
    if (!victim.q.empty()) {
      out = std::move(victim.q.front());
      victim.q.pop_front();
      active_.fetch_add(1, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_release);
      if (obs::enabled()) PoolMetrics::get().stolen.add();
      return true;
    }
  }
  return false;
}

bool ThreadPool::try_run_one() {
  Task task;
  const std::size_t start = tls_pool == this ? tls_index : 0;
  const std::size_t n = queues_.size();
  bool got = false;
  for (std::size_t offset = 0; offset < n && !got; ++offset) {
    WorkerQueue& victim = *queues_[(start + offset) % n];
    std::lock_guard lock(victim.m);
    if (!victim.q.empty()) {
      task = std::move(victim.q.front());
      victim.q.pop_front();
      active_.fetch_add(1, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_release);
      got = true;
    }
  }
  if (!got) return false;
  if (obs::enabled()) {
    PoolMetrics& m = PoolMetrics::get();
    m.helped.add();
    const std::uint64_t t0 = obs::now_ns();
    task();
    m.task_ns.record(obs::now_ns() - t0);
    m.executed.add();
  } else {
    task();
  }
  active_.fetch_sub(1, std::memory_order_release);
  return true;
}

void ThreadPool::wait_idle() {
  for (;;) {
    while (try_run_one()) {
    }
    if (pending_.load(std::memory_order_acquire) == 0 &&
        active_.load(std::memory_order_acquire) == 0) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_index = self;
  for (;;) {
    Task task;
    if (try_pop(self, task)) {
      if (obs::enabled()) {
        PoolMetrics& m = PoolMetrics::get();
        const std::uint64_t t0 = obs::now_ns();
        task();
        m.task_ns.record(obs::now_ns() - t0);
        m.executed.add();
      } else {
        task();
      }
      active_.fetch_sub(1, std::memory_order_release);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // post() notifies without holding sleep_mutex_ (keeps the submit hot
    // path off the global lock), so a notify can race past the predicate
    // check; the timed wait bounds that lost-wakeup window to 1ms.
    std::unique_lock lock(sleep_mutex_);
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::run_all(std::vector<Task> tasks, ExceptionPolicy policy) {
  if (tasks.empty()) return;
  struct State {
    std::mutex m;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr first_error;
  };
  // run_all is a barrier: this frame outlives every wrapper, so the join
  // state lives on the stack and wrappers borrow it (and the tasks) by raw
  // pointer — 16 bytes captured, always inline in the Task buffer.
  State st;
  st.remaining = tasks.size();
  for (auto& t : tasks) {
    post(Task{[st = &st, task = &t] {
      std::exception_ptr error;
      try {
        (*task)();
      } catch (...) {
        error = std::current_exception();
      }
      // notify_all under the lock: the waiter cannot observe remaining==0
      // (and destroy the stack state) until this wrapper has released the
      // mutex, after which it never touches st again.
      std::lock_guard lock(st->m);
      if (error && !st->first_error) st->first_error = error;
      --st->remaining;
      st->cv.notify_all();
    }});
  }
  std::unique_lock lock(st.m);
  help_until(lock, st.cv, [&] { return st.remaining == 0; });
  if (policy == ExceptionPolicy::forward && st.first_error) {
    std::rethrow_exception(st.first_error);
  }
}

std::size_t ThreadPool::shared_size_from_env() noexcept {
  if (const char* env = std::getenv("REDUNDANCY_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<std::size_t>(v);
    }
  }
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 8);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool{shared_size_from_env()};
  return pool;
}

}  // namespace redundancy::util
