// Engine 3: the log-structured store. Mutations append to an operation
// log; reads materialize the current state by replaying the log. The
// moving parts (validation timing, data layout, scan order) are entirely
// different from the other engines, which is exactly the kind of design
// diversity N-version deployments bank on.
#include <algorithm>
#include <map>

#include "sql/detail.hpp"
#include "sql/store.hpp"

namespace redundancy::sql {
namespace {

struct LogEntry {
  enum class Kind { create, insert, update, remove } kind;
  std::string table;
  std::vector<std::string> columns;  // create
  Row row;                           // insert
  Condition where;                   // update / remove
  std::string target_column;         // update
  std::int64_t value = 0;            // update
};

/// Materialized image of one table during replay.
struct Image {
  std::vector<std::string> columns;
  // pk -> row, kept in a sorted vector (yet another layout).
  std::vector<std::pair<std::int64_t, Row>> rows;

  [[nodiscard]] std::optional<std::size_t> column_index(
      const std::string& name) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return i;
    }
    return std::nullopt;
  }
  [[nodiscard]] bool has_key(std::int64_t key) const {
    auto at = std::lower_bound(
        rows.begin(), rows.end(), key,
        [](const auto& entry, std::int64_t k) { return entry.first < k; });
    return at != rows.end() && at->first == key;
  }
  void put(Row row) {
    const std::int64_t key = row[0];
    auto at = std::lower_bound(
        rows.begin(), rows.end(), key,
        [](const auto& entry, std::int64_t k) { return entry.first < k; });
    rows.insert(at, {key, std::move(row)});
  }
};

class LogStore final : public SqlStore {
 public:
  core::Status create_table(const std::string& table,
                            std::vector<std::string> columns) override {
    const auto db = materialize();
    if (db.contains(table)) {
      return core::failure(core::FailureKind::wrong_output,
                           "table exists: " + table);
    }
    log_.push_back({LogEntry::Kind::create, table, std::move(columns), {},
                    {}, {}, 0});
    return core::ok_status();
  }

  core::Status insert(const std::string& table, Row row) override {
    auto db = materialize();
    auto it = db.find(table);
    if (it == db.end()) return detail::unknown_table(table);
    if (row.size() != it->second.columns.size()) {
      return detail::arity_mismatch();
    }
    if (it->second.has_key(row[0])) return detail::duplicate_key(row[0]);
    log_.push_back({LogEntry::Kind::insert, table, {}, std::move(row), {},
                    {}, 0});
    return core::ok_status();
  }

  core::Result<std::vector<Row>> select(
      const std::string& table,
      const std::optional<Condition>& where) const override {
    const auto db = materialize();
    auto it = db.find(table);
    if (it == db.end()) return detail::unknown_table(table);
    std::size_t col = 0;
    if (where.has_value()) {
      auto idx = it->second.column_index(where->column);
      if (!idx) return detail::unknown_column(where->column);
      col = *idx;
    }
    std::vector<Row> out;
    for (const auto& [key, row] : it->second.rows) {
      if (!where.has_value() || where->matches(row[col])) out.push_back(row);
    }
    return out;  // rows are kept pk-sorted
  }

  core::Result<std::int64_t> update(const std::string& table,
                                    const Condition& where,
                                    const std::string& column,
                                    std::int64_t value) override {
    auto db = materialize();
    auto it = db.find(table);
    if (it == db.end()) return detail::unknown_table(table);
    const Image& img = it->second;
    const auto where_col = img.column_index(where.column);
    const auto target_col = img.column_index(column);
    if (!where_col) return detail::unknown_column(where.column);
    if (!target_col) return detail::unknown_column(column);
    std::int64_t affected = 0;
    std::size_t rekeyed = 0;
    for (const auto& [key, row] : img.rows) {
      if (!where.matches(row[*where_col])) continue;
      ++affected;
      if (*target_col == 0 && row[0] != value) ++rekeyed;
    }
    if (*target_col == 0) {
      if (rekeyed > 1) return detail::duplicate_key(value);
      if (rekeyed == 1) {
        for (const auto& [key, row] : img.rows) {
          const bool is_rekeyed_row =
              where.matches(row[*where_col]) && row[0] != value;
          if (!is_rekeyed_row && row[0] == value) {
            return detail::duplicate_key(value);
          }
        }
      }
    }
    log_.push_back({LogEntry::Kind::update, table, {}, {}, where, column,
                    value});
    return affected;
  }

  core::Result<std::int64_t> remove(const std::string& table,
                                    const Condition& where) override {
    auto db = materialize();
    auto it = db.find(table);
    if (it == db.end()) return detail::unknown_table(table);
    const auto col = it->second.column_index(where.column);
    if (!col) return detail::unknown_column(where.column);
    std::int64_t affected = 0;
    for (const auto& [key, row] : it->second.rows) {
      if (where.matches(row[*col])) ++affected;
    }
    log_.push_back({LogEntry::Kind::remove, table, {}, {}, where, {}, 0});
    return affected;
  }

  core::Result<std::uint64_t> state_digest() const override {
    const auto db = materialize();
    std::uint64_t digest = 0;
    for (const auto& [name, img] : db) {
      digest = detail::combine(digest, detail::schema_hash(name, img.columns));
      for (const auto& [key, row] : img.rows) {
        digest = detail::combine(digest, detail::row_hash(name, row));
      }
    }
    return digest;
  }

  [[nodiscard]] std::string_view engine() const override { return "log"; }

 private:
  /// Replay the whole log into table images. Validation happened at append
  /// time, so replay applies entries unconditionally.
  [[nodiscard]] std::map<std::string, Image, std::less<>> materialize() const {
    std::map<std::string, Image, std::less<>> db;
    for (const LogEntry& entry : log_) {
      switch (entry.kind) {
        case LogEntry::Kind::create:
          db[entry.table] = Image{entry.columns, {}};
          break;
        case LogEntry::Kind::insert:
          db[entry.table].put(entry.row);
          break;
        case LogEntry::Kind::update: {
          Image& img = db[entry.table];
          const auto where_col = img.column_index(entry.where.column);
          const auto target_col = img.column_index(entry.target_column);
          for (auto& [key, row] : img.rows) {
            if (entry.where.matches(row[*where_col])) {
              row[*target_col] = entry.value;
            }
          }
          if (*target_col == 0) {
            // Re-sort by (possibly changed) primary keys.
            std::vector<std::pair<std::int64_t, Row>> rebuilt;
            rebuilt.reserve(img.rows.size());
            for (auto& [key, row] : img.rows) {
              rebuilt.emplace_back(row[0], std::move(row));
            }
            std::sort(rebuilt.begin(), rebuilt.end(),
                      [](const auto& a, const auto& b) {
                        return a.first < b.first;
                      });
            img.rows = std::move(rebuilt);
          }
          break;
        }
        case LogEntry::Kind::remove: {
          Image& img = db[entry.table];
          const auto col = img.column_index(entry.where.column);
          std::erase_if(img.rows, [&](const auto& kv) {
            return entry.where.matches(kv.second[*col]);
          });
          break;
        }
      }
    }
    return db;
  }

  std::vector<LogEntry> log_;
};

}  // namespace

StorePtr make_log_store() { return std::make_unique<LogStore>(); }

}  // namespace redundancy::sql
