// Engine 1: the straightforward row-vector store. Rows live in insertion
// order; every operation is a linear scan; SELECT sorts on the way out.
#include <algorithm>
#include <map>

#include "sql/detail.hpp"
#include "sql/store.hpp"

namespace redundancy::sql {
namespace {

class VectorStore final : public SqlStore {
 public:
  core::Status create_table(const std::string& table,
                            std::vector<std::string> columns) override {
    if (tables_.contains(table)) {
      return core::failure(core::FailureKind::wrong_output,
                           "table exists: " + table);
    }
    tables_[table] = Table{std::move(columns), {}};
    return core::ok_status();
  }

  core::Status insert(const std::string& table, Row row) override {
    auto it = tables_.find(table);
    if (it == tables_.end()) return detail::unknown_table(table);
    Table& t = it->second;
    if (row.size() != t.columns.size()) return detail::arity_mismatch();
    for (const Row& existing : t.rows) {
      if (existing[0] == row[0]) return detail::duplicate_key(row[0]);
    }
    t.rows.push_back(std::move(row));
    return core::ok_status();
  }

  core::Result<std::vector<Row>> select(
      const std::string& table,
      const std::optional<Condition>& where) const override {
    auto it = tables_.find(table);
    if (it == tables_.end()) return detail::unknown_table(table);
    const Table& t = it->second;
    std::size_t col = 0;
    if (where.has_value()) {
      auto idx = t.column_index(where->column);
      if (!idx) return detail::unknown_column(where->column);
      col = *idx;
    }
    std::vector<Row> out;
    for (const Row& row : t.rows) {
      if (!where.has_value() || where->matches(row[col])) out.push_back(row);
    }
    std::sort(out.begin(), out.end(),
              [](const Row& a, const Row& b) { return a[0] < b[0]; });
    return out;
  }

  core::Result<std::int64_t> update(const std::string& table,
                                    const Condition& where,
                                    const std::string& column,
                                    std::int64_t value) override {
    auto it = tables_.find(table);
    if (it == tables_.end()) return detail::unknown_table(table);
    Table& t = it->second;
    const auto where_col = t.column_index(where.column);
    const auto target_col = t.column_index(column);
    if (!where_col) return detail::unknown_column(where.column);
    if (!target_col) return detail::unknown_column(column);
    // Updating the primary key must preserve uniqueness, and a violating
    // UPDATE fails *atomically* (no rows modified) — pinned semantics so
    // that diverse engines stay state-equivalent after errors.
    std::vector<std::size_t> matches;
    for (std::size_t i = 0; i < t.rows.size(); ++i) {
      if (where.matches(t.rows[i][*where_col])) matches.push_back(i);
    }
    if (*target_col == 0) {
      std::size_t rekeyed = 0;
      for (const std::size_t i : matches) {
        if (t.rows[i][0] != value) ++rekeyed;
      }
      if (rekeyed > 1) return detail::duplicate_key(value);
      if (rekeyed == 1) {
        for (std::size_t i = 0; i < t.rows.size(); ++i) {
          const bool is_the_rekeyed_row =
              std::find(matches.begin(), matches.end(), i) != matches.end() &&
              t.rows[i][0] != value;
          if (!is_the_rekeyed_row && t.rows[i][0] == value) {
            return detail::duplicate_key(value);
          }
        }
      }
    }
    for (const std::size_t i : matches) t.rows[i][*target_col] = value;
    return static_cast<std::int64_t>(matches.size());
  }

  core::Result<std::int64_t> remove(const std::string& table,
                                    const Condition& where) override {
    auto it = tables_.find(table);
    if (it == tables_.end()) return detail::unknown_table(table);
    Table& t = it->second;
    const auto col = t.column_index(where.column);
    if (!col) return detail::unknown_column(where.column);
    const auto before = t.rows.size();
    std::erase_if(t.rows,
                  [&](const Row& row) { return where.matches(row[*col]); });
    return static_cast<std::int64_t>(before - t.rows.size());
  }

  core::Result<std::uint64_t> state_digest() const override {
    std::uint64_t digest = 0;
    for (const auto& [name, t] : tables_) {
      digest = detail::combine(digest, detail::schema_hash(name, t.columns));
      for (const Row& row : t.rows) {
        digest = detail::combine(digest, detail::row_hash(name, row));
      }
    }
    return digest;
  }

  [[nodiscard]] std::string_view engine() const override { return "vector"; }

 private:
  struct Table {
    std::vector<std::string> columns;
    std::vector<Row> rows;

    [[nodiscard]] std::optional<std::size_t> column_index(
        const std::string& name) const {
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == name) return i;
      }
      return std::nullopt;
    }
  };
  std::map<std::string, Table, std::less<>> tables_;
};

}  // namespace

StorePtr make_vector_store() { return std::make_unique<VectorStore>(); }

}  // namespace redundancy::sql
