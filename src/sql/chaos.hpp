// Chaos decorator for SqlStore engines: seeded lost updates and corrupted
// reads, for the replicated-SQL fault-injection experiments.
#pragma once

#include <cstdint>

#include "sql/store.hpp"

namespace redundancy::sql {

struct ChaosSpec {
  double lose_mutation_probability = 0.0;  ///< ack-then-drop inserts/updates
  double corrupt_read_probability = 0.0;   ///< flip a cell in SELECT output
  std::uint64_t seed = 1;
};

[[nodiscard]] StorePtr make_chaotic_store(StorePtr inner, ChaosSpec spec);

}  // namespace redundancy::sql
