// A chaos decorator: wraps any engine with seeded, deterministic faults —
// the "one of the off-the-shelf servers is buggy" ingredient of the
// replicated-SQL experiments. Faults are of the two species that matter to
// a database deployment:
//   * lost updates  — a mutation is acknowledged but silently dropped
//                     (state divergence, found only by reconciliation);
//   * wrong reads   — SELECT results corrupted for a slice of the keyspace
//                     (output divergence, found by the per-statement vote).
#include "sql/chaos.hpp"

#include "util/rng.hpp"

namespace redundancy::sql {
namespace {

class ChaoticStore final : public SqlStore {
 public:
  ChaoticStore(StorePtr inner, ChaosSpec spec)
      : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {}

  core::Status create_table(const std::string& table,
                            std::vector<std::string> columns) override {
    return inner_->create_table(table, std::move(columns));
  }

  core::Status insert(const std::string& table, Row row) override {
    if (rng_.chance(spec_.lose_mutation_probability)) {
      return core::ok_status();  // acknowledged, never applied
    }
    return inner_->insert(table, std::move(row));
  }

  core::Result<std::vector<Row>> select(
      const std::string& table,
      const std::optional<Condition>& where) const override {
    auto out = inner_->select(table, where);
    if (!out.has_value()) return out;
    if (spec_.corrupt_read_probability > 0.0 &&
        rng_.chance(spec_.corrupt_read_probability)) {
      auto rows = std::move(out).take();
      if (!rows.empty()) {
        // Corrupt one cell of one row — a silent wrong answer.
        Row& victim = rows[rng_.index(rows.size())];
        victim[victim.size() - 1] += 1;
      }
      return rows;
    }
    return out;
  }

  core::Result<std::int64_t> update(const std::string& table,
                                    const Condition& where,
                                    const std::string& column,
                                    std::int64_t value) override {
    if (rng_.chance(spec_.lose_mutation_probability)) {
      // Report the would-be affected count but change nothing: the classic
      // acknowledged-but-lost write.
      auto would = inner_->select(table, where);
      if (!would.has_value()) return would.error();
      return static_cast<std::int64_t>(would.value().size());
    }
    return inner_->update(table, where, column, value);
  }

  core::Result<std::int64_t> remove(const std::string& table,
                                    const Condition& where) override {
    if (rng_.chance(spec_.lose_mutation_probability)) {
      auto would = inner_->select(table, where);
      if (!would.has_value()) return would.error();
      return static_cast<std::int64_t>(would.value().size());
    }
    return inner_->remove(table, where);
  }

  core::Result<std::uint64_t> state_digest() const override {
    return inner_->state_digest();
  }

  [[nodiscard]] std::string_view engine() const override {
    return "chaotic";
  }

 private:
  StorePtr inner_;
  ChaosSpec spec_;
  mutable util::Rng rng_;
};

}  // namespace

StorePtr make_chaotic_store(StorePtr inner, ChaosSpec spec) {
  return std::make_unique<ChaoticStore>(std::move(inner), spec);
}

}  // namespace redundancy::sql
