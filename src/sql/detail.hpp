// Shared helpers for the diverse store engines. Only *semantic* helpers
// live here (digest definition, error texts); each engine keeps its own
// data structures and algorithms — that independence is the point.
#pragma once

#include <string>
#include <vector>

#include "core/result.hpp"
#include "sql/store.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace redundancy::sql::detail {

/// Order-insensitive hash of one row within a named table. Every engine
/// must produce digests from exactly this per-row hash so that equal
/// logical states digest equally regardless of physical layout.
[[nodiscard]] inline std::uint64_t row_hash(const std::string& table,
                                            const Row& row) {
  std::uint64_t h = util::fnv1a(table);
  for (std::int64_t cell : row) {
    h = util::hash_mix(h, static_cast<std::uint64_t>(cell));
  }
  // One non-linear round so XOR-combining rows is collision-resistant
  // against simple cell swaps.
  std::uint64_t s = h;
  return util::splitmix64(s);
}

/// Combine per-row hashes (XOR: insertion-order independent).
[[nodiscard]] inline std::uint64_t combine(std::uint64_t acc,
                                           std::uint64_t row) {
  return acc ^ row;
}

/// Hash of a table's schema (tables must exist with equal schemas to
/// digest equally, even when empty).
[[nodiscard]] inline std::uint64_t schema_hash(
    const std::string& table, const std::vector<std::string>& columns) {
  std::uint64_t h = util::fnv1a(table) * 3;
  for (const auto& c : columns) h = util::hash_mix(h, util::fnv1a(c));
  return h;
}

[[nodiscard]] inline core::Failure unknown_table(const std::string& table) {
  return core::failure(core::FailureKind::wrong_output,
                       "unknown table " + table);
}

[[nodiscard]] inline core::Failure unknown_column(const std::string& column) {
  return core::failure(core::FailureKind::wrong_output,
                       "unknown column " + column);
}

[[nodiscard]] inline core::Failure duplicate_key(std::int64_t key) {
  return core::failure(core::FailureKind::wrong_output,
                       "duplicate primary key " + std::to_string(key));
}

[[nodiscard]] inline core::Failure arity_mismatch() {
  return core::failure(core::FailureKind::wrong_output,
                       "row arity does not match schema");
}

}  // namespace redundancy::sql::detail
