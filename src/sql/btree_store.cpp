// Engine 2: the index-organized store. Rows live in a std::map keyed by
// the primary key, so SELECT's pk ordering falls out of the structure and
// key lookups are logarithmic; equality predicates on the primary key use
// the index instead of scanning.
#include <map>

#include "sql/detail.hpp"
#include "sql/store.hpp"

namespace redundancy::sql {
namespace {

class BTreeStore final : public SqlStore {
 public:
  core::Status create_table(const std::string& table,
                            std::vector<std::string> columns) override {
    if (tables_.contains(table)) {
      return core::failure(core::FailureKind::wrong_output,
                           "table exists: " + table);
    }
    tables_[table] = Table{std::move(columns), {}};
    return core::ok_status();
  }

  core::Status insert(const std::string& table, Row row) override {
    auto it = tables_.find(table);
    if (it == tables_.end()) return detail::unknown_table(table);
    Table& t = it->second;
    if (row.size() != t.columns.size()) return detail::arity_mismatch();
    const std::int64_t key = row[0];
    if (!t.rows.emplace(key, std::move(row)).second) {
      return detail::duplicate_key(key);
    }
    return core::ok_status();
  }

  core::Result<std::vector<Row>> select(
      const std::string& table,
      const std::optional<Condition>& where) const override {
    auto it = tables_.find(table);
    if (it == tables_.end()) return detail::unknown_table(table);
    const Table& t = it->second;
    std::vector<Row> out;
    if (!where.has_value()) {
      for (const auto& [key, row] : t.rows) out.push_back(row);
      return out;
    }
    const auto col = t.column_index(where->column);
    if (!col) return detail::unknown_column(where->column);
    if (*col == 0 && where->op == Condition::Op::eq) {
      // Index path: point lookup on the primary key.
      auto hit = t.rows.find(where->value);
      if (hit != t.rows.end()) out.push_back(hit->second);
      return out;
    }
    for (const auto& [key, row] : t.rows) {
      if (where->matches(row[*col])) out.push_back(row);
    }
    return out;  // map order == pk order
  }

  core::Result<std::int64_t> update(const std::string& table,
                                    const Condition& where,
                                    const std::string& column,
                                    std::int64_t value) override {
    auto it = tables_.find(table);
    if (it == tables_.end()) return detail::unknown_table(table);
    Table& t = it->second;
    const auto where_col = t.column_index(where.column);
    const auto target_col = t.column_index(column);
    if (!where_col) return detail::unknown_column(where.column);
    if (!target_col) return detail::unknown_column(column);
    // Collect matching keys first: pk updates re-key the map.
    std::vector<std::int64_t> keys;
    for (const auto& [key, row] : t.rows) {
      if (where.matches(row[*where_col])) keys.push_back(key);
    }
    if (*target_col == 0) {
      for (const std::int64_t key : keys) {
        if (key != value && t.rows.contains(value)) {
          return detail::duplicate_key(value);
        }
        if (keys.size() > 1 && key != value) {
          // Two rows re-keyed to the same pk would collide with each other.
          return detail::duplicate_key(value);
        }
      }
      for (const std::int64_t key : keys) {
        if (key == value) continue;
        Row row = std::move(t.rows.at(key));
        t.rows.erase(key);
        row[0] = value;
        t.rows.emplace(value, std::move(row));
      }
      return static_cast<std::int64_t>(keys.size());
    }
    for (const std::int64_t key : keys) {
      t.rows.at(key)[*target_col] = value;
    }
    return static_cast<std::int64_t>(keys.size());
  }

  core::Result<std::int64_t> remove(const std::string& table,
                                    const Condition& where) override {
    auto it = tables_.find(table);
    if (it == tables_.end()) return detail::unknown_table(table);
    Table& t = it->second;
    const auto col = t.column_index(where.column);
    if (!col) return detail::unknown_column(where.column);
    std::int64_t affected = 0;
    for (auto row_it = t.rows.begin(); row_it != t.rows.end();) {
      if (where.matches(row_it->second[*col])) {
        row_it = t.rows.erase(row_it);
        ++affected;
      } else {
        ++row_it;
      }
    }
    return affected;
  }

  core::Result<std::uint64_t> state_digest() const override {
    std::uint64_t digest = 0;
    for (const auto& [name, t] : tables_) {
      digest = detail::combine(digest, detail::schema_hash(name, t.columns));
      for (const auto& [key, row] : t.rows) {
        digest = detail::combine(digest, detail::row_hash(name, row));
      }
    }
    return digest;
  }

  [[nodiscard]] std::string_view engine() const override { return "btree"; }

 private:
  struct Table {
    std::vector<std::string> columns;
    std::map<std::int64_t, Row> rows;  // pk -> row

    [[nodiscard]] std::optional<std::size_t> column_index(
        const std::string& name) const {
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i] == name) return i;
      }
      return std::nullopt;
    }
  };
  std::map<std::string, Table, std::less<>> tables_;
};

}  // namespace

StorePtr make_btree_store() { return std::make_unique<BTreeStore>(); }

}  // namespace redundancy::sql
