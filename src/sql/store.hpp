// A miniature relational store interface — the substrate for Gashi et
// al.'s "N-version programming over diverse off-the-shelf SQL servers"
// (Section 4.1 of the paper): the SQL interface is well defined, several
// independent implementations exist, and their outputs *and state* can be
// compared. This module provides the well-defined interface; three
// independent implementations live in the sibling headers, and
// techniques/sql_nvp.hpp runs them under a voter.
//
// Semantics are deliberately pinned down so that correct implementations
// are observationally identical:
//   * the first column of every table is the primary key (unique);
//   * SELECT returns rows ordered by primary key;
//   * UPDATE/DELETE report the number of affected rows;
//   * errors (unknown table/column, duplicate key) are typed failures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/result.hpp"

namespace redundancy::sql {

using Row = std::vector<std::int64_t>;

struct Condition {
  enum class Op { eq, lt, gt };
  std::string column;
  Op op = Op::eq;
  std::int64_t value = 0;

  [[nodiscard]] bool matches(std::int64_t cell) const noexcept {
    switch (op) {
      case Op::eq: return cell == value;
      case Op::lt: return cell < value;
      case Op::gt: return cell > value;
    }
    return false;
  }
};

/// The well-defined interface every diverse implementation offers.
class SqlStore {
 public:
  virtual ~SqlStore() = default;

  virtual core::Status create_table(const std::string& table,
                                    std::vector<std::string> columns) = 0;
  virtual core::Status insert(const std::string& table, Row row) = 0;
  /// Rows matching `where` (all rows when empty), ordered by primary key.
  virtual core::Result<std::vector<Row>> select(
      const std::string& table,
      const std::optional<Condition>& where = std::nullopt) const = 0;
  /// Set `column` to `value` on matching rows; returns affected count.
  virtual core::Result<std::int64_t> update(const std::string& table,
                                            const Condition& where,
                                            const std::string& column,
                                            std::int64_t value) = 0;
  /// Delete matching rows; returns affected count.
  virtual core::Result<std::int64_t> remove(const std::string& table,
                                            const Condition& where) = 0;

  /// Order-insensitive digest of the whole database state — the handle the
  /// replicated deployment uses to reconcile server states (Gashi's hard
  /// problem, made tractable by the pinned semantics above).
  [[nodiscard]] virtual core::Result<std::uint64_t> state_digest() const = 0;

  /// Implementation identity (for diagnostics).
  [[nodiscard]] virtual std::string_view engine() const = 0;
};

using StorePtr = std::unique_ptr<SqlStore>;

// The three independently designed engines.
[[nodiscard]] StorePtr make_vector_store();  ///< row vector, linear scans
[[nodiscard]] StorePtr make_btree_store();   ///< pk-ordered std::map
[[nodiscard]] StorePtr make_log_store();     ///< append-only op log, replayed

}  // namespace redundancy::sql
