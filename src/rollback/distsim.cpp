#include "rollback/distsim.hpp"

#include <algorithm>

#include "util/checksum.hpp"

namespace redundancy::rollback {

std::string_view to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::uncoordinated: return "uncoordinated";
    case Protocol::coordinated: return "coordinated";
    case Protocol::message_logging: return "message-logging";
    case Protocol::optimistic_logging: return "optimistic-logging";
  }
  return "unknown";
}

Simulation::Simulation(Config config) : cfg_(config), rng_(config.seed) {
  procs_.resize(cfg_.processes);
  for (auto& p : procs_) {
    p.digest = 0x1d1f05ULL;
    p.snapshots.push_back(Snapshot{0, 0, p.digest});  // the initial cut
  }
  if (cfg_.protocol == Protocol::coordinated) take_coordinated_line();
}

void Simulation::do_work(std::size_t pi) {
  Process& p = procs_[pi];
  ++p.lc;
  p.digest = util::hash_mix(p.digest, p.lc);
  p.history.push_back({Event::Kind::work, 0, 0, 0, clock_});
  if (rng_.chance(cfg_.send_probability) && procs_.size() > 1) {
    std::size_t dst = rng_.index(procs_.size());
    if (dst == pi) dst = (dst + 1) % procs_.size();
    const std::uint64_t id = next_msg_id_++;
    const auto payload = static_cast<std::int64_t>(p.digest & 0xffff);
    messages_[id] =
        MsgMeta{pi, dst, p.history.size(), false, 0};
    p.history.push_back({Event::Kind::send, id, payload, dst, clock_});
    network_.push_back(
        {id, pi, dst, payload,
         clock_ + 1 + rng_.below(cfg_.max_delivery_delay)});
  }
  // Per-process checkpoint cadence (uncoordinated and logging protocols).
  if (cfg_.protocol != Protocol::coordinated && cfg_.checkpoint_every > 0 &&
      p.lc % cfg_.checkpoint_every == 0) {
    take_snapshot(pi);
  }
}

void Simulation::deliver_due() {
  for (auto it = network_.begin(); it != network_.end();) {
    if (it->deliver_at > clock_) {
      ++it;
      continue;
    }
    Process& q = procs_[it->dst];
    auto& meta = messages_.at(it->msg_id);
    meta.delivered = true;
    meta.recv_pos = q.history.size();
    q.history.push_back(
        {Event::Kind::recv, it->msg_id, it->payload, it->src, clock_});
    q.digest = util::hash_mix(q.digest,
                              static_cast<std::uint64_t>(it->payload) * 3 + 1);
    if (cfg_.protocol == Protocol::message_logging ||
        cfg_.protocol == Protocol::optimistic_logging) {
      // Pessimistic logging flushes before the process acts on the
      // message; optimistic logging records it too but the entry only
      // becomes durable cfg_.log_lag steps later (see crash_and_recover).
      q.msg_log.push_back({it->msg_id, it->payload, it->src});
    }
    it = network_.erase(it);
  }
}

void Simulation::step() {
  ++clock_;
  do_work(rng_.index(procs_.size()));
  deliver_due();
  if (cfg_.protocol == Protocol::coordinated && cfg_.checkpoint_every > 0 &&
      clock_ % cfg_.checkpoint_every == 0) {
    take_coordinated_line();
  }
}

void Simulation::run(std::uint64_t steps) {
  for (std::uint64_t i = 0; i < steps; ++i) step();
}

void Simulation::take_snapshot(std::size_t pi) {
  Process& p = procs_[pi];
  p.snapshots.push_back(Snapshot{p.history.size(), p.lc, p.digest});
  ++checkpoints_taken_;
}

void Simulation::take_coordinated_line() {
  CoordinatedLine line;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    line.cuts.push_back(
        Snapshot{procs_[i].history.size(), procs_[i].lc, procs_[i].digest});
    ++checkpoints_taken_;
  }
  line.channel = network_;  // Chandy-Lamport: channel state is part of the cut
  lines_.push_back(std::move(line));
}

const Simulation::Snapshot& Simulation::snapshot_at_or_before(
    std::size_t pi, std::size_t max_len) const {
  const auto& snaps = procs_[pi].snapshots;
  // Snapshots are in increasing history_len order; the initial cut (len 0)
  // always qualifies.
  const Snapshot* best = &snaps.front();
  for (const Snapshot& s : snaps) {
    if (s.history_len <= max_len) best = &s;
  }
  return *best;
}

Simulation::Snapshot Simulation::state_at(std::size_t pi,
                                          std::size_t len) const {
  Snapshot s = snapshot_at_or_before(pi, len);
  const auto& history = procs_[pi].history;
  std::uint64_t lc = s.lc;
  std::uint64_t digest = s.digest;
  for (std::size_t e = s.history_len; e < len; ++e) {
    const Event& ev = history[e];
    if (ev.kind == Event::Kind::work) {
      ++lc;
      digest = util::hash_mix(digest, lc);
    } else if (ev.kind == Event::Kind::recv) {
      digest = util::hash_mix(
          digest, static_cast<std::uint64_t>(ev.payload) * 3 + 1);
    }
  }
  return Snapshot{len, lc, digest};
}

std::vector<Simulation::Event> Simulation::truncate(std::size_t pi,
                                                    const Snapshot& snap) {
  Process& p = procs_[pi];
  std::vector<Event> discarded(p.history.begin() +
                                   static_cast<std::ptrdiff_t>(snap.history_len),
                               p.history.end());
  p.history.resize(snap.history_len);
  p.lc = snap.lc;
  p.digest = snap.digest;
  // Drop snapshots that now lie in the discarded future.
  std::erase_if(p.snapshots, [&snap](const Snapshot& s) {
    return s.history_len > snap.history_len;
  });
  return discarded;
}

core::Result<Simulation::RecoveryReport> Simulation::crash_and_recover(
    std::size_t victim) {
  if (victim >= procs_.size()) {
    return core::failure(core::FailureKind::crash, "unknown process");
  }
  RecoveryReport report;

  if (cfg_.protocol == Protocol::coordinated) {
    // Roll the whole system to the last coordinated line.
    const CoordinatedLine& line = lines_.back();
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      const std::uint64_t before = procs_[i].lc;
      auto discarded = truncate(i, line.cuts[i]);
      report.work_lost += before - procs_[i].lc;
      ++report.processes_rolled_back;
      for (const Event& e : discarded) {
        if (e.kind == Event::Kind::send) messages_.erase(e.msg_id);
        if (e.kind == Event::Kind::recv) {
          // Receipt undone; the channel-state restore below re-delivers
          // whatever the cut had in flight, so nothing is orphaned.
          auto it = messages_.find(e.msg_id);
          if (it != messages_.end()) it->second.delivered = false;
        }
      }
    }
    network_ = lines_.back().channel;
    report.rolled_to_initial_state = lines_.back().cuts[0].history_len == 0;
    return report;
  }

  if (cfg_.protocol == Protocol::message_logging) {
    // Only the victim rolls back; its checkpoint plus the message log
    // reconstruct the pre-crash state deterministically. We model the
    // replay by *keeping* the history (it is exactly what replay rebuilds)
    // and counting the messages that had to be replayed.
    const Snapshot& snap = procs_[victim].snapshots.back();
    for (std::size_t e = snap.history_len; e < procs_[victim].history.size();
         ++e) {
      if (procs_[victim].history[e].kind == Event::Kind::recv) {
        ++report.messages_replayed;
      }
    }
    report.processes_rolled_back = 1;
    report.work_lost = 0;
    return report;
  }

  // Uncoordinated and optimistic logging: find a consistent cut by
  // iterated orphan elimination. target[i] = the history length process i
  // must not exceed. Under uncoordinated checkpointing a constrained
  // process can only land on a *snapshot*; under optimistic logging it can
  // replay its log to any position up to its first unlogged receive.
  const bool optimistic = cfg_.protocol == Protocol::optimistic_logging;
  auto first_unlogged_recv = [this](std::size_t i) {
    const auto& history = procs_[i].history;
    for (std::size_t e = 0; e < history.size(); ++e) {
      if (history[e].kind == Event::Kind::recv &&
          history[e].at + cfg_.log_lag > clock_) {
        return e;  // flushed asynchronously; not yet durable at the crash
      }
    }
    return history.size();
  };
  auto clamp = [this, optimistic, &first_unlogged_recv](std::size_t i,
                                                        std::size_t len) {
    return optimistic ? std::min(len, first_unlogged_recv(i))
                      : snapshot_at_or_before(i, len).history_len;
  };

  std::vector<std::size_t> target(procs_.size());
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    target[i] = procs_[i].history.size();
  }
  if (!optimistic) {
    target[victim] = procs_[victim].snapshots.back().history_len;
  }

  // Fixed point: shrinking one process to a snapshot un-sends messages,
  // which may force receivers below their current targets, and so on.
  bool changed = true;
  std::vector<std::size_t> planned(procs_.size());
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      // A process with no constraint below its current history keeps its
      // live state; constrained processes (and, always, the victim — a
      // crash destroys volatile state) restore what their protocol can
      // reconstruct: a snapshot, or a log-replay prefix.
      const bool constrained =
          i == victim || target[i] < procs_[i].history.size();
      planned[i] =
          constrained ? clamp(i, target[i]) : procs_[i].history.size();
    }
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      if (planned[i] >= procs_[i].history.size()) continue;
      // Sends above the planned cut are orphans-to-be.
      for (std::size_t e = planned[i]; e < procs_[i].history.size(); ++e) {
        const Event& ev = procs_[i].history[e];
        if (ev.kind != Event::Kind::send) continue;
        const auto& meta = messages_.at(ev.msg_id);
        if (meta.delivered && meta.recv_pos < target[meta.dst]) {
          target[meta.dst] = meta.recv_pos;
          changed = true;
        }
      }
    }
  }

  // Apply the cut.
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const std::size_t cut = planned[i];
    if (cut >= procs_[i].history.size() && i != victim) continue;
    // Log-based recovery replays to the exact position; checkpoint-only
    // recovery restores the snapshot the planner chose (cut is already a
    // snapshot boundary in that mode).
    const Snapshot snap = optimistic ? state_at(i, cut)
                                     : snapshot_at_or_before(i, cut);
    if (optimistic) {
      // Replay volume: durable receives re-consumed from the log between
      // the latest checkpoint at-or-below the cut and the cut itself.
      const std::size_t from = snapshot_at_or_before(i, cut).history_len;
      for (std::size_t e = from; e < cut; ++e) {
        if (procs_[i].history[e].kind == Event::Kind::recv) {
          ++report.messages_replayed;
        }
      }
    }
    const std::uint64_t before = procs_[i].lc;
    auto discarded = truncate(i, snap);
    if (!discarded.empty() || i == victim) ++report.processes_rolled_back;
    report.work_lost += before - procs_[i].lc;
    if (snap.history_len == 0) report.rolled_to_initial_state = true;
    for (const Event& e : discarded) {
      if (e.kind == Event::Kind::send) {
        // Un-send: drop from flight if still travelling.
        std::erase_if(network_, [&e](const InFlight& m) {
          return m.msg_id == e.msg_id;
        });
        messages_.erase(e.msg_id);
      } else if (e.kind == Event::Kind::recv) {
        // The receipt is forgotten; without logging the message is lost.
        ++report.messages_lost;
        auto it = messages_.find(e.msg_id);
        if (it != messages_.end()) it->second.delivered = false;
      }
    }
  }
  // In-flight messages whose send survived are fine; those whose send was
  // erased were removed above.
  return report;
}

bool Simulation::consistent() const {
  for (std::size_t q = 0; q < procs_.size(); ++q) {
    for (const Event& e : procs_[q].history) {
      if (e.kind != Event::Kind::recv) continue;
      auto it = messages_.find(e.msg_id);
      if (it == messages_.end()) return false;  // orphan: sender forgot it
      const MsgMeta& meta = it->second;
      if (meta.send_pos > procs_[meta.src].history.size()) return false;
    }
  }
  return true;
}

std::uint64_t Simulation::total_work() const {
  std::uint64_t total = 0;
  for (const auto& p : procs_) total += p.lc;
  return total;
}

std::uint64_t Simulation::work_of(std::size_t p) const {
  return p < procs_.size() ? procs_[p].lc : 0;
}

std::uint64_t Simulation::digest_of(std::size_t p) const {
  return p < procs_.size() ? procs_[p].digest : 0;
}

}  // namespace redundancy::rollback
