// Rollback-recovery protocols in message-passing systems (Elnozahy,
// Alvisi, Wang, Johnson — the survey the paper's checkpoint-recovery row
// cites).
//
// A deterministic message-passing simulation of N processes doing local
// work and exchanging messages, under three recovery protocols:
//
//   * uncoordinated checkpointing — each process snapshots on its own
//     cadence. Recovery must hunt for a *consistent* cut: restoring the
//     failed process orphans the messages it "un-sends", forcing receivers
//     to roll back too, recursively — the DOMINO EFFECT, potentially all
//     the way to the initial state;
//   * coordinated checkpointing — processes snapshot together with the
//     channel state (a consistent cut by construction); recovery rolls
//     everyone to the last line, losing at most one interval of work;
//   * pessimistic message logging — received messages are logged before
//     being consumed; recovery replays the log, so only the failed process
//     rolls back and (under piecewise determinism) no work is lost;
//   * optimistic message logging — receives are logged asynchronously, so
//     a crash may catch recent receives unlogged: the victim can only be
//     replayed up to its first unlogged receive, and anything it sent
//     after that point orphans its receivers — a *bounded* cascade, the
//     survey's middle ground between pessimism and the domino.
//
// The simulation is seeded and fully deterministic; `consistent()` checks
// the no-orphan invariant after every recovery, and state digests make
// replay fidelity testable.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/result.hpp"
#include "util/rng.hpp"

namespace redundancy::rollback {

enum class Protocol : std::uint8_t {
  uncoordinated,
  coordinated,
  message_logging,          ///< pessimistic: log before consuming
  optimistic_logging,       ///< log asynchronously; recent receives may be lost
};

[[nodiscard]] std::string_view to_string(Protocol p) noexcept;

class Simulation {
 public:
  struct Config {
    std::size_t processes = 4;
    Protocol protocol = Protocol::uncoordinated;
    /// Work units between a process's checkpoints (uncoordinated/logging)
    /// or global steps between coordinated lines.
    std::uint64_t checkpoint_every = 10;
    double send_probability = 0.4;  ///< per work unit
    std::uint64_t max_delivery_delay = 3;
    /// Optimistic logging: a received message becomes durable only after
    /// this many further global steps (the asynchronous-flush window).
    std::uint64_t log_lag = 5;
    std::uint64_t seed = 1;
  };

  explicit Simulation(Config config);

  /// Advance one global step: one process does a unit of work, may send a
  /// message; the network delivers messages that have aged out.
  void step();
  void run(std::uint64_t steps);

  struct RecoveryReport {
    std::size_t processes_rolled_back = 0;
    std::uint64_t work_lost = 0;        ///< work units discarded
    std::uint64_t messages_replayed = 0;///< from logs (logging protocol)
    std::uint64_t messages_lost = 0;    ///< delivered then forgotten
    bool rolled_to_initial_state = false;  ///< the domino worst case
  };

  /// Crash process `victim` and recover according to the protocol.
  core::Result<RecoveryReport> crash_and_recover(std::size_t victim);

  // --- observability ------------------------------------------------------
  /// No-orphan invariant: every message any process remembers receiving is
  /// still remembered as sent by its sender.
  [[nodiscard]] bool consistent() const;
  [[nodiscard]] std::uint64_t total_work() const;
  [[nodiscard]] std::uint64_t work_of(std::size_t p) const;
  [[nodiscard]] std::uint64_t digest_of(std::size_t p) const;
  [[nodiscard]] std::size_t processes() const noexcept { return procs_.size(); }
  [[nodiscard]] std::uint64_t clock() const noexcept { return clock_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return network_.size(); }
  [[nodiscard]] std::size_t checkpoints_taken() const noexcept {
    return checkpoints_taken_;
  }

 private:
  struct Event {
    enum class Kind : std::uint8_t { work, send, recv } kind;
    std::uint64_t msg_id = 0;   // send/recv
    std::int64_t payload = 0;   // send/recv
    std::size_t peer = 0;       // send: dst, recv: src
    std::uint64_t at = 0;       // global step the event happened
  };

  struct Snapshot {
    std::size_t history_len = 0;
    std::uint64_t lc = 0;
    std::uint64_t digest = 0;
  };

  struct LoggedMessage {
    std::uint64_t msg_id = 0;
    std::int64_t payload = 0;
    std::size_t src = 0;
  };

  struct Process {
    std::uint64_t lc = 0;        ///< local work counter
    std::uint64_t digest = 0;    ///< deterministic state digest
    std::vector<Event> history;
    std::vector<Snapshot> snapshots;      ///< always contains the initial cut
    std::vector<LoggedMessage> msg_log;   ///< logging protocol only
  };

  struct InFlight {
    std::uint64_t msg_id = 0;
    std::size_t src = 0;
    std::size_t dst = 0;
    std::int64_t payload = 0;
    std::uint64_t deliver_at = 0;
  };

  /// Where each message currently stands, for orphan tracking.
  struct MsgMeta {
    std::size_t src = 0;
    std::size_t dst = 0;
    std::size_t send_pos = 0;  ///< index of the send event in src history
    bool delivered = false;
    std::size_t recv_pos = 0;  ///< index of the recv event in dst history
  };

  void do_work(std::size_t p);
  void deliver_due();
  void take_snapshot(std::size_t p);
  void take_coordinated_line();
  /// Latest snapshot of `p` whose history length is <= `max_len`.
  [[nodiscard]] const Snapshot& snapshot_at_or_before(
      std::size_t p, std::size_t max_len) const;
  /// Reconstruct (by replay over the recorded history) the state `p` had
  /// after exactly `len` events — what a log-based recovery can rebuild.
  [[nodiscard]] Snapshot state_at(std::size_t p, std::size_t len) const;
  /// Truncate `p` to `len` events, recomputing bookkeeping; returns the
  /// events that were discarded.
  std::vector<Event> truncate(std::size_t p, const Snapshot& snap);

  Config cfg_;
  util::Rng rng_;
  std::vector<Process> procs_;
  std::deque<InFlight> network_;
  std::map<std::uint64_t, MsgMeta> messages_;
  std::uint64_t clock_ = 0;
  std::uint64_t next_msg_id_ = 1;
  std::size_t checkpoints_taken_ = 0;
  /// Coordinated lines: per-process snapshot index + saved channel state.
  struct CoordinatedLine {
    std::vector<Snapshot> cuts;       // one per process
    std::deque<InFlight> channel;     // network contents at the line
  };
  std::vector<CoordinatedLine> lines_;
};

}  // namespace redundancy::rollback
