#include "services/converter.hpp"

#include <algorithm>

namespace redundancy::services {

bool FieldMap::identity() const noexcept {
  auto all_same = [](const auto& m) {
    return std::all_of(m.begin(), m.end(),
                       [](const auto& kv) { return kv.first == kv.second; });
  };
  return all_same(request) && all_same(response);
}

namespace {

std::optional<std::map<std::string, std::string, std::less<>>> pair_fields(
    const std::vector<std::string>& from, const std::vector<std::string>& to) {
  // The provider must offer a slot for every consumer field.
  if (to.size() < from.size()) return std::nullopt;
  std::map<std::string, std::string, std::less<>> mapping;
  std::vector<bool> taken(to.size(), false);
  std::vector<std::size_t> unmatched;
  // Tier 1: exact name matches.
  for (std::size_t i = 0; i < from.size(); ++i) {
    auto it = std::find(to.begin(), to.end(), from[i]);
    if (it != to.end() && !taken[static_cast<std::size_t>(it - to.begin())]) {
      taken[static_cast<std::size_t>(it - to.begin())] = true;
      mapping[from[i]] = *it;
    } else {
      unmatched.push_back(i);
    }
  }
  // Tier 2: positional pairing of leftovers, in declaration order.
  std::size_t next_free = 0;
  for (std::size_t i : unmatched) {
    while (next_free < to.size() && taken[next_free]) ++next_free;
    if (next_free == to.size()) return std::nullopt;
    taken[next_free] = true;
    mapping[from[i]] = to[next_free];
  }
  return mapping;
}

}  // namespace

std::optional<FieldMap> derive_mapping(const Interface& wanted,
                                       const Interface& offered) {
  if (wanted.operation != offered.operation) return std::nullopt;
  auto req = pair_fields(wanted.inputs, offered.inputs);
  if (!req) return std::nullopt;
  // Responses map provider -> consumer, so pair in the other direction.
  auto resp = pair_fields(offered.outputs, wanted.outputs);
  if (!resp) {
    // The provider may output *more* fields than we need; map only ours.
    auto narrowed = pair_fields(wanted.outputs, offered.outputs);
    if (!narrowed) return std::nullopt;
    std::map<std::string, std::string, std::less<>> inverted;
    for (const auto& [consumer, provider] : *narrowed) {
      inverted[provider] = consumer;
    }
    resp = std::move(inverted);
  }
  return FieldMap{std::move(*req), std::move(*resp)};
}

Message rename_fields(
    const Message& msg,
    const std::map<std::string, std::string, std::less<>>& mapping) {
  Message out;
  for (const auto& [field, value] : msg) {
    auto it = mapping.find(field);
    out[it != mapping.end() ? it->second : field] = value;
  }
  return out;
}

Handler convert(EndpointPtr provider, FieldMap mapping) {
  return [provider = std::move(provider),
          mapping = std::move(mapping)](const Message& request)
             -> core::Result<Message> {
    auto adapted = rename_fields(request, mapping.request);
    auto response = provider->call(adapted);
    if (!response.has_value()) return response;
    return rename_fields(response.value(), mapping.response);
  };
}

}  // namespace redundancy::services
