// Messages and interfaces of the in-process service substrate.
//
// Stands in for the web-service layer that the surveyed BPEL-based
// techniques (Dobson's WS-BPEL fault tolerance, Subramanian's self-healing
// BPEL, Taher's interface-similar substitution, Mosincat's dynamic binding)
// operate on: named operations exchanging field→value messages.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace redundancy::services {

using Value = std::variant<std::int64_t, double, std::string>;

[[nodiscard]] std::string to_string(const Value& v);

/// A service message: named fields. Ordered map gives deterministic
/// iteration, equality, and voting.
using Message = std::map<std::string, Value, std::less<>>;

/// Structural description of an operation: what a registry matches on.
struct Interface {
  std::string operation;              ///< logical operation name
  std::vector<std::string> inputs;    ///< required input fields
  std::vector<std::string> outputs;   ///< produced output fields

  friend bool operator==(const Interface&, const Interface&) = default;
};

/// Interface compatibility score in [0,1]: 1.0 = identical; above 0 means a
/// converter could bridge the differences (same operation, overlapping
/// field sets). Used by Taher-style similarity search.
[[nodiscard]] double similarity(const Interface& wanted, const Interface& offered);

}  // namespace redundancy::services
