// A small BPEL-style orchestration engine.
//
// The substrate on which the survey's service-oriented fault-tolerance
// recipes are expressed (Dobson 2006): processes are activity trees with
// sequence, assignment, invocation, retry-with-alternatives, parallel
// invocation with voting, and scoped fault handlers. The redundancy
// techniques appear as *activity combinators*: `parallel_vote` is N-version
// programming over services, `alternatives` is a recovery block, `retry` is
// the BPEL retry command.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/voters.hpp"
#include "services/binding.hpp"
#include "services/service.hpp"
#include "util/unique_function.hpp"

namespace redundancy::services {

struct WorkflowContext {
  core::Metrics metrics;
};

class Activity {
 public:
  virtual ~Activity() = default;
  virtual core::Result<Message> execute(const Message& input,
                                        WorkflowContext& ctx) = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

using ActivityPtr = std::shared_ptr<Activity>;

/// Invoke a fixed endpoint.
[[nodiscard]] ActivityPtr invoke(EndpointPtr endpoint);
/// Invoke through a dynamic binding (substitution happens inside).
[[nodiscard]] ActivityPtr invoke(std::shared_ptr<DynamicBinding> binding);
/// Pure message transformation (BPEL <assign>). The transform is a
/// UniqueFunction — activities live behind shared_ptr and are never copied,
/// so the cheaper move-only wrapper (inline storage, single indirect call)
/// replaces std::function on the per-message execute path (FL031).
[[nodiscard]] ActivityPtr assign(std::string name,
                                 util::UniqueFunction<Message(Message)> fn);
/// Run children in order, feeding each the previous output.
[[nodiscard]] ActivityPtr sequence(std::vector<ActivityPtr> children);
/// Re-run the child up to `attempts` times until it succeeds.
[[nodiscard]] ActivityPtr retry(ActivityPtr child, std::size_t attempts);
/// Recovery-block node: try children in order until one both succeeds and
/// passes the acceptance test.
[[nodiscard]] ActivityPtr alternatives(
    std::vector<ActivityPtr> children,
    util::UniqueFunction<bool(const Message&)> accept);
/// N-version node: run all branches on the same input, vote on the results.
[[nodiscard]] ActivityPtr parallel_vote(std::vector<ActivityPtr> branches,
                                        core::Voter<Message> voter);
/// Scoped fault handling: on child failure, run the handler registered for
/// the failure kind (BPEL fault handlers / rule-engine recovery actions).
[[nodiscard]] ActivityPtr scope(
    ActivityPtr child,
    std::map<core::FailureKind, ActivityPtr> handlers);

/// A compensable step of a saga: `forward` does the work, `compensation`
/// undoes it if a *later* step fails.
struct SagaStep {
  ActivityPtr forward;
  ActivityPtr compensation;  ///< may be null (nothing to undo)
};

/// BPEL compensation semantics: run steps in order; when step k fails, run
/// the compensations of steps k-1..0 (in reverse completion order) on the
/// messages those steps produced, then propagate the failure.
[[nodiscard]] ActivityPtr saga(std::vector<SagaStep> steps);

class Workflow {
 public:
  Workflow(std::string name, ActivityPtr root)
      : name_(std::move(name)), root_(std::move(root)) {}

  core::Result<Message> run(const Message& input) {
    ++ctx_.metrics.requests;
    auto out = root_->execute(input, ctx_);
    if (!out.has_value()) ++ctx_.metrics.unrecovered;
    return out;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return ctx_.metrics;
  }

 private:
  std::string name_;
  ActivityPtr root_;
  WorkflowContext ctx_;
};

}  // namespace redundancy::services
