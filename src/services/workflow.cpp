#include "services/workflow.hpp"

namespace redundancy::services {
namespace {

class InvokeEndpoint final : public Activity {
 public:
  explicit InvokeEndpoint(EndpointPtr ep) : ep_(std::move(ep)) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext& ctx) override {
    ++ctx.metrics.variant_executions;
    auto out = ep_->call(input);
    if (!out.has_value()) ++ctx.metrics.variant_failures;
    return out;
  }
  [[nodiscard]] std::string describe() const override {
    return "invoke(" + ep_->id() + ")";
  }

 private:
  EndpointPtr ep_;
};

class InvokeBinding final : public Activity {
 public:
  explicit InvokeBinding(std::shared_ptr<DynamicBinding> b)
      : binding_(std::move(b)) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext& ctx) override {
    ++ctx.metrics.variant_executions;
    const std::size_t before = binding_->rebinds();
    auto out = binding_->call(input);
    if (!out.has_value()) {
      ++ctx.metrics.variant_failures;
    } else if (binding_->rebinds() > before) {
      ++ctx.metrics.recoveries;
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override {
    return "invoke<dynamic>(" + binding_->interface().operation + ")";
  }

 private:
  std::shared_ptr<DynamicBinding> binding_;
};

class Assign final : public Activity {
 public:
  Assign(std::string name, util::UniqueFunction<Message(Message)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext&) override {
    return fn_(input);
  }
  [[nodiscard]] std::string describe() const override {
    return "assign(" + name_ + ")";
  }

 private:
  std::string name_;
  util::UniqueFunction<Message(Message)> fn_;
};

class Sequence final : public Activity {
 public:
  explicit Sequence(std::vector<ActivityPtr> children)
      : children_(std::move(children)) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext& ctx) override {
    Message current = input;
    for (const auto& child : children_) {
      auto out = child->execute(current, ctx);
      if (!out.has_value()) return out;
      current = std::move(out).take();
    }
    return current;
  }
  [[nodiscard]] std::string describe() const override { return "sequence"; }

 private:
  std::vector<ActivityPtr> children_;
};

class Retry final : public Activity {
 public:
  Retry(ActivityPtr child, std::size_t attempts)
      : child_(std::move(child)), attempts_(attempts) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext& ctx) override {
    core::Result<Message> out =
        core::failure(core::FailureKind::no_alternatives, "retry(0)");
    for (std::size_t i = 0; i < attempts_; ++i) {
      out = child_->execute(input, ctx);
      if (out.has_value()) {
        if (i > 0) ++ctx.metrics.recoveries;
        return out;
      }
    }
    return out;
  }
  [[nodiscard]] std::string describe() const override { return "retry"; }

 private:
  ActivityPtr child_;
  std::size_t attempts_;
};

class Alternatives final : public Activity {
 public:
  Alternatives(std::vector<ActivityPtr> children,
               util::UniqueFunction<bool(const Message&)> accept)
      : children_(std::move(children)), accept_(std::move(accept)) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext& ctx) override {
    core::Failure last =
        core::failure(core::FailureKind::no_alternatives, "no children");
    for (std::size_t i = 0; i < children_.size(); ++i) {
      auto out = children_[i]->execute(input, ctx);
      ++ctx.metrics.adjudications;
      if (out.has_value() && accept_(out.value())) {
        if (i > 0) ++ctx.metrics.recoveries;
        return out;
      }
      last = out.has_value()
                 ? core::failure(core::FailureKind::acceptance_failed,
                                 children_[i]->describe())
                 : out.error();
    }
    return core::Result<Message>{core::failure(
        core::FailureKind::no_alternatives, last.describe(), last.cause)};
  }
  [[nodiscard]] std::string describe() const override { return "alternatives"; }

 private:
  std::vector<ActivityPtr> children_;
  util::UniqueFunction<bool(const Message&)> accept_;
};

class ParallelVote final : public Activity {
 public:
  ParallelVote(std::vector<ActivityPtr> branches, core::Voter<Message> voter)
      : branches_(std::move(branches)), voter_(std::move(voter)) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext& ctx) override {
    std::vector<core::Ballot<Message>> ballots;
    ballots.reserve(branches_.size());
    bool any_failed = false;
    for (std::size_t i = 0; i < branches_.size(); ++i) {
      auto out = branches_[i]->execute(input, ctx);
      if (!out.has_value()) any_failed = true;
      ballots.push_back({i, branches_[i]->describe(), std::move(out)});
    }
    ++ctx.metrics.adjudications;
    auto verdict = voter_(ballots);
    if (verdict.has_value() && any_failed) ++ctx.metrics.recoveries;
    return verdict;
  }
  [[nodiscard]] std::string describe() const override { return "parallel_vote"; }

 private:
  std::vector<ActivityPtr> branches_;
  core::Voter<Message> voter_;
};

class Scope final : public Activity {
 public:
  Scope(ActivityPtr child, std::map<core::FailureKind, ActivityPtr> handlers)
      : child_(std::move(child)), handlers_(std::move(handlers)) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext& ctx) override {
    auto out = child_->execute(input, ctx);
    if (out.has_value()) return out;
    auto it = handlers_.find(out.error().kind);
    if (it == handlers_.end()) return out;
    ++ctx.metrics.adjudications;
    auto handled = it->second->execute(input, ctx);
    if (handled.has_value()) ++ctx.metrics.recoveries;
    return handled;
  }
  [[nodiscard]] std::string describe() const override { return "scope"; }

 private:
  ActivityPtr child_;
  std::map<core::FailureKind, ActivityPtr> handlers_;
};

class Saga final : public Activity {
 public:
  explicit Saga(std::vector<SagaStep> steps) : steps_(std::move(steps)) {}
  core::Result<Message> execute(const Message& input,
                                WorkflowContext& ctx) override {
    Message current = input;
    // Record, per completed step, the message it produced — the context its
    // compensation runs against.
    std::vector<std::pair<const SagaStep*, Message>> completed;
    for (const auto& step : steps_) {
      auto out = step.forward->execute(current, ctx);
      if (!out.has_value()) {
        // Unwind: compensate completed steps in reverse completion order.
        for (auto it = completed.rbegin(); it != completed.rend(); ++it) {
          if (it->first->compensation != nullptr) {
            ++ctx.metrics.rollbacks;
            (void)it->first->compensation->execute(it->second, ctx);
          }
        }
        return out;
      }
      current = std::move(out).take();
      completed.emplace_back(&step, current);
    }
    return current;
  }
  [[nodiscard]] std::string describe() const override { return "saga"; }

 private:
  std::vector<SagaStep> steps_;
};

}  // namespace

ActivityPtr saga(std::vector<SagaStep> steps) {
  return std::make_shared<Saga>(std::move(steps));
}

ActivityPtr invoke(EndpointPtr endpoint) {
  return std::make_shared<InvokeEndpoint>(std::move(endpoint));
}
ActivityPtr invoke(std::shared_ptr<DynamicBinding> binding) {
  return std::make_shared<InvokeBinding>(std::move(binding));
}
ActivityPtr assign(std::string name, util::UniqueFunction<Message(Message)> fn) {
  return std::make_shared<Assign>(std::move(name), std::move(fn));
}
ActivityPtr sequence(std::vector<ActivityPtr> children) {
  return std::make_shared<Sequence>(std::move(children));
}
ActivityPtr retry(ActivityPtr child, std::size_t attempts) {
  return std::make_shared<Retry>(std::move(child), attempts);
}
ActivityPtr alternatives(std::vector<ActivityPtr> children,
                         util::UniqueFunction<bool(const Message&)> accept) {
  return std::make_shared<Alternatives>(std::move(children), std::move(accept));
}
ActivityPtr parallel_vote(std::vector<ActivityPtr> branches,
                          core::Voter<Message> voter) {
  return std::make_shared<ParallelVote>(std::move(branches), std::move(voter));
}
ActivityPtr scope(ActivityPtr child,
                  std::map<core::FailureKind, ActivityPtr> handlers) {
  return std::make_shared<Scope>(std::move(child), std::move(handlers));
}

}  // namespace redundancy::services
