// Converters: adapters that let a similar-but-not-identical service stand
// in for the one that failed (Taher et al.).
//
// A converter renames request fields from the consumer's vocabulary to the
// provider's, and response fields back. Mappings can be written by hand or
// derived automatically from the two interfaces (exact name matches first,
// then positional pairing of the leftovers).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "services/service.hpp"

namespace redundancy::services {

struct FieldMap {
  /// consumer field name -> provider field name
  std::map<std::string, std::string, std::less<>> request;
  /// provider field name -> consumer field name
  std::map<std::string, std::string, std::less<>> response;

  [[nodiscard]] bool identity() const noexcept;
};

/// Derive a mapping between interfaces, or nullopt when they cannot be
/// bridged (different operations, or unmappable field counts).
[[nodiscard]] std::optional<FieldMap> derive_mapping(const Interface& wanted,
                                                     const Interface& offered);

/// Apply a field renaming to a message (fields without a mapping pass
/// through unchanged).
[[nodiscard]] Message rename_fields(
    const Message& msg,
    const std::map<std::string, std::string, std::less<>>& mapping);

/// Wrap an endpoint behind a converter so it presents the consumer's
/// interface. The wrapper keeps the provider alive via shared ownership.
[[nodiscard]] Handler convert(EndpointPtr provider, FieldMap mapping);

}  // namespace redundancy::services
