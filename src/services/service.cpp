#include "services/service.hpp"

#include <algorithm>
#include <cstdio>

namespace redundancy::services {

std::string to_string(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

double similarity(const Interface& wanted, const Interface& offered) {
  if (wanted.operation != offered.operation) return 0.0;
  // Per direction: exact field-name overlap scores highest, but a field set
  // that merely *admits a mapping* (the provider offers at least as many
  // slots, so a converter can pair the leftovers positionally) still scores
  // 0.5 — Taher's "sufficiently similar to admit a simple adaptation".
  auto score = [](const std::vector<std::string>& need,
                  const std::vector<std::string>& have) {
    if (need.empty() && have.empty()) return 1.0;
    std::size_t common = 0;
    for (const auto& x : need) {
      if (std::find(have.begin(), have.end(), x) != have.end()) ++common;
    }
    const std::size_t denom = std::max(need.size(), have.size());
    const double by_name =
        denom ? static_cast<double>(common) / static_cast<double>(denom) : 1.0;
    const bool mappable = have.size() >= need.size();
    return std::max(by_name, mappable ? 0.5 : 0.0);
  };
  return 0.5 * score(wanted.inputs, offered.inputs) +
         0.5 * score(wanted.outputs, offered.outputs);
}

Endpoint::Endpoint(std::string id, Interface iface, Handler handler, Qos qos,
                   std::uint64_t seed)
    : id_(std::move(id)), iface_(std::move(iface)),
      handler_(std::move(handler)), qos_(qos), rng_(seed) {}

core::Result<Message> Endpoint::call(const Message& request) {
  ++calls_;
  latency_ms_ += rng_.exponential(qos_.mean_latency_ms);
  if (!rng_.chance(qos_.availability)) {
    ++failures_;
    return core::failure(core::FailureKind::unavailable,
                         id_ + " unavailable");
  }
  auto response = handler_(request);
  if (!response.has_value()) ++failures_;
  return response;
}

}  // namespace redundancy::services
