#include "services/registry.hpp"

#include <algorithm>

namespace redundancy::services {

void Registry::add(EndpointPtr endpoint) {
  endpoints_.push_back(std::move(endpoint));
}

EndpointPtr Registry::by_id(std::string_view id) const {
  for (const auto& e : endpoints_) {
    if (e->id() == id) return e;
  }
  return nullptr;
}

std::vector<EndpointPtr> Registry::exact_matches(const Interface& iface) const {
  std::vector<EndpointPtr> out;
  for (const auto& e : endpoints_) {
    if (e->interface() == iface) out.push_back(e);
  }
  return out;
}

std::vector<Registry::Candidate> Registry::similar_matches(
    const Interface& iface, double min_score) const {
  std::vector<Candidate> out;
  for (const auto& e : endpoints_) {
    const double score = similarity(iface, e->interface());
    if (score >= min_score) out.push_back({e, score});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  return out;
}

}  // namespace redundancy::services
