#include "services/binding.hpp"

#include <algorithm>

namespace redundancy::services {

DynamicBinding::DynamicBinding(Interface iface, Registry& registry,
                               Options options)
    : iface_(std::move(iface)), registry_(registry), options_(options) {
  rebind();
  rebinds_ = 0;  // the initial bind is not a recovery
  converted_rebinds_ = 0;
}

bool DynamicBinding::rebind() {
  auto candidates = registry_.similar_matches(iface_, options_.min_similarity);
  if (options_.prefer_fast) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Registry::Candidate& a,
                        const Registry::Candidate& b) {
                       if (a.score != b.score) return a.score > b.score;
                       return a.endpoint->qos().mean_latency_ms <
                              b.endpoint->qos().mean_latency_ms;
                     });
  }
  for (const auto& candidate : candidates) {
    const auto& ep = candidate.endpoint;
    if (blacklist_.contains(ep->id())) continue;
    if (current_ && ep->id() == current_->id()) continue;
    if (ep->interface() == iface_) {
      current_ = ep;
      adapter_ = nullptr;
    } else {
      auto mapping = derive_mapping(iface_, ep->interface());
      if (!mapping) continue;
      current_ = ep;
      adapter_ = convert(ep, std::move(*mapping));
      ++converted_rebinds_;
    }
    ++rebinds_;
    // Stateful substitutes must be brought up to the conversation point.
    if (options_.replay_session && current_->stateful()) {
      for (const auto& past : session_) {
        (void)invoke_current(past);
      }
    }
    return true;
  }
  return false;
}

core::Result<Message> DynamicBinding::invoke_current(const Message& request) {
  if (adapter_) return adapter_(request);
  return current_->call(request);
}

core::Result<Message> DynamicBinding::call(const Message& request) {
  if (!current_) {
    if (!rebind()) {
      return core::failure(core::FailureKind::unavailable,
                           "no endpoint offers " + iface_.operation);
    }
  }
  core::Result<Message> response = invoke_current(request);
  std::size_t attempts = 0;
  while (!response.has_value() && attempts < options_.max_rebinds_per_call) {
    if (options_.blacklist_failed && current_) {
      blacklist_.insert(current_->id());
    }
    if (!rebind()) break;
    ++attempts;
    response = invoke_current(request);
  }
  if (response.has_value()) session_.push_back(request);
  return response;
}

}  // namespace redundancy::services
