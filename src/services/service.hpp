// Endpoint: one concrete implementation of a service interface.
//
// Endpoints have simulated quality-of-service: a latency model and an
// availability process that experiments can degrade or kill, reproducing
// the "unpredicted response or availability problems" that dynamic service
// substitution exists to mask.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/result.hpp"
#include "services/message.hpp"
#include "util/rng.hpp"

namespace redundancy::services {

using Handler = std::function<core::Result<Message>(const Message&)>;

struct Qos {
  double mean_latency_ms = 10.0;
  double availability = 1.0;  ///< per-call success probability
};

class Endpoint {
 public:
  Endpoint(std::string id, Interface iface, Handler handler, Qos qos = {},
           std::uint64_t seed = 1);

  /// Invoke the endpoint. Simulated latency is accumulated, not slept.
  core::Result<Message> call(const Message& request);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const Interface& interface() const noexcept { return iface_; }
  [[nodiscard]] const Qos& qos() const noexcept { return qos_; }
  [[nodiscard]] bool stateful() const noexcept { return stateful_; }
  void set_stateful(bool v) noexcept { stateful_ = v; }

  // Experiment controls.
  void set_availability(double a) noexcept { qos_.availability = a; }
  void set_mean_latency(double ms) noexcept { qos_.mean_latency_ms = ms; }
  void kill() noexcept { qos_.availability = 0.0; }

  // Observability.
  [[nodiscard]] std::size_t calls() const noexcept { return calls_; }
  [[nodiscard]] std::size_t failures() const noexcept { return failures_; }
  [[nodiscard]] double total_latency_ms() const noexcept { return latency_ms_; }
  [[nodiscard]] double observed_mean_latency() const noexcept {
    return calls_ ? latency_ms_ / static_cast<double>(calls_) : 0.0;
  }

 private:
  std::string id_;
  Interface iface_;
  Handler handler_;
  Qos qos_;
  util::Rng rng_;
  bool stateful_ = false;
  std::size_t calls_ = 0;
  std::size_t failures_ = 0;
  double latency_ms_ = 0.0;
};

using EndpointPtr = std::shared_ptr<Endpoint>;

}  // namespace redundancy::services
