// DynamicBinding: a transparent-shaping proxy with runtime rebinding.
//
// The consumer holds the binding, not an endpoint. Calls forward to the
// currently bound endpoint; when it fails, the binding searches the
// registry for a substitute — exact interface first, then similar
// interfaces behind an automatically derived converter — rebinds, and
// retries, all invisibly to the caller (Sadjadi's transparent shaping,
// Mosincat's stateful/stateless rebinding).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "services/converter.hpp"
#include "services/registry.hpp"

namespace redundancy::services {

class DynamicBinding {
 public:
  struct Options {
    double min_similarity = 0.5;       ///< floor for adaptable candidates
    std::size_t max_rebinds_per_call = 4;
    bool replay_session = true;        ///< re-send history to stateful substitutes
    bool blacklist_failed = true;      ///< never rebind to an endpoint that failed
    /// Among equally similar candidates, prefer the lowest declared mean
    /// latency (Naccache-style QoS-aware selection).
    bool prefer_fast = false;
  };

  DynamicBinding(Interface iface, Registry& registry, Options options);
  DynamicBinding(Interface iface, Registry& registry)
      : DynamicBinding(std::move(iface), registry, Options{}) {}

  /// Invoke through the binding; substitutes and retries on failure.
  core::Result<Message> call(const Message& request);

  [[nodiscard]] EndpointPtr current() const noexcept { return current_; }
  [[nodiscard]] std::size_t rebinds() const noexcept { return rebinds_; }
  [[nodiscard]] std::size_t converted_rebinds() const noexcept {
    return converted_rebinds_;
  }
  [[nodiscard]] const Interface& interface() const noexcept { return iface_; }

 private:
  /// Pick the best candidate not yet blacklisted; wire a converter when the
  /// interface is merely similar. Returns false when the registry is dry.
  bool rebind();
  core::Result<Message> invoke_current(const Message& request);

  Interface iface_;
  Registry& registry_;
  Options options_;
  EndpointPtr current_;
  Handler adapter_;  ///< converter wrapper when bound to a similar interface
  std::set<std::string, std::less<>> blacklist_;
  std::vector<Message> session_;  ///< conversation so far (stateful replay)
  std::size_t rebinds_ = 0;
  std::size_t converted_rebinds_ = 0;
};

}  // namespace redundancy::services
