// Registry: the service directory that substitution searches.
//
// Lookup proceeds in two tiers, mirroring the survey's two substitution
// families: exact-interface alternatives (Subramanian et al.) and
// similar-interface candidates that need a converter (Taher et al.).
#pragma once

#include <string_view>
#include <vector>

#include "services/service.hpp"

namespace redundancy::services {

class Registry {
 public:
  void add(EndpointPtr endpoint);
  [[nodiscard]] EndpointPtr by_id(std::string_view id) const;

  /// Endpoints implementing exactly this interface.
  [[nodiscard]] std::vector<EndpointPtr> exact_matches(
      const Interface& iface) const;

  struct Candidate {
    EndpointPtr endpoint;
    double score = 0.0;  ///< interface similarity in (0,1]
  };
  /// Endpoints whose interface similarity is at least `min_score`, best
  /// first (exact matches score 1.0 and sort ahead of adaptable ones).
  [[nodiscard]] std::vector<Candidate> similar_matches(
      const Interface& iface, double min_score = 0.5) const;

  [[nodiscard]] std::size_t size() const noexcept { return endpoints_.size(); }
  [[nodiscard]] const std::vector<EndpointPtr>& all() const noexcept {
    return endpoints_;
  }

 private:
  std::vector<EndpointPtr> endpoints_;
};

}  // namespace redundancy::services
