// net::EventLoop — the single-threaded readiness loop under the gateway.
//
// One thread, one backend — io_uring where the kernel allows it, epoll as
// the Linux readiness fallback, poll(2) for everything else — a wakeup fd
// for cross-thread signalling, and a TimerWheel for connection deadlines.
// Everything that touches a socket happens on the loop thread; other
// threads interact with the loop in exactly two ways — wake() (an
// eventfd/pipe write, async-signal-safe cheap) and stop() — so fd
// registration needs no locks and handlers need no synchronization.
//
// Dispatch is index-based, not pointer-based: the backend stores the fd in
// the readiness event and the loop resolves fd → IoHandler through its own
// table *at dispatch time*. A handler that closes and removes another fd
// mid-batch (a connection manager shedding its neighbour) simply leaves a
// null table entry behind; the stale readiness record is skipped instead
// of dereferencing a dangling pointer — the classic epoll use-after-close
// hazard designed out. The uring backend adds a second guard: poll SQEs
// carry a per-registration generation, so a completion for an fd that was
// removed and re-registered mid-flight is recognized as stale and dropped.
//
// Each iteration:
//   1. wait for readiness/completions (timeout = min(wheel deadline, idle
//      tick); on uring this is ONE io_uring_enter that also submits every
//      SQE queued since the last iteration),
//   2. dispatch ready fds / drain the completion queue (wakeup fd drains →
//      wake handler runs; uring completions route to the UringSink),
//   3. advance the timer wheel,
//   4. run the cycle handler — the batching hook: the gateway collects
//      every request parsed during (2) and submits them to the engine as
//      ONE ThreadPool::submit_batch there, so a burst of N readable
//      sockets costs one pending-counter epoch and one worker wake-up.
//
// Backend selection: Backend::automatic prefers uring → epoll → poll.
// REDUNDANCY_GATEWAY_BACKEND=uring|epoll|poll pins the choice (strict
// parse, loud stderr fallback on nonsense, mirroring
// REDUNDANCY_GATEWAY_LOOPS); it applies only to automatic — code that
// requests a concrete backend keeps it. A loop built with an explicit
// backend the platform cannot provide is dead (ok() == false), never
// silently downgraded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/timer_wheel.hpp"
#include "util/unique_function.hpp"

// Backend scratch buffers hold the system structs by value; forward
// declarations keep <poll.h>/<sys/epoll.h>/<sys/uio.h> out of this header
// (C++17 std::vector supports incomplete element types).
struct pollfd;
struct epoll_event;
struct iovec;

namespace redundancy::obs {
class Counter;
class Histogram;
}  // namespace redundancy::obs

namespace redundancy::net {

class Uring;
struct UringSendPool;

/// Readiness interest / event bits (backend-neutral).
inline constexpr std::uint32_t kReadable = 1u << 0;
inline constexpr std::uint32_t kWritable = 1u << 1;
inline constexpr std::uint32_t kError = 1u << 2;    ///< EPOLLERR
inline constexpr std::uint32_t kHangup = 1u << 3;   ///< EPOLLHUP/RDHUP

/// Implemented by anything that owns an fd registered with the loop.
class IoHandler {
 public:
  virtual void on_io(std::uint32_t events) = 0;

 protected:
  ~IoHandler() = default;
};

/// Monotonic milliseconds (CLOCK_MONOTONIC) — the clock the wheel runs on.
[[nodiscard]] std::uint64_t monotonic_ms() noexcept;

class EventLoop {
 public:
  enum class Backend : std::uint8_t {
    automatic,  ///< uring where supported, else epoll on Linux, else poll
    epoll,      ///< fails construction off Linux
    poll,       ///< portable fallback, O(fds) per iteration
    uring,      ///< fails construction when the runtime probe refuses
  };

  struct Options {
    Backend backend = Backend::automatic;
    /// Wheel granularity and sizing (see TimerWheel).
    std::uint64_t timer_tick_ms = 10;
    std::size_t timer_slots = 512;
    /// Iteration timeout when no timer is due sooner: how often the loop
    /// re-checks its stop flag even with nothing happening.
    int idle_timeout_ms = 100;
    /// Label spec for the loop's gateway.* submission metrics ("loop=0"
    /// renders `{loop="0"}`); empty = the unlabelled single-loop series.
    std::string metric_label;
  };

  /// Completion-mode consumer (the uring backend's ConnManager face).
  /// Exactly one sink per loop: whoever claims it receives every accept,
  /// recv and send completion, routed by the token it supplied.
  class UringSink {
   public:
    /// One accepted fd (res >= 0) or an accept error (negative errno).
    /// `more` false means the multishot chain ended — re-arm to continue.
    virtual void on_uring_accept(int res, bool more) = 0;
    /// Recv completion: res > 0 ⇒ `data`/`len` view a kernel-provided
    /// buffer, valid only for the duration of the call (copy out); res == 0
    /// ⇒ EOF; res < 0 ⇒ negative errno (-ENOBUFS: buffer pool exhausted,
    /// re-arm after the drain).
    virtual void on_uring_recv(std::uint64_t token, int res, const char* data,
                               std::size_t len) = 0;
    /// Sendmsg completion: res = bytes written or negative errno. One call
    /// per SQE of the submitted chain.
    virtual void on_uring_send(std::uint64_t token, int res) = 0;
    /// End of one completion-drain batch — the flush point: sends queued
    /// here ride the next iteration's single io_uring_enter.
    virtual void on_uring_drain_end() = 0;

   protected:
    ~UringSink() = default;
  };

  EventLoop();
  explicit EventLoop(Options options);
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  /// False when the backend could not be set up (epoll_create/pipe/ring
  /// setup failed, Backend::epoll requested off Linux, Backend::uring
  /// requested where the probe refuses); a dead loop refuses add/run.
  [[nodiscard]] bool ok() const noexcept;
  [[nodiscard]] Backend backend() const noexcept { return backend_; }
  /// Human-readable backend name ("uring"/"epoll"/"poll") for startup logs.
  [[nodiscard]] static const char* backend_name(Backend backend) noexcept;
  /// Cached runtime probe: can this kernel/seccomp policy run the uring
  /// backend? (ring setup + the ops we issue + provided buffer rings).
  [[nodiscard]] static bool uring_supported() noexcept;

  /// Register `fd` (must be non-blocking) for `interest` bits. The handler
  /// pointer must stay valid until remove(fd). Loop thread (or pre-run).
  bool add(int fd, std::uint32_t interest, IoHandler* handler);
  /// Change the interest set of a registered fd.
  bool modify(int fd, std::uint32_t interest);
  /// Deregister; pending readiness records for the fd are dropped. Safe to
  /// call from inside any handler during dispatch.
  void remove(int fd);

  /// Run until stop(). Must be called from exactly one thread; that thread
  /// becomes the loop thread for in_loop_thread().
  void run();
  /// Ask the loop to exit its next iteration. Any thread.
  void stop();
  /// Force an immediate iteration (wakeup-fd write). Any thread. Coalesces:
  /// multiple wakes before the drain cost one iteration.
  void wake();

  /// Invoked on the loop thread after the wakeup fd drains — the
  /// completion-queue hook.
  void set_wake_handler(util::UniqueFunction<void()> handler) {
    wake_handler_ = std::move(handler);
  }
  /// Invoked once per iteration after events and timers — the batching
  /// hook (see file comment).
  void set_cycle_handler(util::UniqueFunction<void()> handler) {
    cycle_handler_ = std::move(handler);
  }

  // -- completion-mode surface (uring backend only; no-ops elsewhere) -----

  /// True when this loop runs the uring backend and completion-style I/O
  /// (uring_accept/uring_recv/uring_sendmsg) is available.
  [[nodiscard]] bool uring_mode() const noexcept;
  [[nodiscard]] UringSink* uring_sink() const noexcept { return uring_sink_; }
  void set_uring_sink(UringSink* sink) noexcept { uring_sink_ = sink; }
  void clear_uring_sink(UringSink* sink) noexcept {
    if (uring_sink_ == sink) uring_sink_ = nullptr;
  }
  /// Register the loop's provided-buffer pool (idempotent; first call
  /// wins). `size` should track the socket high-water mark.
  bool uring_setup_buffers(std::uint32_t count, std::uint32_t size);
  /// Arm a multishot accept on `listen_fd`; completions stream to the sink
  /// until one arrives without `more` — re-arm then.
  bool uring_accept(int listen_fd);
  void uring_cancel_accept(int listen_fd);
  /// Arm one buffer-select recv; the completion carries `token` back.
  bool uring_recv(int fd, std::uint64_t token);
  void uring_cancel_recv(std::uint64_t token);
  /// Queue `niov` iovecs as a chain of linked IORING_OP_SENDMSG SQEs (≤64
  /// iovecs each, in-order by link). The iovec array is copied; the bytes
  /// it points at must stay alive until every completion arrived. Returns
  /// the number of SQEs queued (0 = failure); they ride the next enter.
  std::size_t uring_sendmsg(int fd, const ::iovec* iov, std::size_t niov,
                            std::uint64_t token);
  void uring_cancel_sends(std::uint64_t token);
  /// Drive one submit+wait+drain round outside run() — the teardown path
  /// that reaps in-flight completions after the loop has stopped. Returns
  /// true when at least one completion was processed.
  bool uring_reap_blocking(int timeout_ms);

  [[nodiscard]] TimerWheel& timers() noexcept { return wheel_; }
  /// Cached once per iteration; cheap enough to call from handlers.
  [[nodiscard]] std::uint64_t now_ms() const noexcept { return now_ms_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool in_loop_thread() const noexcept;
  /// Registered fd count (loop thread only; for tests and admission).
  [[nodiscard]] std::size_t registered() const noexcept { return nfds_; }

 private:
  struct Registration {
    IoHandler* handler = nullptr;
    std::uint32_t interest = 0;
    /// uring backend: generation tag carried by poll SQEs — a completion
    /// whose generation no longer matches is stale (fd removed or
    /// re-registered mid-flight) and is dropped.
    std::uint32_t gen = 0;
    /// uring backend: one-shot polls armed and not yet completed.
    std::uint8_t polls_inflight = 0;
  };

  void dispatch(int fd, std::uint32_t events);
  void drain_wakeup();
  bool backend_add(int fd, std::uint32_t interest);
  bool backend_modify(int fd, std::uint32_t interest);
  void backend_remove(int fd);
  int backend_wait(int timeout_ms);
  // uring plumbing (compiled to stubs elsewhere).
  void arm_poll(int fd, Registration& reg, std::uint32_t interest);
  void handle_uring_cqe(std::uint64_t user_data, std::int32_t res,
                        std::uint32_t flags);
  std::uint32_t next_poll_gen() noexcept;

  Options options_;
  Backend backend_ = Backend::poll;
  TimerWheel wheel_;
  std::vector<Registration> table_;  ///< indexed by fd
  std::size_t nfds_ = 0;
  std::uint64_t now_ms_ = 0;

  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;  ///< == wake_read_fd_ for eventfd

  // Backend scratch, reused across iterations (no per-iteration allocation
  // in steady state). poll_scratch_ is rebuilt only when registrations
  // change; epoll_scratch_ is the ready-event output buffer.
  std::vector<::pollfd> poll_scratch_;
  bool poll_dirty_ = true;
  std::vector<::epoll_event> epoll_scratch_;

  util::UniqueFunction<void()> wake_handler_;
  util::UniqueFunction<void()> cycle_handler_;

  UringSink* uring_sink_ = nullptr;
  std::uint32_t poll_gen_ = 0;
  // gateway.* submission metrics (uring backend only; resolved once).
  obs::Counter* enters_ = nullptr;
  obs::Counter* sqes_ = nullptr;
  obs::Counter* sqe_batches_ = nullptr;
  obs::Histogram* cqe_per_enter_ = nullptr;
  std::uint64_t last_enters_ = 0;
  std::uint64_t last_sqes_ = 0;
  std::uint64_t last_batches_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> loop_thread_id_{0};

  // In-flight sendmsg headers/iovecs (kernel-referenced until their CQEs
  // land); declared before uring_ so the ring — whose teardown reaps every
  // in-flight op — is destroyed first.
  std::unique_ptr<UringSendPool> send_pool_;
  std::unique_ptr<Uring> uring_;
};

}  // namespace redundancy::net
