// net::EventLoop — the single-threaded readiness loop under the gateway.
//
// One thread, one epoll instance (poll(2) fallback for non-Linux or by
// request), a wakeup fd for cross-thread signalling, and a TimerWheel for
// connection deadlines. Everything that touches a socket happens on the
// loop thread; other threads interact with the loop in exactly two ways —
// wake() (an eventfd/pipe write, async-signal-safe cheap) and stop() — so
// fd registration needs no locks and handlers need no synchronization.
//
// Dispatch is index-based, not pointer-based: the backend stores the fd in
// the readiness event and the loop resolves fd → IoHandler through its own
// table *at dispatch time*. A handler that closes and removes another fd
// mid-batch (a connection manager shedding its neighbour) simply leaves a
// null table entry behind; the stale readiness record is skipped instead
// of dereferencing a dangling pointer — the classic epoll use-after-close
// hazard designed out.
//
// Each iteration:
//   1. wait for readiness (timeout = min(wheel deadline, idle tick)),
//   2. dispatch ready fds (wakeup fd drains → wake handler runs),
//   3. advance the timer wheel,
//   4. run the cycle handler — the batching hook: the gateway collects
//      every request parsed during (2) and submits them to the engine as
//      ONE ThreadPool::submit_batch there, so a burst of N readable
//      sockets costs one pending-counter epoch and one worker wake-up.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/timer_wheel.hpp"
#include "util/unique_function.hpp"

// Backend scratch buffers hold the system structs by value; forward
// declarations keep <poll.h>/<sys/epoll.h> out of this header (C++17
// std::vector supports incomplete element types).
struct pollfd;
struct epoll_event;

namespace redundancy::net {

/// Readiness interest / event bits (backend-neutral).
inline constexpr std::uint32_t kReadable = 1u << 0;
inline constexpr std::uint32_t kWritable = 1u << 1;
inline constexpr std::uint32_t kError = 1u << 2;    ///< EPOLLERR
inline constexpr std::uint32_t kHangup = 1u << 3;   ///< EPOLLHUP/RDHUP

/// Implemented by anything that owns an fd registered with the loop.
class IoHandler {
 public:
  virtual void on_io(std::uint32_t events) = 0;

 protected:
  ~IoHandler() = default;
};

/// Monotonic milliseconds (CLOCK_MONOTONIC) — the clock the wheel runs on.
[[nodiscard]] std::uint64_t monotonic_ms() noexcept;

class EventLoop {
 public:
  enum class Backend : std::uint8_t {
    automatic,  ///< epoll on Linux, poll elsewhere
    epoll,      ///< fails construction off Linux
    poll,       ///< portable fallback, O(fds) per iteration
  };

  struct Options {
    Backend backend = Backend::automatic;
    /// Wheel granularity and sizing (see TimerWheel).
    std::uint64_t timer_tick_ms = 10;
    std::size_t timer_slots = 512;
    /// Iteration timeout when no timer is due sooner: how often the loop
    /// re-checks its stop flag even with nothing happening.
    int idle_timeout_ms = 100;
  };

  EventLoop();
  explicit EventLoop(Options options);
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  /// False when the backend could not be set up (epoll_create/pipe failed
  /// or Backend::epoll requested off Linux); a dead loop refuses add/run.
  [[nodiscard]] bool ok() const noexcept;
  [[nodiscard]] Backend backend() const noexcept { return backend_; }

  /// Register `fd` (must be non-blocking) for `interest` bits. The handler
  /// pointer must stay valid until remove(fd). Loop thread (or pre-run).
  bool add(int fd, std::uint32_t interest, IoHandler* handler);
  /// Change the interest set of a registered fd.
  bool modify(int fd, std::uint32_t interest);
  /// Deregister; pending readiness records for the fd are dropped. Safe to
  /// call from inside any handler during dispatch.
  void remove(int fd);

  /// Run until stop(). Must be called from exactly one thread; that thread
  /// becomes the loop thread for in_loop_thread().
  void run();
  /// Ask the loop to exit its next iteration. Any thread.
  void stop();
  /// Force an immediate iteration (wakeup-fd write). Any thread. Coalesces:
  /// multiple wakes before the drain cost one iteration.
  void wake();

  /// Invoked on the loop thread after the wakeup fd drains — the
  /// completion-queue hook.
  void set_wake_handler(util::UniqueFunction<void()> handler) {
    wake_handler_ = std::move(handler);
  }
  /// Invoked once per iteration after events and timers — the batching
  /// hook (see file comment).
  void set_cycle_handler(util::UniqueFunction<void()> handler) {
    cycle_handler_ = std::move(handler);
  }

  [[nodiscard]] TimerWheel& timers() noexcept { return wheel_; }
  /// Cached once per iteration; cheap enough to call from handlers.
  [[nodiscard]] std::uint64_t now_ms() const noexcept { return now_ms_; }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool in_loop_thread() const noexcept;
  /// Registered fd count (loop thread only; for tests and admission).
  [[nodiscard]] std::size_t registered() const noexcept { return nfds_; }

 private:
  struct Registration {
    IoHandler* handler = nullptr;
    std::uint32_t interest = 0;
  };

  void dispatch(int fd, std::uint32_t events);
  void drain_wakeup();
  bool backend_add(int fd, std::uint32_t interest);
  bool backend_modify(int fd, std::uint32_t interest);
  void backend_remove(int fd);
  int backend_wait(int timeout_ms);

  Options options_;
  Backend backend_ = Backend::poll;
  TimerWheel wheel_;
  std::vector<Registration> table_;  ///< indexed by fd
  std::size_t nfds_ = 0;
  std::uint64_t now_ms_ = 0;

  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;  ///< == wake_read_fd_ for eventfd

  // Backend scratch, reused across iterations (no per-iteration allocation
  // in steady state). poll_scratch_ is rebuilt only when registrations
  // change; epoll_scratch_ is the ready-event output buffer.
  std::vector<::pollfd> poll_scratch_;
  bool poll_dirty_ = true;
  std::vector<::epoll_event> epoll_scratch_;

  util::UniqueFunction<void()> wake_handler_;
  util::UniqueFunction<void()> cycle_handler_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> loop_thread_id_{0};
};

}  // namespace redundancy::net
