#include "net/http.hpp"

namespace redundancy::net::http {

namespace {

constexpr std::string_view kHeadEnd = "\r\n\r\n";

/// ASCII case-insensitive prefix match (header names).
bool iprefix(std::string_view line, std::string_view prefix) {
  if (line.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    const char a = line[i];
    const char b = prefix[i];
    const char al = (a >= 'A' && a <= 'Z') ? static_cast<char>(a + 32) : a;
    const char bl = (b >= 'A' && b <= 'Z') ? static_cast<char>(b + 32) : b;
    if (al != bl) return false;
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse a full decimal uint64 out of `s`; nullopt on empty/garbage/overflow.
std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

ParseResult parse_head(std::string_view buffer,
                       std::size_t max_request_bytes) {
  ParseResult out;
  const std::size_t head_end = buffer.find(kHeadEnd);
  if (head_end == std::string_view::npos) {
    // No terminator yet: incomplete, unless the cap proves one can never
    // arrive in bounds.
    out.status = (max_request_bytes != 0 && buffer.size() > max_request_bytes)
                     ? ParseStatus::too_large
                     : ParseStatus::incomplete;
    return out;
  }
  const std::size_t head_len = head_end + kHeadEnd.size();
  if (max_request_bytes != 0 && head_len > max_request_bytes) {
    out.status = ParseStatus::too_large;
    return out;
  }

  const std::string_view head = buffer.substr(0, head_end);

  // Request line: METHOD SP target SP version.
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1) {
    out.status = ParseStatus::bad;
    return out;
  }
  Request req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = req.target.find('?');
  if (q == std::string_view::npos) {
    req.path = req.target;
  } else {
    req.path = req.target.substr(0, q);
    req.query = req.target.substr(q + 1);
  }

  // Header lines: only Content-Length and Connection matter here.
  std::uint64_t content_length = 0;
  bool saw_content_length = false;
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view header = head.substr(pos, end - pos);
    if (iprefix(header, "content-length:")) {
      // Request-smuggling guard: a repeated Content-Length (even with the
      // same value) means two parties could frame the message differently —
      // reject outright instead of picking a winner. Signs, spaces inside
      // the number, comma lists ("5, 5") and overflow all fail parse_u64,
      // so "-1", "+0" and "4, 4" are bad too, never silently zero.
      const auto value = parse_u64(trim(header.substr(15)));
      if (!value.has_value() || saw_content_length) {
        out.status = ParseStatus::bad;
        return out;
      }
      saw_content_length = true;
      content_length = *value;
    } else if (iprefix(header, "transfer-encoding:")) {
      // Chunked framing is deliberately unimplemented; accepting the header
      // while framing by Content-Length is how requests get smuggled.
      out.status = ParseStatus::bad;
      return out;
    } else if (iprefix(header, "connection:")) {
      const std::string_view value = trim(header.substr(11));
      if (value.size() == 5 && iprefix(value, "close")) {
        req.keep_alive = false;
      }
    }
    pos = end + 2;
  }

  req.content_length = static_cast<std::size_t>(content_length);
  out.status = ParseStatus::ok;
  out.request = req;
  out.consumed = head_len;
  return out;
}

ParseResult parse_request(std::string_view buffer,
                          std::size_t max_request_bytes) {
  ParseResult out = parse_head(buffer, max_request_bytes);
  if (out.status != ParseStatus::ok) return out;
  const std::size_t head_len = out.consumed;
  const std::size_t content_length = out.request.content_length;
  if (max_request_bytes != 0 &&
      (content_length > max_request_bytes ||
       head_len > max_request_bytes - content_length)) {
    out = ParseResult{};
    out.status = ParseStatus::too_large;
    return out;
  }
  if (buffer.size() - head_len < content_length) {
    out = ParseResult{};
    out.status = ParseStatus::incomplete;
    return out;
  }
  out.request.body = buffer.substr(head_len, content_length);
  out.consumed = head_len + content_length;
  return out;
}

const char* reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

std::string response_head(int status, std::string_view content_type,
                          std::size_t content_length, bool keep_alive) {
  std::string head;
  head.reserve(96 + content_type.size());
  head += "HTTP/1.1 ";
  head += std::to_string(status);
  head += ' ';
  head += reason_phrase(status);
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(content_length);
  head += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                     : "\r\nConnection: close\r\n\r\n";
  return head;
}

std::optional<std::uint64_t> query_param(std::string_view query,
                                         std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view param = query.substr(pos, end - pos);
    if (param.size() > key.size() && param.substr(0, key.size()) == key &&
        param[key.size()] == '=') {
      return parse_u64(param.substr(key.size() + 1));
    }
    pos = end + 1;
  }
  return std::nullopt;
}

}  // namespace redundancy::net::http
