// net::Uring — a liburing-free io_uring wrapper for the EventLoop's
// completion backend.
//
// Everything here is raw syscall + mmap plumbing against the stable
// io_uring UAPI: io_uring_setup(2) creates the ring, the SQ/CQ rings and
// the SQE array are mapped directly, SQEs are prepared in place and
// published with one release-store of the SQ tail, and io_uring_enter(2)
// both submits the batch and waits for completions in a single syscall
// (IORING_ENTER_EXT_ARG carries the wait timeout, so the loop's timer
// deadline rides the same call). No dependency is added: the struct
// definitions below mirror <linux/io_uring.h> verbatim — the UAPI is a
// frozen ABI — so the tree builds on kernels and sysroots that predate
// the header while still probing feature support at runtime.
//
// The class knows nothing about the event loop: it queues SQEs, drains
// CQEs, and owns one provided-buffer ring (buffer group 0) whose entries
// the kernel picks for IOSQE_BUFFER_SELECT reads. Single-threaded by
// contract, like everything else under the loop.
#pragma once

#ifdef __linux__

#include <cstddef>
#include <cstdint>

struct iovec;
struct msghdr;

namespace redundancy::net {

class Uring {
 public:
  /// Copied-out completion (the CQ slot is released on peek_cqe return).
  struct Cqe {
    std::uint64_t user_data = 0;
    std::int32_t res = 0;
    std::uint32_t flags = 0;
  };

  // CQE flag bits (UAPI: IORING_CQE_F_*).
  static constexpr std::uint32_t kCqeFBuffer = 1u << 0;
  static constexpr std::uint32_t kCqeFMore = 1u << 1;
  static constexpr unsigned kCqeBufferShift = 16;

  Uring() = default;
  Uring(const Uring&) = delete;
  Uring& operator=(const Uring&) = delete;
  ~Uring();

  /// Set up a ring with `entries` SQEs (rounded up by the kernel). False
  /// when the kernel or a seccomp policy refuses — callers fall back.
  [[nodiscard]] bool init(unsigned entries);
  [[nodiscard]] bool ok() const noexcept { return ring_fd_ >= 0; }

  // -- SQE preparation (queued in the mapped SQ, published at submit) -----
  // Each returns false only when the SQ is full and a flush submit failed.

  /// One-shot poll for `poll_mask` (POLLIN/POLLOUT/... bits).
  bool prep_poll_add(int fd, std::uint32_t poll_mask, std::uint64_t user_data);
  /// Multishot accept: one SQE, a CQE per accepted connection until the
  /// kernel drops IORING_CQE_F_MORE. Accepted fds arrive non-blocking.
  bool prep_accept_multishot(int fd, std::uint64_t user_data);
  /// Buffer-select recv from buffer group 0: the kernel picks a provided
  /// buffer; its id rides back in cqe.flags >> kCqeBufferShift.
  bool prep_recv_select(int fd, std::uint64_t user_data);
  /// Vectored send. `msg` (and the iovecs it points to) must stay valid
  /// until the CQE arrives. `link` chains the next SQE behind this one
  /// (IOSQE_IO_LINK) so a multi-SQE flush executes in order.
  bool prep_sendmsg(int fd, const ::msghdr* msg, std::uint64_t user_data,
                    bool link);
  /// Cancel every queued op whose user_data matches `target`.
  bool prep_cancel(std::uint64_t target, std::uint64_t user_data);
  /// Drop the IOSQE_IO_LINK flag from the most recently prepared SQE (a
  /// chain that could not be fully prepared must not link into a stranger).
  void clear_link_on_last();

  // -- submission + completion -------------------------------------------

  /// One io_uring_enter: submit everything queued AND wait up to
  /// `timeout_ms` for at least one completion. Returns false only on a
  /// hard backend failure (timeout and EINTR are normal returns).
  bool submit_and_wait(int timeout_ms);
  /// Submit-only flush (used when the SQ fills mid-preparation and by
  /// teardown paths that queue cancels with the loop parked).
  bool submit();

  /// Copy out the next completion; false when the CQ is drained.
  bool peek_cqe(Cqe* out) noexcept;

  /// Free SQE slots before the ring is full (callers planning a link chain
  /// flush first — a chain must not straddle a submission boundary).
  [[nodiscard]] std::uint32_t sq_space_left() const noexcept;

  // -- provided buffer ring (group 0) ------------------------------------

  /// Register `count` buffers of `size` bytes each (count is rounded up to
  /// a power of two). Idempotent: the first successful call wins.
  [[nodiscard]] bool setup_buffer_ring(std::uint32_t count,
                                       std::uint32_t size);
  [[nodiscard]] bool buffers_ready() const noexcept {
    return buf_base_ != nullptr;
  }
  [[nodiscard]] const char* buffer_at(std::uint32_t bid) const noexcept {
    return buf_base_ + std::size_t{bid} * buf_size_;
  }
  [[nodiscard]] std::uint32_t buffer_size() const noexcept {
    return buf_size_;
  }
  /// Hand a consumed buffer back to the kernel's ring.
  void recycle_buffer(std::uint32_t bid) noexcept;

  // Cumulative syscall accounting for the gateway.* batching metrics.
  [[nodiscard]] std::uint64_t enters() const noexcept { return stat_enters_; }
  [[nodiscard]] std::uint64_t sqes_submitted() const noexcept {
    return stat_sqes_;
  }
  [[nodiscard]] std::uint64_t submit_batches() const noexcept {
    return stat_batches_;
  }

  /// One-shot, cached runtime probe: ring setup succeeds, the ops this
  /// backend issues (POLL_ADD, SENDMSG, ACCEPT, ASYNC_CANCEL, RECV) are
  /// supported, enter timeouts (IORING_FEAT_EXT_ARG) work, and a provided
  /// buffer ring registers (the 5.19+ proxy that also covers multishot
  /// accept). False means: fall back to epoll.
  [[nodiscard]] static bool supported() noexcept;

 private:
  void* get_sqe() noexcept;  ///< next free SQE slot; flush-submits if full
  int enter(unsigned to_submit, unsigned min_complete, unsigned flags,
            void* arg, std::size_t argsz) noexcept;
  void teardown() noexcept;

  int ring_fd_ = -1;
  std::uint32_t features_ = 0;

  // SQ/CQ ring mappings (one mapping when IORING_FEAT_SINGLE_MMAP).
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_sz_ = 0;
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_sz_ = 0;
  void* sqes_mem_ = nullptr;
  std::size_t sqes_sz_ = 0;
  bool single_mmap_ = false;

  // Raw ring pointers into the mappings.
  std::uint32_t* sq_head_ = nullptr;
  std::uint32_t* sq_tail_ = nullptr;
  std::uint32_t sq_mask_ = 0;
  std::uint32_t sq_entries_ = 0;
  std::uint32_t* sq_array_ = nullptr;
  std::uint32_t* cq_head_ = nullptr;
  std::uint32_t* cq_tail_ = nullptr;
  std::uint32_t cq_mask_ = 0;
  void* cqes_ = nullptr;
  void* last_sqe_ = nullptr;

  std::uint32_t local_tail_ = 0;  ///< prepared-but-unpublished SQ tail
  std::uint32_t pending_ = 0;     ///< prepared SQEs not yet handed to enter

  // Provided-buffer ring (group 0).
  void* buf_ring_ = nullptr;
  std::size_t buf_ring_sz_ = 0;
  char* buf_base_ = nullptr;
  std::size_t buf_mem_sz_ = 0;
  std::uint32_t buf_count_ = 0;
  std::uint32_t buf_size_ = 0;
  std::uint32_t buf_mask_ = 0;
  std::uint16_t buf_tail_ = 0;

  std::uint64_t stat_enters_ = 0;
  std::uint64_t stat_sqes_ = 0;
  std::uint64_t stat_batches_ = 0;
};

}  // namespace redundancy::net

#endif  // __linux__
