// net::http — the minimal HTTP/1.1 framing shared by every socket server
// in the tree.
//
// Two components speak HTTP on real sockets: the obs::HttpExporter scrape
// endpoint (one connection at a time, Connection: close) and the
// net::Gateway serving path (thousands of keep-alive connections through
// the event loop). Both need exactly the same small slice of the
// protocol — a request head, an optional Content-Length body, a response
// head — and nothing else. This header is that slice, written as pure
// functions over byte buffers so it is trivially testable and owns no I/O:
//
//   * parse_request() consumes one request from the front of a buffer and
//     reports incomplete / ok / bad / too_large. Incremental by design:
//     callers append recv()'d bytes and re-parse; a request split across
//     any number of reads parses identically to one delivered whole
//     (the gateway's partial-read state machine leans on this).
//   * response_head() serializes the status line + the three headers both
//     servers emit (Content-Type, Content-Length, Connection).
//   * query_param() pulls "key=value" integers out of a query string
//     ("/traces?n=32", "/fast?x=1234").
//
// Deliberately not here: chunked bodies, multi-line headers, percent
// decoding, HTTP/1.0 keep-alive negotiation. The framing is "HTTP-ish by
// construction": enough for curl, load generators and scrapers, small
// enough to audit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace redundancy::net::http {

/// One parsed request head (+ body view when Content-Length > 0). The
/// string_view members point into the caller's buffer and are valid only
/// until the buffer is mutated or the parsed bytes are consumed.
struct Request {
  std::string_view method;  ///< "GET", "POST", ... (verbatim, not policed)
  std::string_view target;  ///< request target as sent ("/fast?x=1")
  std::string_view path;    ///< target up to '?'
  std::string_view query;   ///< after '?' (empty when absent)
  std::string_view body;    ///< Content-Length bytes (parse_request only)
  std::size_t content_length = 0;  ///< declared body size
  bool keep_alive = true;   ///< HTTP/1.1 default; "Connection: close" clears
};

/// What a route handler returns; the server adds the status line,
/// Content-Length and Connection headers (response_head()).
struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

enum class ParseStatus : std::uint8_t {
  incomplete,  ///< head (or declared body) not fully buffered yet
  ok,          ///< one complete request parsed
  bad,         ///< malformed request line / header — answer 400 and close
  too_large,   ///< head or body exceeds the caller's cap — 400/431 and close
};

struct ParseResult {
  ParseStatus status = ParseStatus::incomplete;
  Request request;            ///< valid only when status == ok
  std::size_t consumed = 0;   ///< bytes of `buffer` this request occupied
};

/// Parse one request *head* from the front of `buffer`: ok as soon as the
/// \r\n\r\n terminator and a well-formed request line are buffered, without
/// waiting for any declared body (`consumed` covers the head only; the
/// body view stays empty, content_length reports the declaration). This is
/// the exporter's contract — it answers GETs and never reads bodies.
/// `max_request_bytes` caps the head (0 = unlimited); a terminator still
/// missing once the buffer passed the cap is too_large. Request-smuggling
/// guard: a Content-Length that fails to parse as a plain decimal (signs,
/// comma lists, overflow), a *repeated* Content-Length header (even with an
/// identical value), or any Transfer-Encoding header (chunked framing is
/// unimplemented) is bad — the caller answers 400 and closes.
[[nodiscard]] ParseResult parse_head(std::string_view buffer,
                                     std::size_t max_request_bytes = 0);

/// Parse one full request (head + Content-Length body) from the front of
/// `buffer`; incomplete until both are buffered. `max_request_bytes` caps
/// head+body together. On ok, `consumed` is head+body length: keep-alive
/// callers erase that prefix and re-parse for pipelined requests.
[[nodiscard]] ParseResult parse_request(std::string_view buffer,
                                        std::size_t max_request_bytes = 0);

/// Standard reason phrase for the status codes the servers emit (unknown
/// codes fall back to "OK", matching the previous exporter behaviour).
[[nodiscard]] const char* reason_phrase(int status) noexcept;

/// "HTTP/1.1 <status> <phrase>\r\nContent-Type: ...\r\nContent-Length:
/// ...\r\nConnection: close|keep-alive\r\n\r\n".
[[nodiscard]] std::string response_head(int status,
                                        std::string_view content_type,
                                        std::size_t content_length,
                                        bool keep_alive);

/// Value of `key` in a query string ("n=32&x=7"), parsed as an unsigned
/// decimal; nullopt when absent or malformed.
[[nodiscard]] std::optional<std::uint64_t> query_param(std::string_view query,
                                                       std::string_view key);

}  // namespace redundancy::net::http
