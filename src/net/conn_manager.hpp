// net::ConnManager — listener + per-connection state machines on one
// EventLoop.
//
// Every connection is a small state machine driven entirely from the loop
// thread (no locks anywhere in this file):
//
//   reading ──parse ok──▶ dispatched ──respond()──▶ writing ─┬─▶ reading
//      │                      │                              └─▶ draining
//      └──── idle timeout / bad request / shed ──▶ writing(close) ─▶ ...
//
//   * reading:    buffering request bytes. The idle deadline is armed when
//                 the connection becomes idle and is NOT refreshed by
//                 partial reads — a slow-loris client dribbling one byte
//                 per tick cannot hold a slot past the deadline.
//   * dispatched: up to `max_pipeline` complete requests handed to the
//                 request handler (the gateway batches them into the
//                 engine). Once the pipeline is full, read interest is
//                 dropped — further pipelined bytes stay buffered but
//                 unparsed, so a client cannot force unbounded in-flight
//                 work; no timer runs (the handler owns its own latency).
//   * writing:    flushing responses. Responses may settle out of order
//                 but are sent strictly in request order: each dispatched
//                 request holds a sequence-numbered slot, and only the
//                 contiguous answered prefix moves to the wire. The flush
//                 is vectored — one sendmsg() covers the head+body iovecs
//                 of every response ready at that moment (no head-into-body
//                 copy, no per-response syscall under pipelining). A short
//                 write arms write interest and a write deadline; a peer
//                 that stops draining its receive window is cut off.
//   * draining:   response sent with Connection: close — shutdown(SHUT_WR)
//                 then discard input until EOF (or a drain deadline), the
//                 lingering close that lets the peer read the final bytes.
//
// Admission control happens at the two edges: accept() sheds beyond
// max_connections (accept-then-close, cheapest possible refusal), and a
// parsed request beyond max_inflight is answered 503 + close without ever
// reaching the engine. Both sheds are counted.
//
// Multi-reactor sharding hooks (the gateway runs N of these, one per
// loop): `reuseport` lets every reactor bind its own listening socket on
// the same port (the kernel spreads connections by 4-tuple hash);
// set_accept_sink() + adopt() support the fallback where one acceptor
// round-robins accepted fds to the other loops. `metric_label` shards the
// gateway.* metric families per reactor ("loop=0" → `{loop="0"}`); empty
// keeps the single-loop unlabelled series. begin_batch()/flush_batch()
// bracket a completion drain so every response delivered in one burst to
// the same connection coalesces into one sendmsg().
//
// Completion mode (loop backend == uring): the same state machine driven
// by completions instead of readiness. The accept4 drain loop becomes one
// multishot IORING_OP_ACCEPT; reads are IORING_OP_RECV with kernel-selected
// provided buffers (no recv() syscalls, no interest juggling — reads are
// re-armed exactly when the pipeline has room); the vectored flush becomes
// a chain of linked IORING_OP_SENDMSG SQEs submitted in the loop's single
// io_uring_enter. At most one send chain is in flight per connection, which
// preserves byte order; a short write completes the chain early and the
// remainder is resubmitted. Teardown with operations still in flight closes
// the fd immediately (cancellations target user_data, never the fd) and
// parks the Conn in a zombie map until the last completion arrives, so no
// kernel-referenced buffer is ever freed early.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "util/unique_function.hpp"

struct iovec;

namespace redundancy::obs {
class Counter;
class Histogram;
}  // namespace redundancy::obs

namespace redundancy::net {

class ConnManager final : public IoHandler, public EventLoop::UringSink {
 public:
  struct Options {
    /// Bind 127.0.0.1:port; 0 picks an ephemeral port (read it back).
    std::uint16_t port = 0;
    int backlog = 128;
    /// Accept-side shed threshold (listener slot excluded).
    std::size_t max_connections = 10000;
    /// Requests dispatched but not yet responded; beyond this a parsed
    /// request is answered 503 and the connection closed.
    std::size_t max_inflight = 1024;
    std::uint64_t idle_timeout_ms = 30'000;   ///< reading, whole request
    std::uint64_t write_timeout_ms = 10'000;  ///< writing, whole response
    std::uint64_t drain_timeout_ms = 1'000;   ///< draining, until peer EOF
    std::size_t max_request_bytes = 1 << 20;
    /// >0: shrink SO_SNDBUF so tests can force partial writes / EAGAIN.
    int sndbuf_bytes = 0;
    /// Set SO_REUSEPORT before bind so N reactors can share one port.
    bool reuseport = false;
    /// Parsed-but-unanswered requests allowed per connection. 1 (the
    /// default) is the classic lockstep: one request in flight, reads
    /// paused until its response is flushed. >1 enables pipelining —
    /// responses still go out in request order.
    std::size_t max_pipeline = 1;
    /// Label spec for this manager's gateway.* metrics ("loop=0" renders
    /// `{loop="0"}`); empty = the unlabelled single-loop series.
    std::string metric_label;
  };

  /// Aggregate connection counts (loop thread only; for tests + /metrics).
  struct Stats {
    std::size_t connections = 0;  ///< live sockets in any state
    std::size_t inflight = 0;     ///< dispatched, awaiting respond()
  };

  /// Invoked on the loop thread once per parsed request. The Request's
  /// views are valid only for the duration of the call — copy what the
  /// handler needs. The handler must eventually cause respond(conn_id,...)
  /// on the loop thread (or the connection dies by timeout/teardown).
  /// During the call dispatching_seq() names the request's pipeline slot;
  /// handlers that defer must capture it for the 3-arg respond().
  using RequestHandler =
      util::UniqueFunction<void(std::uint64_t conn_id,
                                const http::Request& request)>;

  /// Receives ownership of accepted (already non-blocking) fds instead of
  /// this manager adopting them — the single-acceptor fallback's fan-out.
  using AcceptSink = util::UniqueFunction<void(int fd)>;

  ConnManager(EventLoop& loop, Options options);
  ConnManager(const ConnManager&) = delete;
  ConnManager& operator=(const ConnManager&) = delete;
  ~ConnManager();

  void set_request_handler(RequestHandler handler) {
    handler_ = std::move(handler);
  }
  void set_accept_sink(AcceptSink sink) { sink_ = std::move(sink); }

  /// Bind + listen + register with the loop. False on socket failure.
  [[nodiscard]] bool listen();
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Adopt an accepted, non-blocking fd as a new connection (the receiving
  /// end of an AcceptSink handoff). Loop thread only. Sheds (closes) past
  /// max_connections; returns false when shed or registration failed.
  bool adopt(int fd);

  /// Deliver the response for a dispatched request. Loop thread only. An
  /// unknown id (the connection was torn down while the request was in
  /// flight) is a counted no-op. The 2-arg form answers the connection's
  /// oldest unanswered request — exact with max_pipeline == 1; pipelining
  /// callers pass the seq captured from dispatching_seq().
  void respond(std::uint64_t conn_id, http::Response response);
  void respond(std::uint64_t conn_id, std::uint64_t seq,
               http::Response response);

  /// The pipeline slot of the request currently being dispatched — valid
  /// only inside the RequestHandler call.
  [[nodiscard]] std::uint64_t dispatching_seq() const noexcept {
    return dispatching_seq_;
  }

  /// Bracket a burst of respond() calls (a completion-queue drain): between
  /// begin and flush, responses queue per connection without touching the
  /// socket; flush_batch() then writes each touched connection once —
  /// several pipelined responses coalesce into one sendmsg(). Loop thread.
  void begin_batch();
  void flush_batch();

  /// Stop accepting (close the listener). Loop thread only.
  void stop_listening();
  /// Tear down every connection immediately. Loop thread only.
  void close_all();

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{conns_.size(), inflight_};
  }

  /// One-shot probe: can this kernel set SO_REUSEPORT on a TCP socket?
  [[nodiscard]] static bool reuseport_supported() noexcept;

  /// Listener readiness: accept until EAGAIN, shedding past the cap.
  void on_io(std::uint32_t events) override;

  /// True when this manager drives completion-style I/O (uring backend).
  [[nodiscard]] bool completion_mode() const noexcept { return completion_; }

  // EventLoop::UringSink (completion mode; loop thread only).
  void on_uring_accept(int res, bool more) override;
  void on_uring_recv(std::uint64_t token, int res, const char* data,
                     std::size_t len) override;
  void on_uring_send(std::uint64_t token, int res) override;
  void on_uring_drain_end() override;

 private:
  enum class ConnState : std::uint8_t { reading, dispatched, writing, draining };

  /// One dispatched (or locally answered) request awaiting its turn on the
  /// wire. Slots live in parse order; only the contiguous answered prefix
  /// is promoted to the flush queue, which keeps responses in request
  /// order no matter when workers finish.
  struct Slot {
    std::uint64_t seq = 0;
    bool answered = false;
    bool close_after = false;  ///< Connection: close (or a local error)
    std::uint64_t dispatch_t0_ns = 0;
    std::string head;  ///< serialized response head (answered only)
    std::string body;
  };

  /// One wire buffer in the vectored flush queue. Head and body stay
  /// separate strings — sendmsg() joins them as iovecs, so the old
  /// head-into-body copy is gone.
  struct Chunk {
    std::string data;
    bool end_of_response = false;  ///< last chunk of a response
    bool close_after = false;      ///< ... after which the conn drains
  };

  struct Conn final : IoHandler {
    Conn(ConnManager* m, int fd_, std::uint64_t id_)
        : mgr(m), fd(fd_), id(id_), timer(this) {}
    void on_io(std::uint32_t events) override { mgr->conn_io(*this, events); }

    ConnManager* mgr;
    int fd;
    std::uint64_t id;
    ConnState state = ConnState::reading;
    bool no_more_requests = false;  ///< a close response is queued: stop parsing
    bool close_now = false;         ///< close response flushed: drain next
    bool want_write = false;        ///< last flush hit EAGAIN
    bool in_dirty = false;          ///< queued in the batch dirty list
    bool pending_recv = false;      ///< completion mode: a recv SQE is armed
    bool send_error = false;        ///< completion mode: chain hit a fatal errno
    std::uint32_t pending_sends = 0;  ///< completion mode: in-flight send SQEs
    std::uint32_t interest = kReadable;  ///< current epoll interest (cached)
    std::uint64_t next_seq = 1;
    std::string in;
    std::deque<Slot> slots;    ///< dispatched requests, parse order
    std::deque<Chunk> flushq;  ///< response bytes ready for the wire
    std::size_t flush_off = 0;  ///< sent bytes of flushq.front()
    TimerWheel::Timer timer;   ///< detaches itself on Conn destruction
  };

  void conn_io(Conn& conn, std::uint32_t events);
  void on_readable(Conn& conn);
  void on_writable(Conn& conn);
  void on_timeout(Conn& conn);
  /// May this connection parse + dispatch another request right now?
  [[nodiscard]] bool can_parse(const Conn& conn) const noexcept;
  /// Parse as many buffered requests as admission and the pipeline allow.
  void try_parse(Conn& conn);
  /// Queue a locally-generated response (400/408/431/503) and close after.
  void respond_now(Conn& conn, int status, std::string body);
  /// Move the contiguous answered slot prefix onto the flush queue.
  void promote(Conn& conn);
  /// Flush queued responses (vectored sendmsg until empty or EAGAIN); may
  /// tear the connection down — callers re-find by id afterwards.
  void flush_conn(Conn& conn);
  /// Pop fully-sent chunks after a successful send of `n` bytes.
  void advance_flush(Conn& conn, std::size_t n);
  /// Flush now, or mark dirty inside a begin_batch()/flush_batch() window.
  void flush_or_defer(Conn& conn);
  /// Recompute the priority-derived state; on a transition, bump the state
  /// counter and re-arm the state's deadline (idle/write) or cancel it.
  void update_state(Conn& conn);
  /// Recompute epoll interest from the state; modify() only on change.
  void update_interest(Conn& conn);
  void start_drain(Conn& conn);
  void teardown(Conn& conn);
  [[nodiscard]] std::size_t read_chunk_target() const noexcept;
  // Completion-mode helpers.
  /// Arm a buffer-select recv unless one is already in flight. A prep
  /// failure leaves the connection deaf; the idle deadline reclaims it.
  void arm_recv(Conn& conn);
  /// Submit the flush queue as one linked sendmsg chain (no-op while a
  /// chain is in flight — order is per-connection serial). May tear the
  /// connection down on submission failure.
  void submit_send(Conn& conn);
  /// Destroy a zombie once its last in-flight completion has arrived.
  void maybe_reap(std::uint64_t id);

  EventLoop& loop_;
  Options options_;
  RequestHandler handler_;
  AcceptSink sink_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatching_seq_ = 0;
  std::size_t inflight_ = 0;
  bool batching_ = false;
  std::vector<std::uint64_t> dirty_;  ///< conns touched during a batch
  /// Running high-watermark of request sizes (decayed per request); sizes
  /// the shared recv scratch buffer and new connections' input reserves so
  /// steady-state reads neither zero-fill 16 KiB per recv() nor realloc.
  std::size_t in_hwm_ = 4096;
  std::string read_scratch_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;

  // Completion-mode state (loop backend == uring).
  bool completion_ = false;
  bool accept_armed_ = false;
  std::vector<std::uint64_t> recv_starved_;  ///< -ENOBUFS: re-arm post-drain
  std::vector<::iovec> send_iov_;            ///< submit_send scratch
  /// Torn-down connections whose fd is closed but whose buffers are still
  /// referenced by in-flight SQEs; reaped on their final completion.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> zombies_;

  // Registry-owned counters, resolved once (obs::counter is find-or-create
  // under a registry lock; the serving path should not take it per event).
  obs::Counter* accepted_ = nullptr;
  obs::Counter* closed_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* responses_ = nullptr;
  obs::Counter* sends_ = nullptr;
  obs::Counter* shed_conns_ = nullptr;
  obs::Counter* shed_inflight_ = nullptr;
  obs::Counter* timeouts_idle_ = nullptr;
  obs::Counter* timeouts_write_ = nullptr;
  obs::Counter* bad_requests_ = nullptr;
  obs::Counter* orphan_responses_ = nullptr;
  obs::Counter* state_reading_ = nullptr;
  obs::Counter* state_dispatched_ = nullptr;
  obs::Counter* state_writing_ = nullptr;
  obs::Counter* state_draining_ = nullptr;
  obs::Histogram* request_ns_ = nullptr;
};

}  // namespace redundancy::net
