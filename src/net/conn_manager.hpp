// net::ConnManager — listener + per-connection state machines on one
// EventLoop.
//
// Every connection is a small state machine driven entirely from the loop
// thread (no locks anywhere in this file):
//
//   reading ──parse ok──▶ dispatched ──respond()──▶ writing ─┬─▶ reading
//      │                      │                              └─▶ draining
//      └──── idle timeout / bad request / shed ──▶ writing(close) ─▶ ...
//
//   * reading:    buffering request bytes. The idle deadline is armed when
//                 the connection becomes idle and is NOT refreshed by
//                 partial reads — a slow-loris client dribbling one byte
//                 per tick cannot hold a slot past the deadline.
//   * dispatched: one complete request handed to the request handler (the
//                 gateway batches it into the engine). Read interest is
//                 dropped — pipelined bytes stay buffered but unparsed, so
//                 a client cannot force unbounded in-flight work; no timer
//                 runs (the handler owns its own latency).
//   * writing:    flushing head+body. A short write arms write interest
//                 and a write deadline; a peer that stops draining its
//                 receive window is cut off, not waited on forever.
//   * draining:   response sent with Connection: close — shutdown(SHUT_WR)
//                 then discard input until EOF (or a drain deadline), the
//                 lingering close that lets the peer read the final bytes.
//
// Admission control happens at the two edges: accept() sheds beyond
// max_connections (accept-then-close, cheapest possible refusal), and a
// parsed request beyond max_inflight is answered 503 + close without ever
// reaching the engine. Both sheds are counted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "util/unique_function.hpp"

namespace redundancy::obs {
class Counter;
class Histogram;
}  // namespace redundancy::obs

namespace redundancy::net {

class ConnManager final : public IoHandler {
 public:
  struct Options {
    /// Bind 127.0.0.1:port; 0 picks an ephemeral port (read it back).
    std::uint16_t port = 0;
    int backlog = 128;
    /// Accept-side shed threshold (listener slot excluded).
    std::size_t max_connections = 10000;
    /// Requests dispatched but not yet responded; beyond this a parsed
    /// request is answered 503 and the connection closed.
    std::size_t max_inflight = 1024;
    std::uint64_t idle_timeout_ms = 30'000;   ///< reading, whole request
    std::uint64_t write_timeout_ms = 10'000;  ///< writing, whole response
    std::uint64_t drain_timeout_ms = 1'000;   ///< draining, until peer EOF
    std::size_t max_request_bytes = 1 << 20;
    /// >0: shrink SO_SNDBUF so tests can force partial writes / EAGAIN.
    int sndbuf_bytes = 0;
  };

  /// Aggregate connection counts (loop thread only; for tests + /metrics).
  struct Stats {
    std::size_t connections = 0;  ///< live sockets in any state
    std::size_t inflight = 0;     ///< dispatched, awaiting respond()
  };

  /// Invoked on the loop thread once per parsed request. The Request's
  /// views are valid only for the duration of the call — copy what the
  /// handler needs. The handler must eventually cause respond(conn_id,...)
  /// on the loop thread (or the connection dies by timeout/teardown).
  using RequestHandler =
      util::UniqueFunction<void(std::uint64_t conn_id,
                                const http::Request& request)>;

  ConnManager(EventLoop& loop, Options options);
  ConnManager(const ConnManager&) = delete;
  ConnManager& operator=(const ConnManager&) = delete;
  ~ConnManager();

  void set_request_handler(RequestHandler handler) {
    handler_ = std::move(handler);
  }

  /// Bind + listen + register with the loop. False on socket failure.
  [[nodiscard]] bool listen();
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Deliver the response for a dispatched request. Loop thread only. An
  /// unknown id (the connection was torn down while the request was in
  /// flight) is a counted no-op.
  void respond(std::uint64_t conn_id, http::Response response);

  /// Stop accepting (close the listener). Loop thread only.
  void stop_listening();
  /// Tear down every connection immediately. Loop thread only.
  void close_all();

  [[nodiscard]] Stats stats() const noexcept {
    return Stats{conns_.size(), inflight_};
  }

  /// Listener readiness: accept until EAGAIN, shedding past the cap.
  void on_io(std::uint32_t events) override;

 private:
  enum class ConnState : std::uint8_t { reading, dispatched, writing, draining };

  struct Conn final : IoHandler {
    Conn(ConnManager* m, int fd_, std::uint64_t id_)
        : mgr(m), fd(fd_), id(id_), timer(this) {}
    void on_io(std::uint32_t events) override { mgr->conn_io(*this, events); }

    ConnManager* mgr;
    int fd;
    std::uint64_t id;
    ConnState state = ConnState::reading;
    bool close_after_write = false;
    std::string in;
    std::string out;
    std::size_t out_off = 0;
    std::uint64_t dispatch_t0_ns = 0;
    TimerWheel::Timer timer;  ///< detaches itself on Conn destruction
  };

  void conn_io(Conn& conn, std::uint32_t events);
  void on_readable(Conn& conn);
  void on_writable(Conn& conn);
  void on_timeout(Conn& conn);
  /// Parse as many buffered requests as admission allows (one at a time —
  /// a connection has at most one request in flight).
  void try_parse(Conn& conn);
  /// Queue a locally-generated response (400/408/431/503) and close after.
  void respond_now(Conn& conn, int status, std::string body);
  void start_write(Conn& conn, const http::Response& response);
  void start_drain(Conn& conn);
  void resume_reading(Conn& conn);
  void teardown(Conn& conn);

  EventLoop& loop_;
  Options options_;
  RequestHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t inflight_ = 0;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;

  // Registry-owned counters, resolved once (obs::counter is find-or-create
  // under a registry lock; the serving path should not take it per event).
  obs::Counter* accepted_ = nullptr;
  obs::Counter* closed_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* responses_ = nullptr;
  obs::Counter* shed_conns_ = nullptr;
  obs::Counter* shed_inflight_ = nullptr;
  obs::Counter* timeouts_idle_ = nullptr;
  obs::Counter* timeouts_write_ = nullptr;
  obs::Counter* bad_requests_ = nullptr;
  obs::Counter* orphan_responses_ = nullptr;
  obs::Counter* state_reading_ = nullptr;
  obs::Counter* state_dispatched_ = nullptr;
  obs::Counter* state_writing_ = nullptr;
  obs::Counter* state_draining_ = nullptr;
  obs::Histogram* request_ns_ = nullptr;
};

}  // namespace redundancy::net
