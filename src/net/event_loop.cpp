#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
// Completes the forward declaration so the scratch vector's destructor
// instantiates; the epoll code paths are compiled out entirely.
struct epoll_event {
  int unused;
};
#endif

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>

#include "net/uring.hpp"
#include "obs/obs.hpp"

namespace redundancy::net {

namespace {

/// Non-zero, stable id for the current thread (hash of std::thread::id).
std::uint64_t thread_cookie() noexcept {
  const std::uint64_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h == 0 ? 1 : h;
}

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

#ifdef __linux__
std::uint32_t to_epoll(std::uint32_t interest) noexcept {
  std::uint32_t ev = EPOLLRDHUP;  // half-close is always interesting
  if (interest & kReadable) ev |= EPOLLIN;
  if (interest & kWritable) ev |= EPOLLOUT;
  return ev;
}

std::uint32_t from_epoll(std::uint32_t ev) noexcept {
  std::uint32_t events = 0;
  if (ev & EPOLLIN) events |= kReadable;
  if (ev & EPOLLOUT) events |= kWritable;
  if (ev & EPOLLERR) events |= kError;
  if (ev & (EPOLLHUP | EPOLLRDHUP)) events |= kHangup;
  return events;
}
#endif

short to_poll(std::uint32_t interest) noexcept {
  short ev = 0;
  if (interest & kReadable) ev |= POLLIN;
  if (interest & kWritable) ev |= POLLOUT;
  return ev;
}

std::uint32_t from_poll(short ev) noexcept {
  std::uint32_t events = 0;
  if (ev & POLLIN) events |= kReadable;
  if (ev & POLLOUT) events |= kWritable;
  if (ev & POLLERR) events |= kError;
  if (ev & (POLLHUP | POLLNVAL)) events |= kHangup;
#ifdef POLLRDHUP
  if (ev & POLLRDHUP) events |= kHangup;
#endif
  return events;
}

// user_data layout for uring SQEs: [63:56] tag | [55:0] payload.
// Poll payloads are [55:32] generation | [31:0] fd.
constexpr unsigned kTagShift = 56;
constexpr std::uint64_t kPayloadMask = (std::uint64_t{1} << kTagShift) - 1;
constexpr std::uint64_t kTagPoll = 1;
constexpr std::uint64_t kTagAccept = 2;
constexpr std::uint64_t kTagRecv = 3;
constexpr std::uint64_t kTagSend = 4;
constexpr std::uint64_t kTagCancel = 5;

constexpr std::uint64_t make_ud(std::uint64_t tag,
                                std::uint64_t payload) noexcept {
  return (tag << kTagShift) | (payload & kPayloadMask);
}

constexpr std::uint64_t poll_ud(int fd, std::uint32_t gen) noexcept {
  return make_ud(kTagPoll, (std::uint64_t{gen & 0xffffffu} << 32) |
                               static_cast<std::uint32_t>(fd));
}

/// iovecs per sendmsg SQE; matches the readiness path's vectored flush cap.
constexpr std::size_t kUringMaxIov = 64;

}  // namespace

/// One in-flight IORING_OP_SENDMSG: the msghdr + iovec array the SQE points
/// at, pinned at a stable address until the completion lands. Slots live in
/// a deque — growth never relocates an element the kernel is reading.
struct UringSendOp {
  ::msghdr msg{};
  ::iovec iov[kUringMaxIov];
  std::uint64_t token = 0;
  bool in_use = false;
};

struct UringSendPool {
  std::deque<UringSendOp> ops;
  std::vector<std::uint32_t> free_list;
};

std::uint64_t monotonic_ms() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000u;
}

const char* EventLoop::backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::automatic:
      return "automatic";
    case Backend::epoll:
      return "epoll";
    case Backend::poll:
      return "poll";
    case Backend::uring:
      return "uring";
  }
  return "unknown";
}

bool EventLoop::uring_supported() noexcept {
#ifdef __linux__
  return Uring::supported();
#else
  return false;
#endif
}

namespace {

/// Resolve Backend::automatic: REDUNDANCY_GATEWAY_BACKEND pins the choice
/// (strict parse, loud fallback — the REDUNDANCY_GATEWAY_LOOPS contract);
/// otherwise prefer uring → epoll → poll by platform capability.
EventLoop::Backend resolve_automatic() {
  using Backend = EventLoop::Backend;
#ifdef __linux__
  const Backend preferred =
      EventLoop::uring_supported() ? Backend::uring : Backend::epoll;
#else
  const Backend preferred = Backend::poll;
#endif
  const char* env = std::getenv("REDUNDANCY_GATEWAY_BACKEND");
  if (env == nullptr || *env == '\0') return preferred;
  if (std::strcmp(env, "poll") == 0) return Backend::poll;
  if (std::strcmp(env, "epoll") == 0) {
#ifdef __linux__
    return Backend::epoll;
#else
    std::fprintf(stderr,
                 "[redundancy] REDUNDANCY_GATEWAY_BACKEND=epoll is not "
                 "available on this platform; using poll\n");
    return Backend::poll;
#endif
  }
  if (std::strcmp(env, "uring") == 0) {
    if (EventLoop::uring_supported()) return Backend::uring;
    std::fprintf(stderr,
                 "[redundancy] REDUNDANCY_GATEWAY_BACKEND=uring requested "
                 "but io_uring is unavailable (kernel or seccomp); using "
                 "%s\n",
                 EventLoop::backend_name(preferred));
    return preferred;
  }
  std::fprintf(stderr,
               "[redundancy] REDUNDANCY_GATEWAY_BACKEND='%s' is not a valid "
               "backend (uring|epoll|poll); using %s\n",
               env, EventLoop::backend_name(preferred));
  return preferred;
}

}  // namespace

EventLoop::EventLoop() : EventLoop(Options{}) {}

EventLoop::EventLoop(Options options)
    : options_(std::move(options)),
      wheel_(options_.timer_slots, options_.timer_tick_ms) {
  backend_ = options_.backend;
  if (backend_ == Backend::automatic) backend_ = resolve_automatic();
#ifndef __linux__
  if (backend_ == Backend::epoll || backend_ == Backend::uring) {
    return;  // not available: loop stays dead
  }
#endif

#ifdef __linux__
  if (backend_ == Backend::epoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return;
    epoll_scratch_.resize(256);
  }
  if (backend_ == Backend::uring) {
    // Explicitly requested uring on a kernel that refuses it fails closed,
    // exactly like Backend::epoll off Linux (automatic never lands here
    // unsupported — resolve_automatic() already probed).
    if (!Uring::supported()) return;
    uring_ = std::make_unique<Uring>();
    if (!uring_->init(256)) {
      uring_.reset();
      return;
    }
    send_pool_ = std::make_unique<UringSendPool>();
    enters_ = &obs::counter("gateway.enters", options_.metric_label);
    sqes_ = &obs::counter("gateway.sqes", options_.metric_label);
    sqe_batches_ = &obs::counter("gateway.sqe_batches", options_.metric_label);
    cqe_per_enter_ =
        &obs::histogram("gateway.cqe_per_enter", options_.metric_label);
  }
  const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (efd >= 0) {
    wake_read_fd_ = efd;
    wake_write_fd_ = efd;
  }
#endif
  if (wake_read_fd_ < 0) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) return;
    if (!set_nonblocking(fds[0]) || !set_nonblocking(fds[1])) {
      ::close(fds[0]);
      ::close(fds[1]);
      return;
    }
    wake_read_fd_ = fds[0];
    wake_write_fd_ = fds[1];
  }
  // The wakeup fd is a permanent registration.
  add(wake_read_fd_, kReadable, nullptr);
}

EventLoop::~EventLoop() {
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    ::close(wake_write_fd_);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  // uring_ destruction closes the ring fd, which cancels and reaps every
  // in-flight op before send_pool_ (declared earlier, destroyed later)
  // releases the msghdr/iovec memory those ops reference.
}

bool EventLoop::ok() const noexcept { return wake_read_fd_ >= 0; }

bool EventLoop::uring_mode() const noexcept {
  return backend_ == Backend::uring && uring_ != nullptr;
}

std::uint32_t EventLoop::next_poll_gen() noexcept {
  poll_gen_ = (poll_gen_ + 1) & 0xffffffu;
  if (poll_gen_ == 0) poll_gen_ = 1;
  return poll_gen_;
}

bool EventLoop::add(int fd, std::uint32_t interest, IoHandler* handler) {
  if (!ok() || fd < 0) return false;
  if (static_cast<std::size_t>(fd) >= table_.size()) {
    table_.resize(static_cast<std::size_t>(fd) + 1);
  }
  Registration& reg = table_[static_cast<std::size_t>(fd)];
  if (reg.interest != 0 || reg.handler != nullptr ||
      fd == wake_read_fd_) {
    if (fd != wake_read_fd_ || reg.interest != 0) return false;  // duplicate
  }
  if (!backend_add(fd, interest)) return false;
  reg.handler = handler;
  reg.interest = interest;
  ++nfds_;
  poll_dirty_ = true;
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t interest) {
  if (!ok() || fd < 0 || static_cast<std::size_t>(fd) >= table_.size()) {
    return false;
  }
  Registration& reg = table_[static_cast<std::size_t>(fd)];
  if (reg.interest == 0 && reg.handler == nullptr) return false;
  if (reg.interest == interest) return true;
  if (!backend_modify(fd, interest)) return false;
  reg.interest = interest;
  poll_dirty_ = true;
  return true;
}

void EventLoop::remove(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= table_.size()) return;
  Registration& reg = table_[static_cast<std::size_t>(fd)];
  if (reg.interest == 0 && reg.handler == nullptr) return;
  backend_remove(fd);
  const std::uint32_t gen = reg.gen;
  reg = Registration{};
  reg.gen = gen;  // keep the bumped generation: in-flight CQEs stay stale
  --nfds_;
  poll_dirty_ = true;
}

void EventLoop::run() {
  if (!ok()) return;
  loop_thread_id_.store(thread_cookie(), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  now_ms_ = monotonic_ms();
  while (!stop_.load(std::memory_order_acquire)) {
    const int timeout =
        wheel_.next_timeout_ms(now_ms_, options_.idle_timeout_ms);
    const int ready = backend_wait(timeout);
    if (ready < 0) break;  // backend failed hard (EINTR is mapped to 0)
    wheel_.advance(now_ms_, [](TimerWheel::Timer& timer) {
      // The wheel stores handler-owned timers; the owner cookie is the
      // IoHandler to notify. A null owner is a plain deadline marker.
      if (timer.owner() != nullptr) {
        static_cast<IoHandler*>(timer.owner())->on_io(0);
      }
    });
    if (cycle_handler_) cycle_handler_();
  }
  running_.store(false, std::memory_order_release);
  stop_.store(false, std::memory_order_release);  // re-runnable
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() {
  if (wake_write_fd_ < 0) return;
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t n = ::write(wake_write_fd_, &one, sizeof one);
    if (n >= 0 || errno != EINTR) break;  // EAGAIN: a wake is already queued
  }
}

bool EventLoop::in_loop_thread() const noexcept {
  return loop_thread_id_.load(std::memory_order_acquire) == thread_cookie();
}

void EventLoop::dispatch(int fd, std::uint32_t events) {
  if (fd == wake_read_fd_) {
    drain_wakeup();
    if (wake_handler_) wake_handler_();
    return;
  }
  if (static_cast<std::size_t>(fd) >= table_.size()) return;
  const Registration reg = table_[static_cast<std::size_t>(fd)];
  // A handler earlier in this batch may have removed (or re-registered)
  // this fd; the table, not the stale readiness record, is authoritative.
  if (reg.handler == nullptr) return;
  reg.handler->on_io(events);
}

void EventLoop::drain_wakeup() {
  std::uint64_t buf = 0;
  // eventfd: one 8-byte read resets the counter. pipe: read until dry.
  while (::read(wake_read_fd_, &buf, sizeof buf) > 0) {
    if (wake_read_fd_ == wake_write_fd_) break;
  }
}

void EventLoop::arm_poll(int fd, Registration& reg, std::uint32_t interest) {
#ifdef __linux__
  std::uint32_t mask = static_cast<std::uint32_t>(
      static_cast<unsigned short>(to_poll(interest)));
#ifdef POLLRDHUP
  mask |= static_cast<std::uint32_t>(POLLRDHUP);  // epoll parity: half-close
#endif
  if (uring_->prep_poll_add(fd, mask, poll_ud(fd, reg.gen))) {
    ++reg.polls_inflight;
  }
#else
  (void)fd;
  (void)reg;
  (void)interest;
#endif
}

bool EventLoop::backend_add(int fd, std::uint32_t interest) {
#ifdef __linux__
  if (backend_ == Backend::epoll) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
  if (backend_ == Backend::uring) {
    Registration& reg = table_[static_cast<std::size_t>(fd)];
    reg.gen = next_poll_gen();
    reg.polls_inflight = 0;
    if (interest != 0) arm_poll(fd, reg, interest);
    return true;
  }
#endif
  (void)interest;
  return true;  // poll backend: the registration table is the state
}

bool EventLoop::backend_modify(int fd, std::uint32_t interest) {
#ifdef __linux__
  if (backend_ == Backend::epoll) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
  if (backend_ == Backend::uring) {
    Registration& reg = table_[static_cast<std::size_t>(fd)];
    if (reg.polls_inflight > 0) {
      // Cancel by user_data, not fd: a later close() must not race the
      // cancellation target. The stale CQE is dropped by the gen check.
      uring_->prep_cancel(poll_ud(fd, reg.gen), make_ud(kTagCancel, 0));
      reg.polls_inflight = 0;
    }
    reg.gen = next_poll_gen();
    if (interest != 0) arm_poll(fd, reg, interest);
    return true;
  }
#endif
  (void)fd;
  (void)interest;
  return true;
}

void EventLoop::backend_remove(int fd) {
#ifdef __linux__
  if (backend_ == Backend::epoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  if (backend_ == Backend::uring) {
    Registration& reg = table_[static_cast<std::size_t>(fd)];
    if (reg.polls_inflight > 0) {
      uring_->prep_cancel(poll_ud(fd, reg.gen), make_ud(kTagCancel, 0));
      reg.polls_inflight = 0;
    }
    reg.gen = next_poll_gen();  // orphan any in-flight completion
  }
#endif
  (void)fd;
}

void EventLoop::handle_uring_cqe(std::uint64_t user_data, std::int32_t res,
                                 std::uint32_t flags) {
  switch (user_data >> kTagShift) {
    case kTagPoll: {
      const int fd = static_cast<int>(user_data & 0xffffffffu);
      const auto gen = static_cast<std::uint32_t>((user_data >> 32) &
                                                  0xffffffu);
      if (fd < 0 || static_cast<std::size_t>(fd) >= table_.size()) return;
      Registration& reg = table_[static_cast<std::size_t>(fd)];
      if (reg.gen != gen) return;  // stale: fd removed/re-registered
      if (reg.polls_inflight > 0) --reg.polls_inflight;
      if (res > 0) {
        dispatch(fd, from_poll(static_cast<short>(res)));
      }
      // Level-triggered emulation: one-shot polls re-arm after dispatch —
      // unless the handler removed or re-registered the fd (generation
      // moved), modified interest (ditto), or went quiet.
      if (static_cast<std::size_t>(fd) < table_.size()) {
        Registration& cur = table_[static_cast<std::size_t>(fd)];
        if (cur.gen == gen && cur.interest != 0 && cur.polls_inflight == 0) {
          arm_poll(fd, cur, cur.interest);
        }
      }
      return;
    }
    case kTagAccept:
      if (uring_sink_ != nullptr) {
        uring_sink_->on_uring_accept(res,
                                     (flags & Uring::kCqeFMore) != 0);
      }
      return;
    case kTagRecv: {
      const std::uint64_t token = user_data & kPayloadMask;
      const char* data = nullptr;
      std::size_t len = 0;
      std::uint32_t bid = 0;
      const bool has_buffer = (flags & Uring::kCqeFBuffer) != 0;
      if (has_buffer) {
        bid = flags >> Uring::kCqeBufferShift;
        if (res > 0) {
          data = uring_->buffer_at(bid);
          len = static_cast<std::size_t>(res);
        }
      }
      if (uring_sink_ != nullptr) {
        uring_sink_->on_uring_recv(token, res, data, len);
      }
      // Recycle AFTER the sink copied the bytes out.
      if (has_buffer) uring_->recycle_buffer(bid);
      return;
    }
    case kTagSend: {
      const auto slot = static_cast<std::uint32_t>(user_data & kPayloadMask);
      if (send_pool_ == nullptr || slot >= send_pool_->ops.size()) return;
      UringSendOp& op = send_pool_->ops[slot];
      if (!op.in_use) return;
      const std::uint64_t token = op.token;
      // Free BEFORE the callback: the sink may queue the retry chain into
      // this very slot; the kernel is done with the msghdr once the CQE is
      // posted.
      op.in_use = false;
      send_pool_->free_list.push_back(slot);
      if (uring_sink_ != nullptr) uring_sink_->on_uring_send(token, res);
      return;
    }
    default:
      return;  // cancel completions carry no state
  }
}

int EventLoop::backend_wait(int timeout_ms) {
#ifdef __linux__
  if (backend_ == Backend::uring) {
    // One syscall: submit every SQE queued since the last iteration AND
    // wait (up to the wheel deadline) for completions.
    if (!uring_->submit_and_wait(timeout_ms < 0 ? 0 : timeout_ms)) return -1;
    now_ms_ = monotonic_ms();  // handlers see the post-wait clock
    int n = 0;
    Uring::Cqe cqe;
    while (uring_->peek_cqe(&cqe)) {
      handle_uring_cqe(cqe.user_data, cqe.res, cqe.flags);
      ++n;
    }
    if (uring_sink_ != nullptr) uring_sink_->on_uring_drain_end();
    if (enters_ != nullptr) {
      const std::uint64_t enters = uring_->enters();
      const std::uint64_t sqes = uring_->sqes_submitted();
      const std::uint64_t batches = uring_->submit_batches();
      enters_->add(enters - last_enters_);
      sqes_->add(sqes - last_sqes_);
      sqe_batches_->add(batches - last_batches_);
      last_enters_ = enters;
      last_sqes_ = sqes;
      last_batches_ = batches;
      cqe_per_enter_->record(static_cast<std::uint64_t>(n));
    }
    return n;
  }
  if (backend_ == Backend::epoll) {
    // Grow the ready buffer to the population so one wait can report every
    // ready fd (a 10k-connection burst drains in one iteration).
    if (epoll_scratch_.size() < nfds_) epoll_scratch_.resize(nfds_);
    const int n = ::epoll_wait(epoll_fd_, epoll_scratch_.data(),
                               static_cast<int>(epoll_scratch_.size()),
                               timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    now_ms_ = monotonic_ms();  // handlers see the post-wait clock
    for (int i = 0; i < n; ++i) {
      dispatch(epoll_scratch_[static_cast<std::size_t>(i)].data.fd,
               from_epoll(epoll_scratch_[static_cast<std::size_t>(i)].events));
    }
    return n;
  }
#endif
  if (poll_dirty_) {
    poll_scratch_.clear();
    poll_scratch_.reserve(nfds_);
    for (std::size_t fd = 0; fd < table_.size(); ++fd) {
      const Registration& reg = table_[fd];
      if (reg.interest == 0 && reg.handler == nullptr) continue;
      pollfd pfd{};
      pfd.fd = static_cast<int>(fd);
      pfd.events = to_poll(reg.interest);
      poll_scratch_.push_back(pfd);
    }
    poll_dirty_ = false;
  }
  const int n = ::poll(poll_scratch_.data(),
                       static_cast<nfds_t>(poll_scratch_.size()), timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  now_ms_ = monotonic_ms();  // handlers see the post-wait clock
  if (n == 0) return 0;
  for (const pollfd& pfd : poll_scratch_) {
    if (pfd.revents == 0) continue;
    dispatch(pfd.fd, from_poll(pfd.revents));
  }
  return n;
}

// ---------------------------------------------------------------------------
// Completion-mode surface
// ---------------------------------------------------------------------------

bool EventLoop::uring_setup_buffers(std::uint32_t count, std::uint32_t size) {
  if (!uring_mode()) return false;
  return uring_->setup_buffer_ring(count, size);
}

bool EventLoop::uring_accept(int listen_fd) {
  if (!uring_mode()) return false;
  return uring_->prep_accept_multishot(
      listen_fd, make_ud(kTagAccept, static_cast<std::uint32_t>(listen_fd)));
}

void EventLoop::uring_cancel_accept(int listen_fd) {
  if (!uring_mode()) return;
  uring_->prep_cancel(
      make_ud(kTagAccept, static_cast<std::uint32_t>(listen_fd)),
      make_ud(kTagCancel, 0));
  // Flush immediately: the caller closes the fd next, and the in-flight
  // accept holds a file reference until its cancellation completes.
  uring_->submit();
}

bool EventLoop::uring_recv(int fd, std::uint64_t token) {
  if (!uring_mode() || !uring_->buffers_ready()) return false;
  return uring_->prep_recv_select(fd, make_ud(kTagRecv, token));
}

void EventLoop::uring_cancel_recv(std::uint64_t token) {
  if (!uring_mode()) return;
  uring_->prep_cancel(make_ud(kTagRecv, token), make_ud(kTagCancel, 0));
}

std::size_t EventLoop::uring_sendmsg(int fd, const ::iovec* iov,
                                     std::size_t niov, std::uint64_t token) {
  if (!uring_mode() || niov == 0) return 0;
  std::size_t chunks = (niov + kUringMaxIov - 1) / kUringMaxIov;
  // A link chain must not straddle a submission boundary (the chain ends at
  // the batch edge and ordering would be lost): make room up front, and cap
  // the chain at the SQ size — any unqueued tail is resubmitted by the
  // caller when this chain's completions land.
  if (uring_->sq_space_left() < chunks) uring_->submit();
  const std::uint32_t space = uring_->sq_space_left();
  if (space == 0) return 0;
  if (chunks > space) chunks = space;
  std::size_t queued = 0;
  std::size_t off = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t cnt = std::min(kUringMaxIov, niov - off);
    std::uint32_t slot;
    if (!send_pool_->free_list.empty()) {
      slot = send_pool_->free_list.back();
      send_pool_->free_list.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(send_pool_->ops.size());
      send_pool_->ops.emplace_back();
    }
    UringSendOp& op = send_pool_->ops[slot];
    std::memcpy(op.iov, iov + off, cnt * sizeof(::iovec));
    op.msg = ::msghdr{};
    op.msg.msg_iov = op.iov;
    op.msg.msg_iovlen = cnt;
    op.token = token;
    op.in_use = true;
    const bool link = c + 1 < chunks;
    if (!uring_->prep_sendmsg(fd, &op.msg, make_ud(kTagSend, slot), link)) {
      op.in_use = false;
      send_pool_->free_list.push_back(slot);
      // The previous SQE must not link into whatever is prepared next.
      uring_->clear_link_on_last();
      break;
    }
    ++queued;
    off += cnt;
  }
  return queued;
}

void EventLoop::uring_cancel_sends(std::uint64_t token) {
  if (!uring_mode() || send_pool_ == nullptr) return;
  for (std::size_t i = 0; i < send_pool_->ops.size(); ++i) {
    if (send_pool_->ops[i].in_use && send_pool_->ops[i].token == token) {
      uring_->prep_cancel(make_ud(kTagSend, i), make_ud(kTagCancel, 0));
    }
  }
}

bool EventLoop::uring_reap_blocking(int timeout_ms) {
  if (!uring_mode()) return false;
  if (!uring_->submit_and_wait(timeout_ms < 0 ? 0 : timeout_ms)) return false;
  now_ms_ = monotonic_ms();
  bool any = false;
  Uring::Cqe cqe;
  while (uring_->peek_cqe(&cqe)) {
    handle_uring_cqe(cqe.user_data, cqe.res, cqe.flags);
    any = true;
  }
  return any;
}

}  // namespace redundancy::net
