#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <time.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
// Completes the forward declaration so the scratch vector's destructor
// instantiates; the epoll code paths are compiled out entirely.
struct epoll_event {
  int unused;
};
#endif

#include <cerrno>
#include <cstdint>
#include <thread>

namespace redundancy::net {

namespace {

/// Non-zero, stable id for the current thread (hash of std::thread::id).
std::uint64_t thread_cookie() noexcept {
  const std::uint64_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h == 0 ? 1 : h;
}

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

#ifdef __linux__
std::uint32_t to_epoll(std::uint32_t interest) noexcept {
  std::uint32_t ev = EPOLLRDHUP;  // half-close is always interesting
  if (interest & kReadable) ev |= EPOLLIN;
  if (interest & kWritable) ev |= EPOLLOUT;
  return ev;
}

std::uint32_t from_epoll(std::uint32_t ev) noexcept {
  std::uint32_t events = 0;
  if (ev & EPOLLIN) events |= kReadable;
  if (ev & EPOLLOUT) events |= kWritable;
  if (ev & EPOLLERR) events |= kError;
  if (ev & (EPOLLHUP | EPOLLRDHUP)) events |= kHangup;
  return events;
}
#endif

short to_poll(std::uint32_t interest) noexcept {
  short ev = 0;
  if (interest & kReadable) ev |= POLLIN;
  if (interest & kWritable) ev |= POLLOUT;
  return ev;
}

std::uint32_t from_poll(short ev) noexcept {
  std::uint32_t events = 0;
  if (ev & POLLIN) events |= kReadable;
  if (ev & POLLOUT) events |= kWritable;
  if (ev & POLLERR) events |= kError;
  if (ev & (POLLHUP | POLLNVAL)) events |= kHangup;
  return events;
}

}  // namespace

std::uint64_t monotonic_ms() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000u;
}

EventLoop::EventLoop() : EventLoop(Options{}) {}

EventLoop::EventLoop(Options options)
    : options_(options),
      wheel_(options.timer_slots, options.timer_tick_ms) {
  backend_ = options.backend;
#ifdef __linux__
  if (backend_ == Backend::automatic) backend_ = Backend::epoll;
#else
  if (backend_ == Backend::automatic) backend_ = Backend::poll;
  if (backend_ == Backend::epoll) return;  // not available: loop stays dead
#endif

#ifdef __linux__
  if (backend_ == Backend::epoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return;
    epoll_scratch_.resize(256);
  }
  const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (efd >= 0) {
    wake_read_fd_ = efd;
    wake_write_fd_ = efd;
  }
#endif
  if (wake_read_fd_ < 0) {
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) return;
    if (!set_nonblocking(fds[0]) || !set_nonblocking(fds[1])) {
      ::close(fds[0]);
      ::close(fds[1]);
      return;
    }
    wake_read_fd_ = fds[0];
    wake_write_fd_ = fds[1];
  }
  // The wakeup fd is a permanent registration.
  add(wake_read_fd_, kReadable, nullptr);
}

EventLoop::~EventLoop() {
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    ::close(wake_write_fd_);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::ok() const noexcept { return wake_read_fd_ >= 0; }

bool EventLoop::add(int fd, std::uint32_t interest, IoHandler* handler) {
  if (!ok() || fd < 0) return false;
  if (static_cast<std::size_t>(fd) >= table_.size()) {
    table_.resize(static_cast<std::size_t>(fd) + 1);
  }
  Registration& reg = table_[static_cast<std::size_t>(fd)];
  if (reg.interest != 0 || reg.handler != nullptr ||
      fd == wake_read_fd_) {
    if (fd != wake_read_fd_ || reg.interest != 0) return false;  // duplicate
  }
  if (!backend_add(fd, interest)) return false;
  reg.handler = handler;
  reg.interest = interest;
  ++nfds_;
  poll_dirty_ = true;
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t interest) {
  if (!ok() || fd < 0 || static_cast<std::size_t>(fd) >= table_.size()) {
    return false;
  }
  Registration& reg = table_[static_cast<std::size_t>(fd)];
  if (reg.interest == 0 && reg.handler == nullptr) return false;
  if (reg.interest == interest) return true;
  if (!backend_modify(fd, interest)) return false;
  reg.interest = interest;
  poll_dirty_ = true;
  return true;
}

void EventLoop::remove(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= table_.size()) return;
  Registration& reg = table_[static_cast<std::size_t>(fd)];
  if (reg.interest == 0 && reg.handler == nullptr) return;
  backend_remove(fd);
  reg = Registration{};
  --nfds_;
  poll_dirty_ = true;
}

void EventLoop::run() {
  if (!ok()) return;
  loop_thread_id_.store(thread_cookie(), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  now_ms_ = monotonic_ms();
  while (!stop_.load(std::memory_order_acquire)) {
    const int timeout =
        wheel_.next_timeout_ms(now_ms_, options_.idle_timeout_ms);
    const int ready = backend_wait(timeout);
    if (ready < 0) break;  // backend failed hard (EINTR is mapped to 0)
    wheel_.advance(now_ms_, [](TimerWheel::Timer& timer) {
      // The wheel stores handler-owned timers; the owner cookie is the
      // IoHandler to notify. A null owner is a plain deadline marker.
      if (timer.owner() != nullptr) {
        static_cast<IoHandler*>(timer.owner())->on_io(0);
      }
    });
    if (cycle_handler_) cycle_handler_();
  }
  running_.store(false, std::memory_order_release);
  stop_.store(false, std::memory_order_release);  // re-runnable
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() {
  if (wake_write_fd_ < 0) return;
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t n = ::write(wake_write_fd_, &one, sizeof one);
    if (n >= 0 || errno != EINTR) break;  // EAGAIN: a wake is already queued
  }
}

bool EventLoop::in_loop_thread() const noexcept {
  return loop_thread_id_.load(std::memory_order_acquire) == thread_cookie();
}

void EventLoop::dispatch(int fd, std::uint32_t events) {
  if (fd == wake_read_fd_) {
    drain_wakeup();
    if (wake_handler_) wake_handler_();
    return;
  }
  if (static_cast<std::size_t>(fd) >= table_.size()) return;
  const Registration reg = table_[static_cast<std::size_t>(fd)];
  // A handler earlier in this batch may have removed (or re-registered)
  // this fd; the table, not the stale readiness record, is authoritative.
  if (reg.handler == nullptr) return;
  reg.handler->on_io(events);
}

void EventLoop::drain_wakeup() {
  std::uint64_t buf = 0;
  // eventfd: one 8-byte read resets the counter. pipe: read until dry.
  while (::read(wake_read_fd_, &buf, sizeof buf) > 0) {
    if (wake_read_fd_ == wake_write_fd_) break;
  }
}

bool EventLoop::backend_add(int fd, std::uint32_t interest) {
#ifdef __linux__
  if (backend_ == Backend::epoll) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
#endif
  (void)interest;
  return true;  // poll backend: the registration table is the state
}

bool EventLoop::backend_modify(int fd, std::uint32_t interest) {
#ifdef __linux__
  if (backend_ == Backend::epoll) {
    epoll_event ev{};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  (void)fd;
  (void)interest;
  return true;
}

void EventLoop::backend_remove(int fd) {
#ifdef __linux__
  if (backend_ == Backend::epoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  (void)fd;
}

int EventLoop::backend_wait(int timeout_ms) {
#ifdef __linux__
  if (backend_ == Backend::epoll) {
    // Grow the ready buffer to the population so one wait can report every
    // ready fd (a 10k-connection burst drains in one iteration).
    if (epoll_scratch_.size() < nfds_) epoll_scratch_.resize(nfds_);
    const int n = ::epoll_wait(epoll_fd_, epoll_scratch_.data(),
                               static_cast<int>(epoll_scratch_.size()),
                               timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    now_ms_ = monotonic_ms();  // handlers see the post-wait clock
    for (int i = 0; i < n; ++i) {
      dispatch(epoll_scratch_[static_cast<std::size_t>(i)].data.fd,
               from_epoll(epoll_scratch_[static_cast<std::size_t>(i)].events));
    }
    return n;
  }
#endif
  if (poll_dirty_) {
    poll_scratch_.clear();
    poll_scratch_.reserve(nfds_);
    for (std::size_t fd = 0; fd < table_.size(); ++fd) {
      const Registration& reg = table_[fd];
      if (reg.interest == 0 && reg.handler == nullptr) continue;
      pollfd pfd{};
      pfd.fd = static_cast<int>(fd);
      pfd.events = to_poll(reg.interest);
      poll_scratch_.push_back(pfd);
    }
    poll_dirty_ = false;
  }
  const int n = ::poll(poll_scratch_.data(),
                       static_cast<nfds_t>(poll_scratch_.size()), timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  now_ms_ = monotonic_ms();  // handlers see the post-wait clock
  if (n == 0) return 0;
  for (const pollfd& pfd : poll_scratch_) {
    if (pfd.revents == 0) continue;
    dispatch(pfd.fd, from_poll(pfd.revents));
  }
  return n;
}

}  // namespace redundancy::net
