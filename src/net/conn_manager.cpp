#include "net/conn_manager.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "obs/obs.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace redundancy::net {

namespace {

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

constexpr std::size_t kReadChunk = 16 * 1024;

}  // namespace

ConnManager::ConnManager(EventLoop& loop, Options options)
    : loop_(loop), options_(options) {
  accepted_ = &obs::counter("gateway.accepted");
  closed_ = &obs::counter("gateway.closed");
  requests_ = &obs::counter("gateway.requests");
  responses_ = &obs::counter("gateway.responses");
  shed_conns_ = &obs::counter("gateway.shed_connections");
  shed_inflight_ = &obs::counter("gateway.shed_inflight");
  timeouts_idle_ = &obs::counter("gateway.timeouts_idle");
  timeouts_write_ = &obs::counter("gateway.timeouts_write");
  bad_requests_ = &obs::counter("gateway.bad_requests");
  orphan_responses_ = &obs::counter("gateway.orphan_responses");
  state_reading_ = &obs::counter("gateway.conn_reading");
  state_dispatched_ = &obs::counter("gateway.conn_dispatched");
  state_writing_ = &obs::counter("gateway.conn_writing");
  state_draining_ = &obs::counter("gateway.conn_draining");
  request_ns_ = &obs::histogram("gateway.request_ns");
}

ConnManager::~ConnManager() {
  close_all();
  stop_listening();
}

bool ConnManager::listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0 ||
      !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (!loop_.add(listen_fd_, kReadable, this)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void ConnManager::stop_listening() {
  if (listen_fd_ < 0) return;
  loop_.remove(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ConnManager::close_all() {
  // teardown() erases from conns_; drain by repeatedly taking the first.
  while (!conns_.empty()) teardown(*conns_.begin()->second);
}

void ConnManager::on_io(std::uint32_t events) {
  if ((events & kReadable) == 0) return;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: backlog drained (other errors: retry next wakeup)
    }
    if (conns_.size() >= options_.max_connections) {
      // Accept-then-close is the cheapest refusal: the peer sees an
      // immediate RST/EOF instead of hanging in the backlog.
      shed_conns_->add();
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof options_.sndbuf_bytes);
    }
    const std::uint64_t id = next_id_++;
    auto conn = std::make_unique<Conn>(this, fd, id);
    Conn& c = *conn;
    if (!loop_.add(fd, kReadable, &c)) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    accepted_->add();
    state_reading_->add();
    loop_.timers().arm(c.timer, loop_.now_ms(), options_.idle_timeout_ms);
  }
}

void ConnManager::conn_io(Conn& conn, std::uint32_t events) {
  if (events == 0) {  // timer fired
    on_timeout(conn);
    return;
  }
  if (events & kError) {
    teardown(conn);
    return;
  }
  if (events & kWritable) {
    const std::uint64_t id = conn.id;  // on_writable may destroy conn
    on_writable(conn);
    if (conns_.find(id) == conns_.end()) return;
  }
  if (events & (kReadable | kHangup)) on_readable(conn);
}

void ConnManager::on_readable(Conn& conn) {
  for (;;) {
    const std::size_t old_size = conn.in.size();
    conn.in.resize(old_size + kReadChunk);
    const ssize_t n = ::recv(conn.fd, conn.in.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      conn.in.resize(old_size + static_cast<std::size_t>(n));
      if (conn.state == ConnState::draining) conn.in.clear();  // discard
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    conn.in.resize(old_size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    teardown(conn);  // EOF or hard error
    return;
  }
  if (conn.state == ConnState::reading) try_parse(conn);
}

void ConnManager::try_parse(Conn& conn) {
  while (conn.state == ConnState::reading) {
    const http::ParseResult r =
        http::parse_request(conn.in, options_.max_request_bytes);
    switch (r.status) {
      case http::ParseStatus::incomplete:
        // Deliberately no timer refresh: the idle deadline covers the
        // *whole* request, so trickled bytes never extend it (slow loris).
        return;
      case http::ParseStatus::bad:
        bad_requests_->add();
        respond_now(conn, 400, "bad request\n");
        return;
      case http::ParseStatus::too_large:
        bad_requests_->add();
        respond_now(conn, 431, "request too large\n");
        return;
      case http::ParseStatus::ok:
        break;
    }
    requests_->add();
    if (inflight_ >= options_.max_inflight) {
      shed_inflight_->add();
      respond_now(conn, 503, "overloaded\n");
      return;
    }
    if (!handler_) {
      respond_now(conn, 500, "no handler\n");
      return;
    }
    conn.state = ConnState::dispatched;
    state_dispatched_->add();
    conn.close_after_write = !r.request.keep_alive;
    conn.dispatch_t0_ns = obs::now_ns();
    ++inflight_;
    loop_.timers().cancel(conn.timer);  // the handler owns its own latency
    loop_.modify(conn.fd, 0);           // backpressure: stop reading
    // Consume the request BEFORE the handler runs: an inline respond()
    // re-enters try_parse via resume_reading(), and must only ever see the
    // pipelined tail. swap keeps the parsed views (which point into the old
    // buffer) valid for the duration of the handler call.
    std::string request_bytes;
    request_bytes.swap(conn.in);
    conn.in.assign(request_bytes, r.consumed, std::string::npos);
    const std::uint64_t id = conn.id;  // an inline respond() may destroy conn
    handler_(id, r.request);
    // conn may now be gone or in any state (an inline handler may have
    // already responded — and even served pipelined follow-ups).
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    if (conn.state != ConnState::reading) return;
  }
}

void ConnManager::respond(std::uint64_t conn_id, http::Response response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second->state != ConnState::dispatched) {
    // The connection died (timeout/teardown) while its request was in
    // flight; the slot was already released by teardown().
    orphan_responses_->add();
    return;
  }
  Conn& conn = *it->second;
  --inflight_;
  request_ns_->record(obs::now_ns() - conn.dispatch_t0_ns);
  start_write(conn, response);
}

void ConnManager::respond_now(Conn& conn, int status, std::string body) {
  http::Response response;
  response.status = status;
  response.body = std::move(body);
  conn.close_after_write = true;
  start_write(conn, response);
}

void ConnManager::start_write(Conn& conn, const http::Response& response) {
  conn.out = http::response_head(response.status, response.content_type,
                                 response.body.size(),
                                 /*keep_alive=*/!conn.close_after_write);
  conn.out += response.body;
  conn.out_off = 0;
  conn.state = ConnState::writing;
  state_writing_->add();
  loop_.timers().arm(conn.timer, loop_.now_ms(), options_.write_timeout_ms);
  on_writable(conn);
}

void ConnManager::on_writable(Conn& conn) {
  if (conn.state != ConnState::writing) return;
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Peer not draining: wait for writability under a deadline.
      loop_.modify(conn.fd, kWritable);
      return;
    }
    teardown(conn);  // EPIPE/ECONNRESET: peer is gone
    return;
  }
  // Response fully flushed.
  responses_->add();
  conn.out.clear();
  conn.out_off = 0;
  if (conn.close_after_write) {
    start_drain(conn);
  } else {
    resume_reading(conn);
  }
}

void ConnManager::start_drain(Conn& conn) {
  conn.state = ConnState::draining;
  state_draining_->add();
  conn.in.clear();
  ::shutdown(conn.fd, SHUT_WR);
  loop_.modify(conn.fd, kReadable);
  loop_.timers().arm(conn.timer, loop_.now_ms(), options_.drain_timeout_ms);
}

void ConnManager::resume_reading(Conn& conn) {
  conn.state = ConnState::reading;
  state_reading_->add();
  conn.close_after_write = false;
  loop_.modify(conn.fd, kReadable);
  loop_.timers().arm(conn.timer, loop_.now_ms(), options_.idle_timeout_ms);
  // Pipelined bytes may already hold the next request.
  if (!conn.in.empty()) try_parse(conn);
}

void ConnManager::on_timeout(Conn& conn) {
  switch (conn.state) {
    case ConnState::reading:
      timeouts_idle_->add();
      respond_now(conn, 408, "request timeout\n");
      return;
    case ConnState::dispatched:
      return;  // no timer runs here; spurious fire after a state change
    case ConnState::writing:
      timeouts_write_->add();
      teardown(conn);
      return;
    case ConnState::draining:
      teardown(conn);
      return;
  }
}

void ConnManager::teardown(Conn& conn) {
  if (conn.state == ConnState::dispatched) {
    // The response for this request will arrive later and find no
    // connection; release the admission slot now.
    --inflight_;
  }
  loop_.remove(conn.fd);
  ::close(conn.fd);
  closed_->add();
  const std::uint64_t id = conn.id;
  conns_.erase(id);  // destroys conn (timer detaches itself)
}

}  // namespace redundancy::net
