#include "net/conn_manager.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "obs/obs.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace redundancy::net {

namespace {

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Accept one connection, already non-blocking + close-on-exec. accept4()
/// saves the two fcntl() round trips per connection where available.
int accept_nonblocking(int listen_fd) noexcept {
#if defined(__linux__) && defined(SOCK_NONBLOCK)
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
#else
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0 && !set_nonblocking(fd)) {
    ::close(fd);
    errno = EAGAIN;
    return -1;
  }
  return fd;
#endif
}

constexpr std::size_t kReadChunkMin = 4 * 1024;
constexpr std::size_t kReadChunkMax = 64 * 1024;
/// iovecs per sendmsg(); far below any IOV_MAX, plenty for a drain burst.
constexpr std::size_t kMaxIov = 64;
/// Provided buffers per reactor (completion mode). Buffers are held only
/// between a recv completion posting and its drain-time recycle, so the
/// pool bounds one drain batch, not the connection count.
constexpr std::uint32_t kProvidedBuffers = 256;

}  // namespace

ConnManager::ConnManager(EventLoop& loop, Options options)
    : loop_(loop), options_(std::move(options)) {
  const std::string& label = options_.metric_label;
  accepted_ = &obs::counter("gateway.accepted", label);
  closed_ = &obs::counter("gateway.closed", label);
  requests_ = &obs::counter("gateway.requests", label);
  responses_ = &obs::counter("gateway.responses", label);
  sends_ = &obs::counter("gateway.sends", label);
  shed_conns_ = &obs::counter("gateway.shed_connections", label);
  shed_inflight_ = &obs::counter("gateway.shed_inflight", label);
  timeouts_idle_ = &obs::counter("gateway.timeouts_idle", label);
  timeouts_write_ = &obs::counter("gateway.timeouts_write", label);
  bad_requests_ = &obs::counter("gateway.bad_requests", label);
  orphan_responses_ = &obs::counter("gateway.orphan_responses", label);
  state_reading_ = &obs::counter("gateway.conn_reading", label);
  state_dispatched_ = &obs::counter("gateway.conn_dispatched", label);
  state_writing_ = &obs::counter("gateway.conn_writing", label);
  state_draining_ = &obs::counter("gateway.conn_draining", label);
  request_ns_ = &obs::histogram("gateway.request_ns", label);
  if (options_.max_pipeline == 0) options_.max_pipeline = 1;
  // Claim the loop's completion sink. A second manager on the same uring
  // loop stays in readiness mode — the POLL_ADD emulation serves it — so
  // the one-sink contract never misroutes another manager's tokens.
  completion_ = loop_.uring_mode() && loop_.uring_sink() == nullptr;
  if (completion_) loop_.set_uring_sink(this);
}

ConnManager::~ConnManager() {
  close_all();
  stop_listening();
  if (completion_) {
    // Zombies hold buffers the kernel may still read (in-flight sendmsg
    // chains); drive the ring until their cancellations complete. The loop
    // must already be stopped — this runs submit+wait inline.
    int guard = 0;
    while (!zombies_.empty() && !loop_.running() && guard++ < 100) {
      loop_.uring_reap_blocking(10);
    }
    zombies_.clear();
    loop_.clear_uring_sink(this);
  }
}

bool ConnManager::reuseport_supported() noexcept {
#if defined(SO_REUSEPORT)
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  const bool ok =
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) == 0;
  ::close(fd);
  return ok;
#else
  return false;
#endif
}

bool ConnManager::listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (options_.reuseport) {
#if defined(SO_REUSEPORT)
    if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof one) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
#else
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
#endif
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0 ||
      !set_nonblocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (completion_) {
    // One multishot accept SQE replaces the accept4 drain loop: the kernel
    // streams a CQE per connection until told otherwise.
    if (!loop_.uring_setup_buffers(
            kProvidedBuffers,
            static_cast<std::uint32_t>(read_chunk_target())) ||
        !loop_.uring_accept(listen_fd_)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    accept_armed_ = true;
    return true;
  }
  if (!loop_.add(listen_fd_, kReadable, this)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

void ConnManager::stop_listening() {
  if (listen_fd_ < 0) return;
  if (completion_) {
    if (accept_armed_) {
      loop_.uring_cancel_accept(listen_fd_);
      accept_armed_ = false;
    }
  } else {
    loop_.remove(listen_fd_);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ConnManager::close_all() {
  // teardown() erases from conns_; drain by repeatedly taking the first.
  while (!conns_.empty()) teardown(*conns_.begin()->second);
}

void ConnManager::on_io(std::uint32_t events) {
  if ((events & kReadable) == 0) return;
  for (;;) {
    const int fd = accept_nonblocking(listen_fd_);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: backlog drained (other errors: retry next wakeup)
    }
    if (sink_) {
      sink_(fd);  // single-acceptor fallback: another loop adopts it
      continue;
    }
    adopt(fd);
  }
}

bool ConnManager::adopt(int fd) {
  if (conns_.size() >= options_.max_connections) {
    // Accept-then-close is the cheapest refusal: the peer sees an
    // immediate RST/EOF instead of hanging in the backlog.
    shed_conns_->add();
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (options_.sndbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                 sizeof options_.sndbuf_bytes);
  }
  const std::uint64_t id = next_id_++;
  auto conn = std::make_unique<Conn>(this, fd, id);
  Conn& c = *conn;
  if (completion_) {
    // Adopt-only managers (the single-acceptor fan-out's receiving end)
    // never ran listen(); register the buffer pool lazily.
    if (!loop_.uring_setup_buffers(
            kProvidedBuffers,
            static_cast<std::uint32_t>(read_chunk_target()))) {
      ::close(fd);
      return false;
    }
  } else if (!loop_.add(fd, kReadable, &c)) {
    ::close(fd);
    return false;
  }
  c.in.reserve(read_chunk_target());
  conns_.emplace(id, std::move(conn));
  accepted_->add();
  state_reading_->add();
  loop_.timers().arm(c.timer, loop_.now_ms(), options_.idle_timeout_ms);
  if (completion_) arm_recv(c);
  return true;
}

void ConnManager::conn_io(Conn& conn, std::uint32_t events) {
  if (events == 0) {  // timer fired
    on_timeout(conn);
    return;
  }
  if (events & kError) {
    teardown(conn);
    return;
  }
  if (events & kWritable) {
    const std::uint64_t id = conn.id;  // on_writable may destroy conn
    on_writable(conn);
    if (conns_.find(id) == conns_.end()) return;
  }
  if (events & (kReadable | kHangup)) on_readable(conn);
}

std::size_t ConnManager::read_chunk_target() const noexcept {
  // Power-of-two bucketing keeps the target stable while the decayed
  // high-watermark drifts, so the scratch buffer is not resized per event.
  std::size_t want = kReadChunkMin;
  while (want < in_hwm_ && want < kReadChunkMax) want <<= 1;
  return want;
}

void ConnManager::on_readable(Conn& conn) {
  const std::size_t chunk = read_chunk_target();
  if (read_scratch_.size() != chunk) read_scratch_.assign(chunk, '\0');
  for (;;) {
    // recv() into the shared scratch, append only the bytes that arrived:
    // the old resize(+16 KiB)-then-shrink pattern zero-filled the whole
    // chunk on every wakeup; this touches exactly what the kernel wrote.
    const ssize_t n = ::recv(conn.fd, read_scratch_.data(), chunk, 0);
    if (n > 0) {
      if (conn.state != ConnState::draining) {
        conn.in.append(read_scratch_.data(), static_cast<std::size_t>(n));
      }
      if (static_cast<std::size_t>(n) < chunk) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    teardown(conn);  // EOF or hard error
    return;
  }
  if (can_parse(conn)) try_parse(conn);
}

bool ConnManager::can_parse(const Conn& conn) const noexcept {
  if (conn.state == ConnState::draining || conn.no_more_requests) return false;
  if (conn.slots.size() >= options_.max_pipeline) return false;
  // Lockstep (max_pipeline == 1) also waits for the previous response to
  // leave the socket before parsing the next request — the historical
  // single-request-in-flight discipline the unit tests pin down.
  return options_.max_pipeline > 1 || conn.flushq.empty();
}

void ConnManager::try_parse(Conn& conn) {
  while (can_parse(conn)) {
    const http::ParseResult r =
        http::parse_request(conn.in, options_.max_request_bytes);
    switch (r.status) {
      case http::ParseStatus::incomplete:
        // Deliberately no timer refresh: the idle deadline covers the
        // *whole* request, so trickled bytes never extend it (slow loris).
        return;
      case http::ParseStatus::bad:
        bad_requests_->add();
        respond_now(conn, 400, "bad request\n");
        return;
      case http::ParseStatus::too_large:
        bad_requests_->add();
        respond_now(conn, 431, "request too large\n");
        return;
      case http::ParseStatus::ok:
        break;
    }
    requests_->add();
    in_hwm_ = std::max(r.consumed, in_hwm_ - in_hwm_ / 16);
    if (inflight_ >= options_.max_inflight) {
      shed_inflight_->add();
      respond_now(conn, 503, "overloaded\n");
      return;
    }
    if (!handler_) {
      respond_now(conn, 500, "no handler\n");
      return;
    }
    Slot slot;
    slot.seq = conn.next_seq++;
    slot.close_after = !r.request.keep_alive;
    slot.dispatch_t0_ns = obs::now_ns();
    if (slot.close_after) conn.no_more_requests = true;
    conn.slots.push_back(std::move(slot));
    ++inflight_;
    update_state(conn);     // reading → dispatched: cancel the idle timer
    update_interest(conn);  // pipeline full → stop reading (backpressure)
    // Consume the request BEFORE the handler runs: an inline respond()
    // re-enters try_parse via the flush path, and must only ever see the
    // pipelined tail. swap keeps the parsed views (which point into the old
    // buffer) valid for the duration of the handler call.
    std::string request_bytes;
    request_bytes.swap(conn.in);
    conn.in.assign(request_bytes, r.consumed, std::string::npos);
    const std::uint64_t id = conn.id;  // an inline respond() may destroy conn
    dispatching_seq_ = conn.slots.back().seq;
    handler_(id, r.request);
    dispatching_seq_ = 0;
    // conn may now be gone or in any state (an inline handler may have
    // already responded — and even served pipelined follow-ups).
    if (conns_.find(id) == conns_.end()) return;
  }
}

void ConnManager::respond(std::uint64_t conn_id, http::Response response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    orphan_responses_->add();
    return;
  }
  // Oldest unanswered slot — exact with max_pipeline == 1 (there is at most
  // one), first-come order otherwise.
  for (const Slot& slot : it->second->slots) {
    if (!slot.answered) {
      respond(conn_id, slot.seq, std::move(response));
      return;
    }
  }
  orphan_responses_->add();
}

void ConnManager::respond(std::uint64_t conn_id, std::uint64_t seq,
                          http::Response response) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    // The connection died (timeout/teardown) while its request was in
    // flight; the slot was already released by teardown().
    orphan_responses_->add();
    return;
  }
  Conn& conn = *it->second;
  Slot* slot = nullptr;
  for (Slot& s : conn.slots) {
    if (s.seq == seq && !s.answered) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) {
    orphan_responses_->add();
    return;
  }
  --inflight_;
  request_ns_->record(obs::now_ns() - slot->dispatch_t0_ns);
  slot->answered = true;
  slot->head = http::response_head(response.status, response.content_type,
                                   response.body.size(),
                                   /*keep_alive=*/!slot->close_after);
  slot->body = std::move(response.body);
  promote(conn);
  update_state(conn);
  flush_or_defer(conn);
}

void ConnManager::respond_now(Conn& conn, int status, std::string body) {
  // A locally-generated response (400/408/431/503) still takes a pipeline
  // slot: it must leave the socket AFTER every response already owed for
  // earlier pipelined requests. It closes the connection, so no further
  // requests are parsed behind it.
  Slot slot;
  slot.seq = conn.next_seq++;
  slot.answered = true;
  slot.close_after = true;
  slot.head = http::response_head(status, "text/plain; charset=utf-8",
                                  body.size(), /*keep_alive=*/false);
  slot.body = std::move(body);
  conn.slots.push_back(std::move(slot));
  conn.no_more_requests = true;
  promote(conn);
  update_state(conn);
  flush_or_defer(conn);
}

void ConnManager::promote(Conn& conn) {
  while (!conn.slots.empty() && conn.slots.front().answered) {
    Slot& slot = conn.slots.front();
    const bool close_after = slot.close_after;
    if (slot.body.empty()) {
      conn.flushq.push_back({std::move(slot.head), true, close_after});
    } else {
      conn.flushq.push_back({std::move(slot.head), false, false});
      conn.flushq.push_back({std::move(slot.body), true, close_after});
    }
    conn.slots.pop_front();
  }
}

void ConnManager::flush_or_defer(Conn& conn) {
  if (conn.flushq.empty()) return;
  if (batching_) {
    if (!conn.in_dirty) {
      conn.in_dirty = true;
      dirty_.push_back(conn.id);
    }
    return;
  }
  flush_conn(conn);
}

void ConnManager::begin_batch() { batching_ = true; }

void ConnManager::flush_batch() {
  batching_ = false;
  // Index loop, id re-lookup each step: a flush may tear its connection
  // down (or, via an inline parse, dirty another one mid-iteration).
  for (std::size_t i = 0; i < dirty_.size(); ++i) {
    auto it = conns_.find(dirty_[i]);
    if (it == conns_.end()) continue;
    it->second->in_dirty = false;
    flush_conn(*it->second);
  }
  dirty_.clear();
}

void ConnManager::flush_conn(Conn& conn) {
  if (completion_) {
    submit_send(conn);
    return;
  }
  while (!conn.flushq.empty()) {
    // Vectored flush: one sendmsg() covers every queued head/body chunk (up
    // to kMaxIov) — pipelined responses and head+body pairs coalesce into
    // one syscall instead of one send() per concatenated response.
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    std::size_t skip = conn.flush_off;
    for (const Chunk& chunk : conn.flushq) {
      if (niov == kMaxIov) break;
      if (skip >= chunk.data.size()) {  // only the front chunk can be partial
        skip -= chunk.data.size();
        continue;
      }
      iov[niov].iov_base = const_cast<char*>(chunk.data.data()) + skip;
      iov[niov].iov_len = chunk.data.size() - skip;
      skip = 0;
      ++niov;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      sends_->add();
      advance_flush(conn, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Peer not draining: wait for writability under the write deadline.
      conn.want_write = true;
      update_interest(conn);
      return;
    }
    teardown(conn);  // EPIPE/ECONNRESET: peer is gone
    return;
  }
  conn.want_write = false;
  if (conn.close_now) {
    start_drain(conn);
    return;
  }
  update_state(conn);
  update_interest(conn);
  // Pipelined bytes may already hold the next request.
  if (!conn.in.empty() && can_parse(conn)) try_parse(conn);
}

void ConnManager::advance_flush(Conn& conn, std::size_t n) {
  conn.flush_off += n;
  while (!conn.flushq.empty() &&
         conn.flush_off >= conn.flushq.front().data.size()) {
    const Chunk& chunk = conn.flushq.front();
    conn.flush_off -= chunk.data.size();
    if (chunk.end_of_response) {
      responses_->add();
      if (chunk.close_after) conn.close_now = true;
    }
    conn.flushq.pop_front();
  }
}

void ConnManager::on_writable(Conn& conn) {
  if (conn.flushq.empty()) return;
  flush_conn(conn);
}

void ConnManager::update_state(Conn& conn) {
  if (conn.state == ConnState::draining) return;  // absorbing; teardown only
  ConnState next;
  if (!conn.flushq.empty()) {
    next = ConnState::writing;
  } else if (!conn.slots.empty()) {
    next = ConnState::dispatched;
  } else {
    next = ConnState::reading;
  }
  if (next == conn.state) return;
  conn.state = next;
  switch (next) {
    case ConnState::reading:
      state_reading_->add();
      loop_.timers().arm(conn.timer, loop_.now_ms(), options_.idle_timeout_ms);
      break;
    case ConnState::dispatched:
      state_dispatched_->add();
      loop_.timers().cancel(conn.timer);  // the handler owns its own latency
      break;
    case ConnState::writing:
      state_writing_->add();
      loop_.timers().arm(conn.timer, loop_.now_ms(),
                         options_.write_timeout_ms);
      break;
    case ConnState::draining:
      break;  // unreachable: start_drain owns this transition
  }
}

void ConnManager::update_interest(Conn& conn) {
  if (completion_) {
    // Completion mode has no interest set: "read interest" is simply
    // whether a recv SQE is armed. Write readiness never needs watching —
    // the kernel completes the send chain when the peer drains.
    const bool want_read =
        conn.state == ConnState::draining ||
        (!conn.no_more_requests && conn.slots.size() < options_.max_pipeline &&
         (options_.max_pipeline > 1 || conn.flushq.empty()));
    if (want_read && !conn.pending_recv) arm_recv(conn);
    return;
  }
  std::uint32_t want = 0;
  if (conn.state == ConnState::draining) {
    want = kReadable;  // watch for the peer's EOF, discard everything else
  } else {
    if (conn.want_write) want |= kWritable;
    if (!conn.no_more_requests &&
        conn.slots.size() < options_.max_pipeline &&
        (options_.max_pipeline > 1 || conn.flushq.empty())) {
      want |= kReadable;
    }
  }
  if (want == conn.interest) return;  // skip the epoll_ctl syscall
  loop_.modify(conn.fd, want);
  conn.interest = want;
}

void ConnManager::start_drain(Conn& conn) {
  conn.state = ConnState::draining;
  state_draining_->add();
  conn.in.clear();
  ::shutdown(conn.fd, SHUT_WR);
  if (completion_) {
    if (!conn.pending_recv) arm_recv(conn);  // watch for the peer's EOF
  } else {
    loop_.modify(conn.fd, kReadable);
    conn.interest = kReadable;
  }
  loop_.timers().arm(conn.timer, loop_.now_ms(), options_.drain_timeout_ms);
}

void ConnManager::on_timeout(Conn& conn) {
  switch (conn.state) {
    case ConnState::reading:
      timeouts_idle_->add();
      respond_now(conn, 408, "request timeout\n");
      return;
    case ConnState::dispatched:
      return;  // no timer runs here; spurious fire after a state change
    case ConnState::writing:
      timeouts_write_->add();
      teardown(conn);
      return;
    case ConnState::draining:
      teardown(conn);
      return;
  }
}

void ConnManager::teardown(Conn& conn) {
  // Responses for still-unanswered slots will arrive later and find no
  // connection; release their admission slots now.
  for (const Slot& slot : conn.slots) {
    if (!slot.answered) --inflight_;
  }
  closed_->add();
  const std::uint64_t id = conn.id;
  if (completion_) {
    loop_.timers().cancel(conn.timer);
    if (conn.pending_recv) loop_.uring_cancel_recv(id);
    if (conn.pending_sends > 0) loop_.uring_cancel_sends(id);
    // Close immediately — in-flight ops hold their own kernel file refs,
    // and the cancellations above target user_data, never the fd.
    ::close(conn.fd);
    conn.fd = -1;
    auto it = conns_.find(id);
    if (conn.pending_recv || conn.pending_sends > 0) {
      // Flushq strings are still referenced by kernel-side iovecs; the
      // zombie keeps them alive until the last completion arrives.
      zombies_.emplace(id, std::move(it->second));
    }
    conns_.erase(it);
    return;
  }
  loop_.remove(conn.fd);
  ::close(conn.fd);
  conns_.erase(id);  // destroys conn (timer detaches itself)
}

void ConnManager::arm_recv(Conn& conn) {
  if (conn.pending_recv) return;
  if (loop_.uring_recv(conn.fd, conn.id)) conn.pending_recv = true;
  // Prep failure (SQ exhausted even after a flush) leaves the connection
  // deaf; the armed idle/drain deadline reclaims it.
}

void ConnManager::submit_send(Conn& conn) {
  if (conn.pending_sends > 0 || conn.flushq.empty()) return;
  send_iov_.clear();
  std::size_t skip = conn.flush_off;
  for (const Chunk& chunk : conn.flushq) {
    if (skip >= chunk.data.size()) {  // only the front chunk can be partial
      skip -= chunk.data.size();
      continue;
    }
    iovec iov{};
    iov.iov_base = const_cast<char*>(chunk.data.data()) + skip;
    iov.iov_len = chunk.data.size() - skip;
    skip = 0;
    send_iov_.push_back(iov);
  }
  const std::size_t queued =
      loop_.uring_sendmsg(conn.fd, send_iov_.data(), send_iov_.size(),
                          conn.id);
  if (queued == 0) {
    teardown(conn);
    return;
  }
  conn.pending_sends = static_cast<std::uint32_t>(queued);
  sends_->add(queued);
}

void ConnManager::maybe_reap(std::uint64_t id) {
  auto it = zombies_.find(id);
  if (it == zombies_.end()) return;
  const Conn& conn = *it->second;
  if (!conn.pending_recv && conn.pending_sends == 0) zombies_.erase(it);
}

void ConnManager::on_uring_accept(int res, bool more) {
  if (!more) accept_armed_ = false;
  if (res >= 0) {
    if (sink_) {
      sink_(res);  // single-acceptor fallback: another loop adopts it
    } else {
      adopt(res);
    }
  }
  // -ECANCELED: stop_listening() retired the chain. Any other error (e.g.
  // EMFILE) ended the multishot stream; re-arm below while still bound.
  if (!accept_armed_ && listen_fd_ >= 0 && res != -ECANCELED) {
    accept_armed_ = loop_.uring_accept(listen_fd_);
  }
}

void ConnManager::on_uring_recv(std::uint64_t token, int res,
                                const char* data, std::size_t len) {
  auto it = conns_.find(token);
  if (it == conns_.end()) {
    auto z = zombies_.find(token);
    if (z != zombies_.end()) {
      z->second->pending_recv = false;
      maybe_reap(token);
    }
    return;
  }
  Conn& conn = *it->second;
  conn.pending_recv = false;
  if (res > 0) {
    if (conn.state != ConnState::draining && data != nullptr) {
      // Deliberately no timer refresh (slow loris — see on_readable).
      conn.in.append(data, len);
    }
    const std::uint64_t id = conn.id;
    if (can_parse(conn)) try_parse(conn);
    auto it2 = conns_.find(id);  // try_parse may have destroyed conn
    if (it2 != conns_.end()) update_interest(*it2->second);
    return;
  }
  if (res == 0) {  // EOF — for a draining conn this is the awaited goodbye
    teardown(conn);
    return;
  }
  if (res == -ENOBUFS) {
    // Provided-buffer pool momentarily dry; every drained completion
    // recycles one, so re-arm once this drain batch ends.
    recv_starved_.push_back(conn.id);
    return;
  }
  if (res == -ECANCELED || res == -EINTR || res == -EAGAIN) {
    update_interest(conn);  // transient: re-arm if still wanted
    return;
  }
  teardown(conn);  // ECONNRESET and friends
}

void ConnManager::on_uring_send(std::uint64_t token, int res) {
  auto it = conns_.find(token);
  if (it == conns_.end()) {
    auto z = zombies_.find(token);
    if (z != zombies_.end()) {
      if (z->second->pending_sends > 0) --z->second->pending_sends;
      maybe_reap(token);
    }
    return;
  }
  Conn& conn = *it->second;
  if (conn.pending_sends > 0) --conn.pending_sends;
  if (res > 0) {
    advance_flush(conn, static_cast<std::size_t>(res));
  } else if (res != -ECANCELED && res != -EINTR && res != -EAGAIN) {
    conn.send_error = true;  // EPIPE/ECONNRESET: peer is gone
  }
  if (conn.pending_sends > 0) return;  // wait out the rest of the chain
  if (conn.send_error) {
    teardown(conn);
    return;
  }
  if (!conn.flushq.empty()) {
    // Short write (or a chain cut by -ECANCELED links): resubmit what the
    // wire has not taken yet, still strictly in order.
    submit_send(conn);
    return;
  }
  conn.want_write = false;
  if (conn.close_now) {
    start_drain(conn);
    return;
  }
  update_state(conn);
  update_interest(conn);
  // Pipelined bytes may already hold the next request.
  if (!conn.in.empty() && can_parse(conn)) try_parse(conn);
}

void ConnManager::on_uring_drain_end() {
  for (const std::uint64_t id : recv_starved_) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    update_interest(*it->second);  // re-arm now that buffers recycled
  }
  recv_starved_.clear();
}

}  // namespace redundancy::net
