#include "net/gateway.hpp"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "core/health.hpp"
#include "core/parallel_evaluation.hpp"
#include "core/sequential_alternatives.hpp"
#include "core/voters.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "util/signals.hpp"

namespace redundancy::net {

bool Gateway::start() {
  if (running_.load(std::memory_order_acquire)) return false;
  util::ignore_sigpipe();
  install_builtin_routes();

  loop_ = std::make_unique<EventLoop>(options_.loop);
  if (!loop_->ok()) return false;
  manager_ = std::make_unique<ConnManager>(*loop_, options_.conn);
  batch_ = std::make_unique<util::BatchRunner>(options_.pool);

  manager_->set_request_handler(
      [this](std::uint64_t conn_id, const http::Request& request) {
        on_request(conn_id, request);
      });
  loop_->set_wake_handler([this] { drain_completions(); });
  loop_->set_cycle_handler([this] {
    // One submit_batch per loop iteration, covering every request parsed
    // during this iteration's dispatch phase.
    if (!batch_->empty()) batch_->dispatch();
    // A completion pushed between the last drain and the epoll_wait entry
    // would wait a full idle tick; the queue check is one relaxed load.
    if (!completions_.empty()) drain_completions();
  });

  if (!manager_->listen()) {
    manager_.reset();
    loop_.reset();
    return false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop_->run(); });
  return true;
}

void Gateway::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  loop_->stop();
  thread_.join();
  // The loop is dead: no thread touches the sockets any more, so teardown
  // can run from here. In-flight jobs still execute on pool workers and
  // push completions; wait for the last one, then free the orphans. A loop
  // that died mid-iteration may leave undispatched tasks in the batch —
  // flush them so every created job settles and the inflight wait ends.
  if (!batch_->empty()) batch_->dispatch();
  manager_->stop_listening();
  manager_->close_all();
  while (jobs_inflight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (CompletionNode* node = completions_.drain(); node != nullptr;) {
    CompletionNode* next = node->next;
    delete static_cast<Job*>(node);
    node = next;
  }
  manager_.reset();
  batch_.reset();
  loop_.reset();
}

void Gateway::on_request(std::uint64_t conn_id, const http::Request& request) {
  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    manager_->respond(conn_id,
                      {404, "text/plain; charset=utf-8", "not found\n"});
    return;
  }
  auto* job = new Job;
  job->conn_id = conn_id;
  job->request.method = std::string{request.method};
  job->request.path = std::string{request.path};
  job->request.query = std::string{request.query};
  job->request.body = std::string{request.body};
  job->handler = &it->second;
  job->t0_ns = obs::now_ns();
  if (obs::flight_enabled()) {
    // Arrival breadcrumb: a crash dump shows what was *in flight*, not
    // only what completed. a=0 marks arrival (completion carries status).
    obs::FlightRecorder::instance().record(obs::FlightKind::gateway,
                                           job->request.path, 0, 0, 0, true);
  }
  jobs_inflight_.fetch_add(1, std::memory_order_relaxed);
  batch_->add([this, job] { run_job(job); });
}

void Gateway::run_job(Job* job) noexcept {
  try {
    job->response = (*job->handler)(job->request);
  } catch (...) {
    job->response = {500, "text/plain; charset=utf-8", "handler error\n"};
  }
  // Publish (and wake) before the inflight decrement: once jobs_inflight_
  // hits zero during stop(), every job is reachable from the queue and no
  // worker touches loop_ again.
  const bool was_empty = completions_.push(job);
  if (was_empty) loop_->wake();
  jobs_inflight_.fetch_sub(1, std::memory_order_release);
}

void Gateway::drain_completions() {
  for (CompletionNode* node = completions_.drain(); node != nullptr;) {
    CompletionNode* next = node->next;
    auto* job = static_cast<Job*>(node);
    const int status = job->response.status;
    const std::uint64_t latency_ns = obs::now_ns() - job->t0_ns;
    if (options_.slo != nullptr) {
      // The request class is the exact route path; 5xx is an availability
      // error regardless of latency, anything else is judged against the
      // class's latency target.
      options_.slo->observe(job->request.path, latency_ns, status < 500);
    }
    if (obs::flight_enabled()) {
      obs::FlightRecorder::instance().record(
          obs::FlightKind::gateway, job->request.path, 0,
          static_cast<std::uint64_t>(status), latency_ns, status < 500);
    }
    manager_->respond(job->conn_id, std::move(job->response));
    delete job;
    node = next;
  }
}

void Gateway::install_builtin_routes() {
  if (routes_.find("/metrics") == routes_.end()) {
    add_route("/metrics", [](const Request&) -> http::Response {
      obs::Recorder::instance().flush();
      return {200, "text/plain; version=0.0.4; charset=utf-8",
              obs::MetricsRegistry::instance().render_prometheus_text()};
    });
  }
  if (routes_.find("/healthz") == routes_.end()) {
    core::HealthTracker* health = options_.health;
    add_route("/healthz", [health](const Request&) -> http::Response {
      if (health == nullptr) {
        return {200, "text/plain; charset=utf-8", "ok\n"};
      }
      obs::Recorder::instance().flush();
      const core::HealthState state = health->overall();
      return {state == core::HealthState::failing ? 503 : 200,
              "text/plain; charset=utf-8", health->healthz_text()};
    });
  }
  if (options_.slo != nullptr && routes_.find("/slo") == routes_.end()) {
    obs::SloTracker* slo = options_.slo;
    add_route("/slo", [slo](const Request&) -> http::Response {
      obs::Recorder::instance().flush();
      return {200, "application/x-ndjson", slo->snapshot_jsonl(obs::now_ns())};
    });
  }
  if (routes_.find("/debug/flight") == routes_.end()) {
    add_route("/debug/flight", [](const Request&) -> http::Response {
      if (!obs::flight_enabled()) {
        return {404, "text/plain; charset=utf-8",
                "flight recorder disabled\n"};
      }
      obs::Recorder::instance().flush();
      return {200, "application/x-ndjson",
              obs::FlightRecorder::instance().dump_jsonl()};
    });
  }
}

namespace {

/// The demo serving surface: each route owns its pattern instance behind a
/// mutex (pattern metrics are owner-thread by contract — the fan-out each
/// run() performs on the pool is still parallel).
struct DemoRoutes {
  DemoRoutes()
      : fast(fast_alternatives(), core::accept_all<std::uint64_t,
                                                   std::uint64_t>()),
        vote(vote_variants(),
             core::majority_voter<std::uint64_t>(),
             core::Concurrency::threaded) {
    fast.set_obs_label("gateway_fast");
    core::SequentialAlternatives<std::uint64_t,
                                 std::uint64_t>::Options::Hedge hedge;
    hedge.enabled = true;
    hedge.fallback_budget_ns = 2'000'000;  // 2ms until the histogram warms
    fast.set_hedge(hedge);
    fast.enable_cache();
    vote.set_obs_label("gateway_vote");
  }

  /// The demo computation both routes serve: a short iterated-hash chain
  /// (cheap, deterministic, un-optimizable-away).
  static std::uint64_t chain(std::uint64_t x, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 29;
    }
    return x;
  }

  static std::vector<core::Variant<std::uint64_t, std::uint64_t>>
  fast_alternatives() {
    std::vector<core::Variant<std::uint64_t, std::uint64_t>> alts;
    alts.push_back(core::make_variant<std::uint64_t, std::uint64_t>(
        "chain/primary", [](const std::uint64_t& x) {
          return core::Result<std::uint64_t>{chain(x, 64)};
        }));
    alts.push_back(core::make_variant<std::uint64_t, std::uint64_t>(
        "chain/alternate", [](const std::uint64_t& x) {
          return core::Result<std::uint64_t>{chain(x, 64)};
        }));
    return alts;
  }

  static std::vector<core::Variant<std::uint64_t, std::uint64_t>>
  vote_variants() {
    std::vector<core::Variant<std::uint64_t, std::uint64_t>> vars;
    for (const char* name : {"chain/v1", "chain/v2", "chain/v3"}) {
      vars.push_back(core::make_variant<std::uint64_t, std::uint64_t>(
          name, [](const std::uint64_t& x) {
            return core::Result<std::uint64_t>{chain(x, 64)};
          }));
    }
    return vars;
  }

  std::mutex fast_m;
  std::mutex vote_m;
  core::SequentialAlternatives<std::uint64_t, std::uint64_t> fast;
  core::ParallelEvaluation<std::uint64_t, std::uint64_t> vote;
};

}  // namespace

void install_demo_routes(Gateway& gateway) {
  auto demo = std::make_shared<DemoRoutes>();

  gateway.add_route(
      "/fast", [demo](const Gateway::Request& req) -> http::Response {
        const std::uint64_t x = http::query_param(req.query, "x").value_or(0);
        core::Result<std::uint64_t> r = [&] {
          std::lock_guard lock(demo->fast_m);
          return demo->fast.run(x);
        }();
        if (!r.has_value()) {
          return {500, "text/plain; charset=utf-8", "unrecovered\n"};
        }
        return {200, "text/plain; charset=utf-8",
                std::to_string(r.value()) + "\n"};
      });

  gateway.add_route(
      "/vote", [demo](const Gateway::Request& req) -> http::Response {
        const std::uint64_t x = http::query_param(req.query, "x").value_or(0);
        core::Result<std::uint64_t> r = [&] {
          std::lock_guard lock(demo->vote_m);
          return demo->vote.run(x);
        }();
        if (!r.has_value()) {
          return {500, "text/plain; charset=utf-8", "no quorum\n"};
        }
        return {200, "text/plain; charset=utf-8",
                std::to_string(r.value()) + "\n"};
      });

  gateway.add_route("/echo",
                    [](const Gateway::Request& req) -> http::Response {
                      std::string body = req.body;
                      if (body.empty()) {
                        body = std::to_string(
                                   http::query_param(req.query, "x")
                                       .value_or(0)) +
                               "\n";
                      }
                      return {200, "text/plain; charset=utf-8",
                              std::move(body)};
                    });

  gateway.add_route(
      "/big", [](const Gateway::Request& req) -> http::Response {
        const std::uint64_t n =
            http::query_param(req.query, "n").value_or(1 << 16);
        constexpr std::uint64_t kMax = 64u << 20;
        return {200, "application/octet-stream",
                std::string(static_cast<std::size_t>(n > kMax ? kMax : n),
                            'x')};
      });
}

}  // namespace redundancy::net
