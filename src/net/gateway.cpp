#include "net/gateway.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#include "core/health.hpp"
#include "core/parallel_evaluation.hpp"
#include "core/sequential_alternatives.hpp"
#include "core/voters.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "util/signals.hpp"
#include "util/topology.hpp"

namespace redundancy::net {

namespace {

/// Reactor count when Options::loops is 0: REDUNDANCY_GATEWAY_LOOPS if set
/// (strict parse: decimal digits only, value in 1..64 — anything else is
/// loudly rejected, matching REDUNDANCY_THREADS), else min(cores/2, 8)
/// with a floor of 1 — half the cores front the engine, the other half
/// runs it.
std::size_t loops_from_env_or_cores() noexcept {
  const std::size_t fallback = std::min<std::size_t>(
      std::max<std::size_t>(std::thread::hardware_concurrency() / 2, 1), 8);
  const char* env = std::getenv("REDUNDANCY_GATEWAY_LOOPS");
  if (env == nullptr) return fallback;
  std::size_t value = 0;
  bool valid = *env != '\0';
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      valid = false;
      break;
    }
    value = value * 10 + static_cast<std::size_t>(*p - '0');
    if (value > 64) {
      valid = false;
      break;
    }
  }
  if (!valid || value == 0) {
    std::fprintf(stderr,
                 "[redundancy] REDUNDANCY_GATEWAY_LOOPS='%s' is not a valid "
                 "loop count (expected an integer in 1..64); using %zu "
                 "loops\n",
                 env, fallback);
    return fallback;
  }
  return value;
}

}  // namespace

bool Gateway::start() {
  if (running_.load(std::memory_order_acquire)) return false;
  util::ignore_sigpipe();
  install_builtin_routes();

  std::size_t n = options_.loops != 0
                      ? std::min<std::size_t>(options_.loops, 64)
                      : loops_from_env_or_cores();
  if (n == 0) n = 1;
  // Every reactor gets its own listener when the kernel can share the port;
  // otherwise reactor 0 accepts alone and fans fds out (drain_adoptions).
  const bool shard_listeners =
      n > 1 && !options_.single_acceptor && ConnManager::reuseport_supported();

  reactors_.clear();
  round_robin_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->index = i;
    EventLoop::Options loop_opts = options_.loop;
    // Shard the loop-level submission metrics like the ConnManager's
    // gateway.* families (empty label = the single-loop series).
    if (n > 1) loop_opts.metric_label = "loop=" + std::to_string(i);
    reactor->loop = std::make_unique<EventLoop>(std::move(loop_opts));
    if (!reactor->loop->ok()) {
      reactors_.clear();
      return false;
    }
    ConnManager::Options conn = options_.conn;
    conn.reuseport = shard_listeners;
    if (n > 1) conn.metric_label = "loop=" + std::to_string(i);
    if (i > 0) conn.port = reactors_.front()->manager->port();
    reactor->manager = std::make_unique<ConnManager>(*reactor->loop, conn);
    reactor->batch = std::make_unique<util::BatchRunner>(options_.pool);
    // Route jobs take route-level locks (the demo routes serialize their
    // pattern instances): a pattern's helping wait must never run one
    // nested above a frame that already holds such a lock, so gateway
    // batches are off-limits to help-stealing (workers only).
    reactor->batch->set_helpable(false);

    Reactor* rp = reactor.get();
    reactor->manager->set_request_handler(
        [this, rp](std::uint64_t conn_id, const http::Request& request) {
          on_request(*rp, conn_id, request);
        });
    reactor->loop->set_wake_handler([this, rp] {
      drain_adoptions(*rp);
      drain_completions(*rp);
    });
    reactor->loop->set_cycle_handler([this, rp] {
      // One submit_batch per loop iteration, covering every request parsed
      // during this iteration's dispatch phase.
      if (!rp->batch->empty()) rp->batch->dispatch();
      // A completion pushed between the last drain and the epoll_wait entry
      // would wait a full idle tick; the queue check is one relaxed load.
      if (!rp->completions.empty()) drain_completions(*rp);
    });

    if ((shard_listeners || i == 0) && !reactor->manager->listen()) {
      reactors_.clear();
      return false;
    }
    reactors_.push_back(std::move(reactor));
  }

  if (!shard_listeners && n > 1) {
    reactors_.front()->manager->set_accept_sink([this](int fd) {
      const std::size_t i =
          round_robin_.fetch_add(1, std::memory_order_relaxed) %
          reactors_.size();
      Reactor& target = *reactors_[i];
      if (i == 0) {  // the acceptor IS reactor 0's loop thread
        target.manager->adopt(fd);
        return;
      }
      {
        std::lock_guard lock(target.adopt_mutex);
        target.adopt_queue.push_back(fd);
      }
      target.loop->wake();
    });
  }

  running_.store(true, std::memory_order_release);
  for (auto& reactor : reactors_) {
    Reactor* rp = reactor.get();
    const bool pin = options_.pin_reactors && n > 1;
    rp->thread = std::thread([rp, pin] {
      if (pin) {
        const std::size_t cpus = std::thread::hardware_concurrency();
        if (cpus > 1) {
          // Cluster-first spread: each front-door loop lands in its own LLC
          // domain, near the pool workers it feeds. Best-effort only.
          util::pin_current_thread_to_cpu(util::reactor_cpu_slot(
              rp->index, cpus, util::topology().cluster_size));
        }
      }
      rp->loop->run();
    });
  }
  return true;
}

void Gateway::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& reactor : reactors_) reactor->loop->stop();
  for (auto& reactor : reactors_) reactor->thread.join();
  // The loops are dead: no thread touches the sockets any more, so teardown
  // can run from here. In-flight jobs still execute on pool workers and
  // push completions; wait for the last one, then free the orphans. A loop
  // that died mid-iteration may leave undispatched tasks in its batch —
  // flush them so every created job settles and the inflight wait ends.
  for (auto& reactor : reactors_) {
    if (!reactor->batch->empty()) reactor->batch->dispatch();
    reactor->manager->stop_listening();
    reactor->manager->close_all();
  }
  while (jobs_inflight() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& reactor : reactors_) {
    for (CompletionNode* node = reactor->completions.drain();
         node != nullptr;) {
      CompletionNode* next = node->next;
      delete static_cast<Job*>(node);
      node = next;
    }
    std::lock_guard lock(reactor->adopt_mutex);
    for (const int fd : reactor->adopt_queue) ::close(fd);
    reactor->adopt_queue.clear();
  }
  // Keep the (joined, drained) reactors so loops() and jobs_inflight(loop)
  // stay answerable after a clean stop — the e2e drill asserts per-loop
  // zeros post-shutdown. start() clears the vector before rebuilding.
}

void Gateway::on_request(Reactor& reactor, std::uint64_t conn_id,
                         const http::Request& request) {
  const auto it = routes_.find(request.path);
  if (it == routes_.end()) {
    // Inline 404, addressed by pipeline slot: with pipelining, earlier
    // requests of this connection may still be on workers, and "oldest
    // unanswered" would be the wrong one.
    reactor.manager->respond(
        conn_id, reactor.manager->dispatching_seq(),
        {404, "text/plain; charset=utf-8", "not found\n"});
    return;
  }
  auto* job = new Job;
  job->conn_id = conn_id;
  job->seq = reactor.manager->dispatching_seq();
  job->reactor = &reactor;
  job->request.method = std::string{request.method};
  job->request.path = std::string{request.path};
  job->request.query = std::string{request.query};
  job->request.body = std::string{request.body};
  job->handler = &it->second;
  job->t0_ns = obs::now_ns();
  if (obs::flight_enabled()) {
    // Arrival breadcrumb: a crash dump shows what was *in flight*, not
    // only what completed. a=0 marks arrival (completion carries status).
    obs::FlightRecorder::instance().record(obs::FlightKind::gateway,
                                           job->request.path, 0, 0, 0, true);
  }
  reactor.jobs_inflight.fetch_add(1, std::memory_order_relaxed);
  reactor.batch->add([this, job] { run_job(job); });
}

void Gateway::run_job(Job* job) noexcept {
  try {
    job->response = (*job->handler)(job->request);
  } catch (...) {
    job->response = {500, "text/plain; charset=utf-8", "handler error\n"};
  }
  // Publish (and wake the OWNING reactor only) before the inflight
  // decrement: once jobs_inflight hits zero during stop(), every job is
  // reachable from its queue and no worker touches a loop again.
  Reactor* reactor = job->reactor;
  const bool was_empty = reactor->completions.push(job);
  if (was_empty) reactor->loop->wake();
  reactor->jobs_inflight.fetch_sub(1, std::memory_order_release);
}

void Gateway::drain_completions(Reactor& reactor) {
  CompletionNode* node = reactor.completions.drain();
  if (node == nullptr) return;
  // Batch the whole drain: every response this burst delivers to the same
  // connection leaves in one sendmsg() at flush_batch().
  reactor.manager->begin_batch();
  while (node != nullptr) {
    CompletionNode* next = node->next;
    auto* job = static_cast<Job*>(node);
    const int status = job->response.status;
    const std::uint64_t latency_ns = obs::now_ns() - job->t0_ns;
    if (options_.slo != nullptr) {
      // The request class is the exact route path; 5xx is an availability
      // error regardless of latency, anything else is judged against the
      // class's latency target.
      options_.slo->observe(job->request.path, latency_ns, status < 500);
    }
    if (obs::flight_enabled()) {
      obs::FlightRecorder::instance().record(
          obs::FlightKind::gateway, job->request.path, 0,
          static_cast<std::uint64_t>(status), latency_ns, status < 500);
    }
    reactor.manager->respond(job->conn_id, job->seq,
                             std::move(job->response));
    delete job;
    node = next;
  }
  reactor.manager->flush_batch();
}

void Gateway::drain_adoptions(Reactor& reactor) {
  std::vector<int> fds;
  {
    std::lock_guard lock(reactor.adopt_mutex);
    if (reactor.adopt_queue.empty()) return;
    fds.swap(reactor.adopt_queue);
  }
  for (const int fd : fds) reactor.manager->adopt(fd);
}

http::Response Gateway::serve_cached(
    OpsCache& cache, const std::function<http::Response()>& render) {
  const std::uint64_t ttl_ns = options_.ops_cache_ttl_ms * 1'000'000ULL;
  const std::uint64_t now = obs::now_ns();
  std::lock_guard lock(cache.mutex);
  if (ttl_ns != 0 && cache.rendered_at_ns != 0 &&
      now >= cache.rendered_at_ns && now - cache.rendered_at_ns < ttl_ns) {
    return cache.response;
  }
  cache.response = render();
  cache.rendered_at_ns = now;
  obs::counter("gateway.ops_renders").add();
  return cache.response;
}

void Gateway::install_builtin_routes() {
  // The ops routes serve a short-TTL cached render: a scrape storm (or a
  // scraper polling faster than the TTL) costs at most one registry walk
  // per TTL, so scraping can never stall request I/O behind it.
  if (routes_.find("/metrics") == routes_.end()) {
    add_route("/metrics", [this](const Request&) -> http::Response {
      return serve_cached(metrics_cache_, [] {
        obs::Recorder::instance().flush();
        return http::Response{
            200, "text/plain; version=0.0.4; charset=utf-8",
            obs::MetricsRegistry::instance().render_prometheus_text()};
      });
    });
  }
  if (routes_.find("/healthz") == routes_.end()) {
    core::HealthTracker* health = options_.health;
    add_route("/healthz", [this, health](const Request&) -> http::Response {
      return serve_cached(healthz_cache_, [health] {
        if (health == nullptr) {
          return http::Response{200, "text/plain; charset=utf-8", "ok\n"};
        }
        obs::Recorder::instance().flush();
        const core::HealthState state = health->overall();
        return http::Response{state == core::HealthState::failing ? 503 : 200,
                              "text/plain; charset=utf-8",
                              health->healthz_text()};
      });
    });
  }
  if (options_.slo != nullptr && routes_.find("/slo") == routes_.end()) {
    obs::SloTracker* slo = options_.slo;
    add_route("/slo", [this, slo](const Request&) -> http::Response {
      return serve_cached(slo_cache_, [slo] {
        obs::Recorder::instance().flush();
        return http::Response{200, "application/x-ndjson",
                              slo->snapshot_jsonl(obs::now_ns())};
      });
    });
  }
  if (routes_.find("/debug/flight") == routes_.end()) {
    add_route("/debug/flight", [](const Request&) -> http::Response {
      if (!obs::flight_enabled()) {
        return {404, "text/plain; charset=utf-8",
                "flight recorder disabled\n"};
      }
      obs::Recorder::instance().flush();
      return {200, "application/x-ndjson",
              obs::FlightRecorder::instance().dump_jsonl()};
    });
  }
}

namespace {

/// The demo serving surface: each route owns its pattern instance behind a
/// mutex (pattern metrics are owner-thread by contract — the fan-out each
/// run() performs on the pool is still parallel).
struct DemoRoutes {
  DemoRoutes()
      : fast(fast_alternatives(), core::accept_all<std::uint64_t,
                                                   std::uint64_t>()),
        vote(vote_variants(),
             core::majority_voter<std::uint64_t>(),
             core::Concurrency::threaded) {
    fast.set_obs_label("gateway_fast");
    core::SequentialAlternatives<std::uint64_t,
                                 std::uint64_t>::Options::Hedge hedge;
    hedge.enabled = true;
    hedge.fallback_budget_ns = 2'000'000;  // 2ms until the histogram warms
    fast.set_hedge(hedge);
    fast.enable_cache();
    vote.set_obs_label("gateway_vote");
  }

  /// The demo computation both routes serve: a short iterated-hash chain
  /// (cheap, deterministic, un-optimizable-away).
  static std::uint64_t chain(std::uint64_t x, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 29;
    }
    return x;
  }

  static std::vector<core::Variant<std::uint64_t, std::uint64_t>>
  fast_alternatives() {
    std::vector<core::Variant<std::uint64_t, std::uint64_t>> alts;
    alts.push_back(core::make_variant<std::uint64_t, std::uint64_t>(
        "chain/primary", [](const std::uint64_t& x) {
          return core::Result<std::uint64_t>{chain(x, 64)};
        }));
    alts.push_back(core::make_variant<std::uint64_t, std::uint64_t>(
        "chain/alternate", [](const std::uint64_t& x) {
          return core::Result<std::uint64_t>{chain(x, 64)};
        }));
    return alts;
  }

  static std::vector<core::Variant<std::uint64_t, std::uint64_t>>
  vote_variants() {
    std::vector<core::Variant<std::uint64_t, std::uint64_t>> vars;
    for (const char* name : {"chain/v1", "chain/v2", "chain/v3"}) {
      vars.push_back(core::make_variant<std::uint64_t, std::uint64_t>(
          name, [](const std::uint64_t& x) {
            return core::Result<std::uint64_t>{chain(x, 64)};
          }));
    }
    return vars;
  }

  std::mutex fast_m;
  std::mutex vote_m;
  core::SequentialAlternatives<std::uint64_t, std::uint64_t> fast;
  core::ParallelEvaluation<std::uint64_t, std::uint64_t> vote;
};

}  // namespace

void install_demo_routes(Gateway& gateway) {
  auto demo = std::make_shared<DemoRoutes>();

  gateway.add_route(
      "/fast", [demo](const Gateway::Request& req) -> http::Response {
        const std::uint64_t x = http::query_param(req.query, "x").value_or(0);
        core::Result<std::uint64_t> r = [&] {
          std::lock_guard lock(demo->fast_m);
          return demo->fast.run(x);
        }();
        if (!r.has_value()) {
          return {500, "text/plain; charset=utf-8", "unrecovered\n"};
        }
        return {200, "text/plain; charset=utf-8",
                std::to_string(r.value()) + "\n"};
      });

  gateway.add_route(
      "/vote", [demo](const Gateway::Request& req) -> http::Response {
        const std::uint64_t x = http::query_param(req.query, "x").value_or(0);
        core::Result<std::uint64_t> r = [&] {
          std::lock_guard lock(demo->vote_m);
          return demo->vote.run(x);
        }();
        if (!r.has_value()) {
          return {500, "text/plain; charset=utf-8", "no quorum\n"};
        }
        return {200, "text/plain; charset=utf-8",
                std::to_string(r.value()) + "\n"};
      });

  gateway.add_route("/echo",
                    [](const Gateway::Request& req) -> http::Response {
                      std::string body = req.body;
                      if (body.empty()) {
                        body = std::to_string(
                                   http::query_param(req.query, "x")
                                       .value_or(0)) +
                               "\n";
                      }
                      return {200, "text/plain; charset=utf-8",
                              std::move(body)};
                    });

  gateway.add_route(
      "/big", [](const Gateway::Request& req) -> http::Response {
        const std::uint64_t n =
            http::query_param(req.query, "n").value_or(1 << 16);
        constexpr std::uint64_t kMax = 64u << 20;
        return {200, "application/octet-stream",
                std::string(static_cast<std::size_t>(n > kMax ? kMax : n),
                            'x')};
      });
}

}  // namespace redundancy::net
