// net::CompletionQueue — the lock-free hand-back channel from pool workers
// to the event loop.
//
// The gateway's serving path crosses threads twice: the loop thread batches
// parsed requests into the engine (ThreadPool::submit_batch), and each
// finished task must hand its response back to the loop, which owns every
// socket. The return channel is an intrusive MPSC Treiber stack: producers
// (pool workers, any number, any interleaving) push with one CAS loop and
// no allocation; the single consumer (the loop) takes the whole backlog
// with one exchange and reverses it into FIFO order. push() reports
// whether the stack was empty so the producer knows to write the loop's
// wakeup fd — one eventfd write per *burst* of completions, not per
// completion (the same one-wake-per-batch discipline submit_batch applies
// on the way in).
//
// Nodes are owned by the producer until push() returns, then by the
// consumer after drain() — the same linear hand-off the pool's TaskNodes
// use, so the payload needs no synchronization beyond the release/acquire
// pair on head_.
#pragma once

#include <atomic>

namespace redundancy::net {

/// Base class for anything flowing through a CompletionQueue. Embed-first
/// (CRTP-style static_cast on the consumer side).
struct CompletionNode {
  CompletionNode* next = nullptr;
};

class CompletionQueue {
 public:
  CompletionQueue() = default;
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Push one node (producer side, any thread). Returns true when the
  /// queue was empty — the caller should wake the consumer; false means a
  /// wakeup is already owed by an earlier producer.
  bool push(CompletionNode* node) noexcept {
    CompletionNode* head = head_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!head_.compare_exchange_weak(head, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    return head == nullptr;
  }

  /// Take the whole backlog (consumer side, single thread), in FIFO push
  /// order. Returns nullptr when empty; otherwise a next-linked chain the
  /// caller now owns.
  [[nodiscard]] CompletionNode* drain() noexcept {
    CompletionNode* head = head_.exchange(nullptr, std::memory_order_acquire);
    // The stack pops newest-first; reverse once so completions are handled
    // in the order the workers produced them.
    CompletionNode* fifo = nullptr;
    while (head != nullptr) {
      CompletionNode* next = head->next;
      head->next = fifo;
      fifo = head;
      head = next;
    }
    return fifo;
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<CompletionNode*> head_{nullptr};
};

}  // namespace redundancy::net
