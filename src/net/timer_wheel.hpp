// net::TimerWheel — hashed timer wheel for connection deadlines.
//
// A gateway holding 10k+ connections arms and re-arms a timeout on every
// state transition of every connection (idle while reading, a write
// deadline while flushing, a drain deadline while half-closed). A sorted
// structure (std::map / priority_queue) would pay O(log n) per re-arm and
// allocate nodes; the wheel pays O(1) per arm/cancel with zero allocation:
// timers are *intrusive* doubly-linked nodes owned by their connection,
// hashed into a power-of-two array of slots by deadline tick. advance()
// walks only the slots the clock has passed; an entry whose deadline is
// still in the future (a far-out timer that wrapped the wheel) is left in
// place and re-examined on a later lap.
//
// Single-threaded by contract: the wheel lives inside an EventLoop and is
// touched only from the loop thread, so there is no lock anywhere. Firing
// detaches the timer *before* invoking the callback, so a callback may
// re-arm its own timer (the idle-timeout refresh pattern) or destroy the
// owning connection (timers detach themselves on destruction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace redundancy::net {

class TimerWheel {
 public:
  /// Intrusive timer node. Embed one per deadline the owner needs; the
  /// destructor detaches it, so a Timer member makes connection teardown
  /// safe without explicit cancel calls. `owner` is an opaque cookie the
  /// fire callback uses to find the enclosing object.
  class Timer {
   public:
    Timer() = default;
    explicit Timer(void* owner) : owner_(owner) {}
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;
    ~Timer() { detach(); }

    [[nodiscard]] bool armed() const noexcept { return slot_ != kUnlinked; }
    [[nodiscard]] void* owner() const noexcept { return owner_; }
    void set_owner(void* owner) noexcept { owner_ = owner; }
    /// Absolute deadline (ms on the wheel's clock); meaningful while armed.
    [[nodiscard]] std::uint64_t deadline_ms() const noexcept {
      return deadline_ms_;
    }

   private:
    friend class TimerWheel;
    static constexpr std::size_t kUnlinked = static_cast<std::size_t>(-1);

    /// Unlink and keep the owning wheel's armed count exact — called from
    /// arm/cancel/fire and from the destructor of a still-armed timer.
    void detach() noexcept {
      if (slot_ == kUnlinked) return;
      if (prev_ != nullptr) prev_->next_ = next_;
      if (next_ != nullptr) next_->prev_ = prev_;
      if (head_slot_ != nullptr && *head_slot_ == this) *head_slot_ = next_;
      prev_ = next_ = nullptr;
      head_slot_ = nullptr;
      slot_ = kUnlinked;
      if (wheel_ != nullptr) --wheel_->armed_;
      wheel_ = nullptr;
    }

    void* owner_ = nullptr;
    TimerWheel* wheel_ = nullptr;  ///< non-null while armed
    Timer* prev_ = nullptr;
    Timer* next_ = nullptr;
    Timer** head_slot_ = nullptr;  ///< the slot head this node is linked in
    std::size_t slot_ = kUnlinked;
    std::uint64_t deadline_ms_ = 0;
  };

  /// `slots` is rounded up to a power of two; `tick_ms` is the granularity
  /// deadlines are quantized to (a timer can fire up to one tick late).
  explicit TimerWheel(std::size_t slots = 512, std::uint64_t tick_ms = 10)
      : tick_ms_(tick_ms == 0 ? 1 : tick_ms) {
    std::size_t n = 1;
    while (n < slots && n < (std::size_t{1} << 20)) n <<= 1;
    mask_ = n - 1;
    slots_ = std::make_unique<Timer*[]>(n);
    for (std::size_t i = 0; i <= mask_; ++i) slots_[i] = nullptr;
  }

  [[nodiscard]] std::size_t slot_count() const noexcept { return mask_ + 1; }
  [[nodiscard]] std::uint64_t tick_ms() const noexcept { return tick_ms_; }

  /// Arm (or re-arm) `timer` to fire `delay_ms` after `now_ms`. O(1).
  void arm(Timer& timer, std::uint64_t now_ms, std::uint64_t delay_ms) {
    timer.detach();
    timer.deadline_ms_ = now_ms + delay_ms;
    const std::size_t slot =
        static_cast<std::size_t>(timer.deadline_ms_ / tick_ms_) & mask_;
    timer.wheel_ = this;
    timer.slot_ = slot;
    timer.head_slot_ = &slots_[slot];
    timer.next_ = slots_[slot];
    timer.prev_ = nullptr;
    if (timer.next_ != nullptr) timer.next_->prev_ = &timer;
    slots_[slot] = &timer;
    if (armed_ == 0 || timer.deadline_ms_ < next_deadline_hint_) {
      next_deadline_hint_ = timer.deadline_ms_;
    }
    ++armed_;
  }

  void cancel(Timer& timer) noexcept { timer.detach(); }

  [[nodiscard]] std::size_t armed() const noexcept { return armed_; }

  /// Milliseconds until the earliest plausible deadline (for the poll/epoll
  /// timeout); `idle_ms` when nothing is armed. The hint is conservative —
  /// it may be earlier than the true next deadline after cancels, never
  /// later, so the loop can only wake early, not miss a timer.
  [[nodiscard]] int next_timeout_ms(std::uint64_t now_ms,
                                    int idle_ms) const noexcept {
    if (armed_ == 0) return idle_ms;
    if (next_deadline_hint_ <= now_ms) return 0;
    const std::uint64_t delta = next_deadline_hint_ - now_ms;
    const std::uint64_t capped =
        delta > static_cast<std::uint64_t>(idle_ms)
            ? static_cast<std::uint64_t>(idle_ms)
            : delta;
    return static_cast<int>(capped);
  }

  /// Fire every timer whose deadline has passed. `fn(Timer&)` is invoked
  /// after the timer is detached, so it may re-arm or destroy it. Walks
  /// only the slots between the previous advance and `now_ms`.
  template <typename Fn>
  void advance(std::uint64_t now_ms, Fn&& fn) {
    if (armed_ == 0) {
      last_tick_ = now_ms / tick_ms_;
      return;
    }
    const std::uint64_t now_tick = now_ms / tick_ms_;
    // First advance (or a clock far ahead of the wheel span): sweep every
    // slot once instead of walking millions of empty ticks.
    std::uint64_t from = last_tick_;
    if (now_tick - from > mask_) from = now_tick - mask_ - 1;
    for (std::uint64_t tick = from; tick <= now_tick; ++tick) {
      Timer* entry = slots_[static_cast<std::size_t>(tick) & mask_];
      while (entry != nullptr) {
        Timer* next = entry->next_;
        if (entry->deadline_ms_ <= now_ms) {
          entry->detach();
          fn(*entry);
          // fn may have mutated this slot (re-arm lands elsewhere or at the
          // head); `next` was captured first, and a node re-armed into this
          // same slot carries a future deadline, so the walk stays safe.
        }
        entry = next;
      }
    }
    last_tick_ = now_tick;
    next_deadline_hint_ = now_ms + tick_ms_;  // earliest a survivor can fire
  }

 private:
  std::unique_ptr<Timer*[]> slots_;
  std::size_t mask_ = 0;
  std::uint64_t tick_ms_;
  std::uint64_t last_tick_ = 0;
  std::size_t armed_ = 0;
  std::uint64_t next_deadline_hint_ = 0;
};

}  // namespace redundancy::net
