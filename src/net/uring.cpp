#include "net/uring.hpp"

#ifdef __linux__

#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace redundancy::net {

namespace {

// ---------------------------------------------------------------------------
// io_uring UAPI mirror (<linux/io_uring.h>); the kernel ABI is frozen, so
// carrying the definitions keeps the build independent of header vintage.
// ---------------------------------------------------------------------------

#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif
#ifndef __NR_io_uring_register
#define __NR_io_uring_register 427
#endif

struct io_sqring_offsets {
  std::uint32_t head;
  std::uint32_t tail;
  std::uint32_t ring_mask;
  std::uint32_t ring_entries;
  std::uint32_t flags;
  std::uint32_t dropped;
  std::uint32_t array;
  std::uint32_t resv1;
  std::uint64_t user_addr;
};

struct io_cqring_offsets {
  std::uint32_t head;
  std::uint32_t tail;
  std::uint32_t ring_mask;
  std::uint32_t ring_entries;
  std::uint32_t overflow;
  std::uint32_t cqes;
  std::uint32_t flags;
  std::uint32_t resv1;
  std::uint64_t user_addr;
};

struct io_uring_params {
  std::uint32_t sq_entries;
  std::uint32_t cq_entries;
  std::uint32_t flags;
  std::uint32_t sq_thread_cpu;
  std::uint32_t sq_thread_idle;
  std::uint32_t features;
  std::uint32_t wq_fd;
  std::uint32_t resv[3];
  io_sqring_offsets sq_off;
  io_cqring_offsets cq_off;
};

struct io_uring_sqe {
  std::uint8_t opcode;
  std::uint8_t flags;
  std::uint16_t ioprio;
  std::int32_t fd;
  std::uint64_t off;        // also addr2
  std::uint64_t addr;
  std::uint32_t len;
  std::uint32_t op_flags;   // msg_flags / accept_flags / poll32 / cancel
  std::uint64_t user_data;
  std::uint16_t buf_index;  // also buf_group
  std::uint16_t personality;
  std::int32_t splice_fd_in;
  std::uint64_t addr3;
  std::uint64_t pad2;
};
static_assert(sizeof(io_uring_sqe) == 64, "SQE ABI mismatch");

struct io_uring_cqe {
  std::uint64_t user_data;
  std::int32_t res;
  std::uint32_t flags;
};
static_assert(sizeof(io_uring_cqe) == 16, "CQE ABI mismatch");

struct io_uring_getevents_arg {
  std::uint64_t sigmask;
  std::uint32_t sigmask_sz;
  std::uint32_t pad;
  std::uint64_t ts;
};

struct io_uring_probe_op {
  std::uint8_t op;
  std::uint8_t resv;
  std::uint16_t flags;
  std::uint32_t resv2;
};

struct io_uring_probe {
  std::uint8_t last_op;
  std::uint8_t ops_len;
  std::uint16_t resv;
  std::uint32_t resv2[3];
  io_uring_probe_op ops[256];
};

struct io_uring_buf {
  std::uint64_t addr;
  std::uint32_t len;
  std::uint16_t bid;
  std::uint16_t resv;  // bufs[0].resv doubles as the ring tail
};

struct io_uring_buf_reg {
  std::uint64_t ring_addr;
  std::uint32_t ring_entries;
  std::uint16_t bgid;
  std::uint16_t flags;
  std::uint64_t resv[3];
};

// Opcodes this backend issues.
constexpr std::uint8_t kOpPollAdd = 6;
constexpr std::uint8_t kOpSendmsg = 9;
constexpr std::uint8_t kOpAccept = 13;
constexpr std::uint8_t kOpAsyncCancel = 14;
constexpr std::uint8_t kOpRecv = 27;

// SQE flag bits.
constexpr std::uint8_t kSqeIoLink = 1u << 2;        // IOSQE_IO_LINK
constexpr std::uint8_t kSqeBufferSelect = 1u << 5;  // IOSQE_BUFFER_SELECT

// ioprio bits.
constexpr std::uint16_t kAcceptMultishot = 1u << 0;  // IORING_ACCEPT_MULTISHOT

// cancel flags.
constexpr std::uint32_t kCancelAll = 1u << 0;  // IORING_ASYNC_CANCEL_ALL

// enter flags.
constexpr unsigned kEnterGetevents = 1u << 0;
constexpr unsigned kEnterExtArg = 1u << 3;

// features.
constexpr std::uint32_t kFeatSingleMmap = 1u << 0;
constexpr std::uint32_t kFeatNodrop = 1u << 1;
constexpr std::uint32_t kFeatExtArg = 1u << 8;

// mmap offsets.
constexpr off_t kOffSqRing = 0;
constexpr off_t kOffCqRing = 0x8000000;
constexpr off_t kOffSqes = 0x10000000;

// register opcodes.
constexpr unsigned kRegisterProbe = 8;
constexpr unsigned kRegisterPbufRing = 22;

constexpr unsigned kOpSupported = 1u << 0;  // IO_URING_OP_SUPPORTED

std::uint32_t load_acquire(const std::uint32_t* p) noexcept {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

void store_release(std::uint32_t* p, std::uint32_t v) noexcept {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

Uring::~Uring() { teardown(); }

void Uring::teardown() noexcept {
  // Closing the ring fd cancels and reaps every in-flight request before
  // the kernel releases the ring, so unmapping afterwards is safe.
  if (ring_fd_ >= 0) ::close(ring_fd_);
  ring_fd_ = -1;
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_sz_);
  if (!single_mmap_ && cq_ring_ != nullptr) ::munmap(cq_ring_, cq_ring_sz_);
  if (sqes_mem_ != nullptr) ::munmap(sqes_mem_, sqes_sz_);
  if (buf_ring_ != nullptr) ::munmap(buf_ring_, buf_ring_sz_);
  if (buf_base_ != nullptr) ::munmap(buf_base_, buf_mem_sz_);
  sq_ring_ = cq_ring_ = sqes_mem_ = buf_ring_ = nullptr;
  buf_base_ = nullptr;
}

bool Uring::init(unsigned entries) {
  io_uring_params params{};
  const long fd =
      ::syscall(__NR_io_uring_setup, entries, &params);
  if (fd < 0) return false;
  ring_fd_ = static_cast<int>(fd);
  features_ = params.features;
  // The wait timeout rides io_uring_enter via EXT_ARG; NODROP guarantees a
  // CQ burst beyond the ring is buffered, not lost. Both are required.
  if ((features_ & kFeatExtArg) == 0 || (features_ & kFeatNodrop) == 0) {
    teardown();
    return false;
  }

  sq_ring_sz_ = params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
  cq_ring_sz_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  single_mmap_ = (features_ & kFeatSingleMmap) != 0;
  if (single_mmap_ && cq_ring_sz_ > sq_ring_sz_) sq_ring_sz_ = cq_ring_sz_;

  sq_ring_ = ::mmap(nullptr, sq_ring_sz_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, kOffSqRing);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    teardown();
    return false;
  }
  if (single_mmap_) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_sz_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, kOffCqRing);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      teardown();
      return false;
    }
  }
  sqes_sz_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_mem_ = ::mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, kOffSqes);
  if (sqes_mem_ == MAP_FAILED) {
    sqes_mem_ = nullptr;
    teardown();
    return false;
  }

  auto* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<std::uint32_t*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<std::uint32_t*>(sq + params.sq_off.tail);
  sq_mask_ =
      *reinterpret_cast<std::uint32_t*>(sq + params.sq_off.ring_mask);
  sq_entries_ = params.sq_entries;
  sq_array_ = reinterpret_cast<std::uint32_t*>(sq + params.sq_off.array);
  auto* cq = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<std::uint32_t*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<std::uint32_t*>(cq + params.cq_off.tail);
  cq_mask_ =
      *reinterpret_cast<std::uint32_t*>(cq + params.cq_off.ring_mask);
  cqes_ = cq + params.cq_off.cqes;
  local_tail_ = *sq_tail_;
  return true;
}

int Uring::enter(unsigned to_submit, unsigned min_complete, unsigned flags,
                 void* arg, std::size_t argsz) noexcept {
  ++stat_enters_;
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd_, to_submit,
                                    min_complete, flags, arg, argsz));
}

void* Uring::get_sqe() noexcept {
  if (!ok()) return nullptr;
  if (local_tail_ - load_acquire(sq_head_) >= sq_entries_) {
    // SQ full mid-preparation: flush what is queued so the batch keeps
    // growing. One extra enter per 256 SQEs, counted like any other.
    if (!submit() ||
        local_tail_ - load_acquire(sq_head_) >= sq_entries_) {
      return nullptr;
    }
  }
  const std::uint32_t idx = local_tail_ & sq_mask_;
  auto* sqe = static_cast<io_uring_sqe*>(sqes_mem_) + idx;
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array_[idx] = idx;
  ++local_tail_;
  ++pending_;
  last_sqe_ = sqe;
  return sqe;
}

bool Uring::prep_poll_add(int fd, std::uint32_t poll_mask,
                          std::uint64_t user_data) {
  auto* sqe = static_cast<io_uring_sqe*>(get_sqe());
  if (sqe == nullptr) return false;
  sqe->opcode = kOpPollAdd;
  sqe->fd = fd;
  sqe->op_flags = poll_mask;  // native-endian on LE targets
  sqe->user_data = user_data;
  return true;
}

bool Uring::prep_accept_multishot(int fd, std::uint64_t user_data) {
  auto* sqe = static_cast<io_uring_sqe*>(get_sqe());
  if (sqe == nullptr) return false;
  sqe->opcode = kOpAccept;
  sqe->fd = fd;
  sqe->ioprio = kAcceptMultishot;
  sqe->op_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;  // accept4-style flags
  sqe->user_data = user_data;
  return true;
}

bool Uring::prep_recv_select(int fd, std::uint64_t user_data) {
  auto* sqe = static_cast<io_uring_sqe*>(get_sqe());
  if (sqe == nullptr) return false;
  sqe->opcode = kOpRecv;
  sqe->fd = fd;
  sqe->len = 0;  // len 0 + BUFFER_SELECT: cap at the provided buffer's size
  sqe->flags = kSqeBufferSelect;
  sqe->buf_index = 0;  // buffer group 0
  sqe->user_data = user_data;
  return true;
}

bool Uring::prep_sendmsg(int fd, const ::msghdr* msg, std::uint64_t user_data,
                         bool link) {
  auto* sqe = static_cast<io_uring_sqe*>(get_sqe());
  if (sqe == nullptr) return false;
  sqe->opcode = kOpSendmsg;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(msg);
  sqe->op_flags = MSG_NOSIGNAL;
  if (link) sqe->flags = kSqeIoLink;
  sqe->user_data = user_data;
  return true;
}

bool Uring::prep_cancel(std::uint64_t target, std::uint64_t user_data) {
  auto* sqe = static_cast<io_uring_sqe*>(get_sqe());
  if (sqe == nullptr) return false;
  sqe->opcode = kOpAsyncCancel;
  sqe->fd = -1;
  sqe->addr = target;
  sqe->op_flags = kCancelAll;
  sqe->user_data = user_data;
  return true;
}

void Uring::clear_link_on_last() {
  if (last_sqe_ != nullptr) {
    static_cast<io_uring_sqe*>(last_sqe_)->flags &=
        static_cast<std::uint8_t>(~kSqeIoLink);
  }
}

bool Uring::submit() {
  if (!ok()) return false;
  store_release(sq_tail_, local_tail_);
  if (pending_ == 0) return true;
  const int ret = enter(pending_, 0, 0, nullptr, 0);
  if (ret < 0) {
    return errno == EINTR || errno == EAGAIN || errno == EBUSY;
  }
  stat_sqes_ += static_cast<unsigned>(ret);
  ++stat_batches_;
  pending_ -= static_cast<unsigned>(ret) < pending_
                  ? static_cast<unsigned>(ret)
                  : pending_;
  return true;
}

bool Uring::submit_and_wait(int timeout_ms) {
  if (!ok()) return false;
  store_release(sq_tail_, local_tail_);
  timespec ts{};
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1'000'000L;
  io_uring_getevents_arg arg{};
  arg.ts = reinterpret_cast<std::uint64_t>(&ts);
  const unsigned to_submit = pending_;
  const int ret = enter(to_submit, 1, kEnterGetevents | kEnterExtArg, &arg,
                        sizeof arg);
  if (ret < 0) {
    // ETIME: wait timed out (nothing submitted, or it would be positive).
    // EINTR: signal. EBUSY/EAGAIN: CQ pressure — drain and retry later.
    return errno == ETIME || errno == EINTR || errno == EAGAIN ||
           errno == EBUSY;
  }
  if (ret > 0) {
    stat_sqes_ += static_cast<unsigned>(ret);
    ++stat_batches_;
    pending_ -= static_cast<unsigned>(ret) < pending_
                    ? static_cast<unsigned>(ret)
                    : pending_;
  }
  return true;
}

std::uint32_t Uring::sq_space_left() const noexcept {
  if (!ok()) return 0;
  return sq_entries_ - (local_tail_ - load_acquire(sq_head_));
}

bool Uring::peek_cqe(Cqe* out) noexcept {
  if (!ok()) return false;
  const std::uint32_t head = *cq_head_;
  if (head == load_acquire(cq_tail_)) return false;
  const auto* cqe =
      static_cast<const io_uring_cqe*>(cqes_) + (head & cq_mask_);
  out->user_data = cqe->user_data;
  out->res = cqe->res;
  out->flags = cqe->flags;
  store_release(cq_head_, head + 1);
  return true;
}

bool Uring::setup_buffer_ring(std::uint32_t count, std::uint32_t size) {
  if (!ok()) return false;
  if (buffers_ready()) return true;
  std::uint32_t entries = 1;
  while (entries < count) entries <<= 1;
  buf_ring_sz_ = entries * sizeof(io_uring_buf);
  buf_ring_ = ::mmap(nullptr, buf_ring_sz_, PROT_READ | PROT_WRITE,
                     MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (buf_ring_ == MAP_FAILED) {
    buf_ring_ = nullptr;
    return false;
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(buf_ring_);
  reg.ring_entries = entries;
  reg.bgid = 0;
  if (::syscall(__NR_io_uring_register, ring_fd_, kRegisterPbufRing, &reg,
                1) < 0) {
    ::munmap(buf_ring_, buf_ring_sz_);
    buf_ring_ = nullptr;
    return false;
  }
  buf_mem_sz_ = std::size_t{entries} * size;
  buf_base_ = static_cast<char*>(::mmap(nullptr, buf_mem_sz_,
                                        PROT_READ | PROT_WRITE,
                                        MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
  if (buf_base_ == MAP_FAILED) {
    buf_base_ = nullptr;
    return false;
  }
  buf_count_ = entries;
  buf_size_ = size;
  buf_mask_ = entries - 1;
  buf_tail_ = 0;
  for (std::uint32_t i = 0; i < entries; ++i) recycle_buffer(i);
  return true;
}

void Uring::recycle_buffer(std::uint32_t bid) noexcept {
  auto* bufs = static_cast<io_uring_buf*>(buf_ring_);
  io_uring_buf& slot = bufs[buf_tail_ & buf_mask_];
  // Only addr/len/bid: bufs[0].resv aliases the ring tail.
  slot.addr = reinterpret_cast<std::uint64_t>(buf_base_ +
                                              std::size_t{bid} * buf_size_);
  slot.len = buf_size_;
  slot.bid = static_cast<std::uint16_t>(bid);
  ++buf_tail_;
  // Publish: the tail lives in bufs[0].resv (UAPI union layout).
  __atomic_store_n(&bufs[0].resv, buf_tail_, __ATOMIC_RELEASE);
}

bool Uring::supported() noexcept {
  static const bool cached = [] {
    Uring probe_ring;
    if (!probe_ring.init(8)) return false;
    auto probe = static_cast<io_uring_probe*>(
        ::mmap(nullptr, sizeof(io_uring_probe), PROT_READ | PROT_WRITE,
               MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
    if (probe == MAP_FAILED) return false;
    std::memset(probe, 0, sizeof(io_uring_probe));
    const bool probed =
        ::syscall(__NR_io_uring_register, probe_ring.ring_fd_, kRegisterProbe,
                  probe, 256) == 0;
    auto op_ok = [&](std::uint8_t op) {
      return probed && op <= probe->last_op &&
             (probe->ops[op].flags & kOpSupported) != 0;
    };
    const bool ops_ok = op_ok(kOpPollAdd) && op_ok(kOpSendmsg) &&
                        op_ok(kOpAccept) && op_ok(kOpAsyncCancel) &&
                        op_ok(kOpRecv);
    ::munmap(probe, sizeof(io_uring_probe));
    if (!ops_ok) return false;
    // A provided-buffer ring registering cleanly implies 5.19+, which also
    // guarantees multishot accept and file-ref-safe cancel-by-user_data.
    return probe_ring.setup_buffer_ring(8, 4096);
  }();
  return cached;
}

}  // namespace redundancy::net

#endif  // __linux__
