// Blocking loopback HTTP client helpers shared by the net:: tests, the
// examples, and the gateway load generator: a raw POSIX-socket client so
// what is observed is the exact wire behaviour a real peer sees (including
// EOFs, resets, and partial writes). Deliberately synchronous and simple —
// this is the measurement/driver side, not the serving side.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace redundancy::net::loopback {

/// "ip:port" of the fd's peer, for error messages ("?" when getpeername
/// fails — e.g. the fd was never connected).
inline std::string peer_address(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "?";
  }
  char ip[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip) == nullptr) {
    return "?";
  }
  return std::string{ip} + ":" + std::to_string(ntohs(addr.sin_port));
}

/// Connect a blocking TCP socket to 127.0.0.1:port; -1 on failure. Retries
/// connect() on EINTR (EISCONN after an interrupted connect counts as
/// success — the kernel completed it). When `error` is non-null a failure
/// fills it; ETIMEDOUT names the peer address the SYN was aimed at.
inline int connect_loopback(std::uint16_t port, std::string* error = nullptr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string{"socket: "} + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) != 0) {
    if (errno == EINTR) continue;     // interrupted: the connect proceeds
    if (errno == EISCONN) break;      // ...and may already have finished
    const int err = errno;
    if (error) {
      *error = std::string{"connect 127.0.0.1:"} + std::to_string(port) +
               ": " + std::strerror(err);
      if (err == ETIMEDOUT) *error += " (peer 127.0.0.1:" +
                                      std::to_string(port) + ")";
    }
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

inline bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

struct Reply {
  int status = 0;
  std::string head;
  std::string body;
  bool complete = false;  ///< a full head+Content-Length body was read
  std::string error;      ///< why the read stopped short (empty on success)
};

namespace detail {
/// recv() with EINTR retry. On error, fills reply.error; an ETIMEDOUT
/// (e.g. SO_RCVTIMEO or a dead peer under TCP_USER_TIMEOUT) names the
/// peer so the operator knows which connection stalled.
inline ssize_t recv_retry(int fd, void* buf, std::size_t len, Reply& reply) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    const int err = errno;
    reply.error = std::string{"recv: "} + std::strerror(err);
    if (err == ETIMEDOUT || err == EAGAIN || err == EWOULDBLOCK) {
      reply.error += " (peer " + peer_address(fd) + ")";
    }
    return n;
  }
}
}  // namespace detail

/// Read exactly one response (head + Content-Length body) off a keep-alive
/// connection. Blocking, bounded by the peer's write behaviour. The head is
/// read byte-wise and the body with exact counts so pipelined responses
/// behind this one are never consumed (no client-side buffering needed).
/// EINTR is retried; a failed read leaves the reason (with the peer address
/// for timeouts) in reply.error.
inline Reply read_response(int fd) {
  Reply reply;
  while (reply.head.find("\r\n\r\n") == std::string::npos) {
    char c = 0;
    const ssize_t n = detail::recv_retry(fd, &c, 1, reply);
    if (n <= 0) return reply;  // EOF/reset before a full head
    reply.head.push_back(c);
  }
  reply.head.resize(reply.head.size() - 4);  // drop the blank-line marker
  if (reply.head.rfind("HTTP/1.1 ", 0) == 0) {
    reply.status = std::atoi(reply.head.c_str() + 9);
  }
  std::size_t content_length = 0;
  const std::size_t cl = reply.head.find("Content-Length: ");
  if (cl != std::string::npos) {
    content_length = std::strtoull(reply.head.c_str() + cl + 16, nullptr, 10);
  }
  char buf[4096];
  while (reply.body.size() < content_length) {
    const std::size_t want =
        content_length - reply.body.size() < sizeof buf
            ? content_length - reply.body.size()
            : sizeof buf;
    const ssize_t n = detail::recv_retry(fd, buf, want, reply);
    if (n <= 0) return reply;  // EOF/reset before a full body
    reply.body.append(buf, static_cast<std::size_t>(n));
  }
  reply.complete = true;
  return reply;
}

/// One-shot GET on a fresh connection (Connection: close), read to EOF.
inline Reply http_get(std::uint16_t port, const std::string& target) {
  Reply reply;
  const int fd = connect_loopback(port);
  if (fd < 0) return reply;
  send_all(fd, "GET " + target +
                   " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  reply = read_response(fd);
  ::close(fd);
  return reply;
}

/// True when the peer closes (EOF) within ~timeout_ms; false on timeout or
/// if data keeps arriving past the deadline.
inline bool wait_for_eof(int fd, int timeout_ms) {
  char buf[1024];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return true;  // EOF or reset both count as closed
  }
}

}  // namespace redundancy::net::loopback
