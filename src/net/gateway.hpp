// net::Gateway — the epoll front door of the redundancy engine.
//
// Composition of the pieces in this directory, wired for the batching
// disciplines the engine already speaks:
//
//   EventLoop (one thread)          ThreadPool workers (N threads)
//   ─────────────────────           ──────────────────────────────
//   accept / read / parse
//     └─ per request: heap Job, task into a BatchRunner
//   cycle handler: ONE submit_batch per loop iteration ───▶ run handler
//                                                          (redundancy
//                                                           patterns)
//   wake handler: drain CompletionQueue ◀─── push(Job) + one wake per
//     └─ ConnManager::respond(conn_id)        burst (Treiber was-empty)
//
// A burst of K readable sockets therefore costs one epoll_wait, one
// submit_batch epoch (one pending-counter update, one worker wake-up), and
// one eventfd wake on the way back — not 3K syscalls/epochs.
//
// Route handlers run on pool workers and return an http::Response; the
// built-in demo routes put the paper's redundancy patterns directly on the
// serving path (hedged sequential alternatives with the result cache,
// N-of-M voting), and /metrics + /healthz are served in-process so the
// gateway is observable through itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/completion_queue.hpp"
#include "net/conn_manager.hpp"
#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {
class HealthTracker;
}  // namespace redundancy::core

namespace redundancy::obs {
class SloTracker;
}  // namespace redundancy::obs

namespace redundancy::net {

class Gateway {
 public:
  /// An owned copy of one request, alive for the whole worker-side journey
  /// (the connection's buffers mutate as soon as the handler is queued).
  struct Request {
    std::string method;
    std::string path;
    std::string query;
    std::string body;
  };

  /// Runs on a pool worker; must be callable concurrently. Throwing yields
  /// a 500 for that request only.
  using Handler = std::function<http::Response(const Request&)>;

  struct Options {
    ConnManager::Options conn;
    EventLoop::Options loop;
    /// Engine to dispatch into; nullptr = ThreadPool::shared().
    util::ThreadPool* pool = nullptr;
    /// When set, /healthz folds this tracker's verdict-derived state in
    /// (503 on failing) instead of the plain liveness answer.
    core::HealthTracker* health = nullptr;
    /// When set, every completed request is scored against its path's SLO
    /// class (status < 500 and within the latency target = good) and the
    /// gateway serves `GET /slo` with the tracker's windowed snapshot.
    obs::SloTracker* slo = nullptr;
  };

  Gateway() = default;
  explicit Gateway(Options options) : options_(std::move(options)) {}
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;
  ~Gateway() { stop(); }

  /// Register a handler for an exact path. Before start() only.
  void add_route(std::string path, Handler handler) {
    routes_[std::move(path)] = std::move(handler);
  }

  /// Bind, install /metrics + /healthz, spawn the loop thread. False when
  /// the socket or backend could not be set up. Ignores SIGPIPE.
  bool start();

  /// Stop the loop, close every connection, and wait for in-flight jobs to
  /// settle (their responses are dropped — the sockets are gone).
  /// Idempotent; also runs on destruction.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint16_t port() const noexcept {
    return manager_ ? manager_->port() : 0;
  }
  /// Jobs created minus jobs completed/dropped (for tests; exact once the
  /// loop is stopped).
  [[nodiscard]] std::uint64_t jobs_inflight() const noexcept {
    return jobs_inflight_.load(std::memory_order_acquire);
  }

 private:
  struct Job : CompletionNode {
    std::uint64_t conn_id = 0;
    Request request;
    const Handler* handler = nullptr;  ///< owned by routes_, outlives the job
    http::Response response;
    std::uint64_t t0_ns = 0;  ///< arrival timestamp (SLO/flight latency)
  };

  void on_request(std::uint64_t conn_id, const http::Request& request);
  void run_job(Job* job) noexcept;
  void drain_completions();
  void install_builtin_routes();

  Options options_;
  std::map<std::string, Handler, std::less<>> routes_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ConnManager> manager_;
  std::unique_ptr<util::BatchRunner> batch_;
  CompletionQueue completions_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> jobs_inflight_{0};
};

/// Install the demo serving surface used by the example server and the
/// gateway benchmark — the paper's patterns behind real routes:
///   /fast?x=N  hedged SequentialAlternatives + RedundancyCache
///   /vote?x=N  3-variant ParallelEvaluation under a majority voter
///   /echo      body (or ?x=) echoed back
///   /big?n=N   N bytes of payload (write-backpressure fodder)
/// Handlers serialize each pattern behind a mutex (pattern metrics are
/// owner-thread by contract); the fan-out inside stays parallel.
void install_demo_routes(Gateway& gateway);

}  // namespace redundancy::net
