// net::Gateway — the epoll front door of the redundancy engine.
//
// Composition of the pieces in this directory, wired for the batching
// disciplines the engine already speaks — and sharded across N reactor
// threads so the front door scales with cores:
//
//   Reactor i (loop thread)          ThreadPool workers (shared)
//   ───────────────────────          ──────────────────────────────
//   own SO_REUSEPORT listener
//   accept / read / parse
//     └─ per request: heap Job, task into reactor i's BatchRunner
//   cycle handler: ONE submit_batch per loop iteration ───▶ run handler
//                                                          (redundancy
//                                                           patterns)
//   wake handler: drain reactor i's CompletionQueue ◀── push(Job) + one
//     └─ ConnManager::respond(conn, seq)             wake per burst — to
//        batched: one sendmsg per conn               the OWNING loop only
//
// Sharding rules (see DESIGN.md): a connection belongs to the reactor
// whose listener accepted it and never migrates; a completion is pushed to
// the completion queue of the reactor that owns the connection, so the
// hand-back path crosses no locks shared between loops. Each reactor owns
// its own EventLoop, ConnManager, BatchRunner, CompletionQueue and timer
// wheel; the only shared mutable state is the thread pool and the metrics
// registry (both already concurrent). The kernel spreads connections
// across the listeners by 4-tuple hash (SO_REUSEPORT); where that is
// unavailable (or single_acceptor is set) reactor 0 accepts alone and
// round-robins fds to the other loops through their wakeup path. Reactor
// threads pin cluster-first using the sysfs topology probe.
//
// Loop count: Options::loops, else REDUNDANCY_GATEWAY_LOOPS (strict
// decimal, 1..64, loudly ignored otherwise), else min(max(cores/2,1), 8).
// With one loop the gateway is byte-for-byte the classic single-reactor:
// no loop= metric labels, no pinning, no pipelining changes.
//
// Route handlers run on pool workers and return an http::Response; the
// built-in demo routes put the paper's redundancy patterns directly on the
// serving path (hedged sequential alternatives with the result cache,
// N-of-M voting). /metrics, /healthz and /slo are served in-process from a
// short-TTL cached render, so a scrape storm costs at most one render per
// TTL instead of stalling request I/O behind the registry walk.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/completion_queue.hpp"
#include "net/conn_manager.hpp"
#include "net/event_loop.hpp"
#include "net/http.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {
class HealthTracker;
}  // namespace redundancy::core

namespace redundancy::obs {
class SloTracker;
}  // namespace redundancy::obs

namespace redundancy::net {

class Gateway {
 public:
  /// An owned copy of one request, alive for the whole worker-side journey
  /// (the connection's buffers mutate as soon as the handler is queued).
  struct Request {
    std::string method;
    std::string path;
    std::string query;
    std::string body;
  };

  /// Runs on a pool worker; must be callable concurrently. Throwing yields
  /// a 500 for that request only.
  using Handler = std::function<http::Response(const Request&)>;

  struct Options {
    ConnManager::Options conn;
    EventLoop::Options loop;
    /// Engine to dispatch into; nullptr = ThreadPool::shared().
    util::ThreadPool* pool = nullptr;
    /// When set, /healthz folds this tracker's verdict-derived state in
    /// (503 on failing) instead of the plain liveness answer.
    core::HealthTracker* health = nullptr;
    /// When set, every completed request is scored against its path's SLO
    /// class (status < 500 and within the latency target = good) and the
    /// gateway serves `GET /slo` with the tracker's windowed snapshot.
    obs::SloTracker* slo = nullptr;
    /// Reactor count. 0 = REDUNDANCY_GATEWAY_LOOPS, else the core-derived
    /// default (see file comment). 1 disables all sharding machinery.
    std::size_t loops = 0;
    /// Pin reactor threads cluster-first via the topology probe (only when
    /// loops > 1; pinning is best-effort and never fails start()).
    bool pin_reactors = true;
    /// Force the single-acceptor fallback even where SO_REUSEPORT works —
    /// reactor 0 accepts and round-robins fds to the other loops.
    bool single_acceptor = false;
    /// TTL of the cached /metrics//healthz//slo renders; 0 renders every
    /// scrape (the classic behaviour).
    std::uint64_t ops_cache_ttl_ms = 100;
  };

  Gateway() = default;
  explicit Gateway(Options options) : options_(std::move(options)) {}
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;
  ~Gateway() { stop(); }

  /// Register a handler for an exact path. Before start() only.
  void add_route(std::string path, Handler handler) {
    routes_[std::move(path)] = std::move(handler);
  }

  /// Bind, install /metrics + /healthz, spawn the loop threads. False when
  /// a socket or backend could not be set up. Ignores SIGPIPE.
  bool start();

  /// Stop every loop, close every connection, and wait for in-flight jobs
  /// to settle (their responses are dropped — the sockets are gone).
  /// Idempotent; also runs on destruction.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint16_t port() const noexcept {
    return reactors_.empty() ? 0 : reactors_.front()->manager->port();
  }
  /// Reactor count actually running (resolved at start()).
  [[nodiscard]] std::size_t loops() const noexcept { return reactors_.size(); }
  /// The event-loop backend the reactors actually run (resolved at
  /// start(): automatic → uring/epoll/poll by probe + env knob).
  [[nodiscard]] EventLoop::Backend backend() const noexcept {
    return reactors_.empty() ? EventLoop::Backend::automatic
                             : reactors_.front()->loop->backend();
  }
  /// Jobs created minus jobs completed/dropped, summed over all reactors
  /// (for tests; exact once the loops are stopped).
  [[nodiscard]] std::uint64_t jobs_inflight() const noexcept {
    std::uint64_t total = 0;
    for (const auto& r : reactors_) {
      total += r->jobs_inflight.load(std::memory_order_acquire);
    }
    return total;
  }
  /// Same, for one reactor (loop < loops()).
  [[nodiscard]] std::uint64_t jobs_inflight(std::size_t loop) const noexcept {
    return loop < reactors_.size()
               ? reactors_[loop]->jobs_inflight.load(std::memory_order_acquire)
               : 0;
  }

 private:
  /// One front-door shard: everything a loop thread touches, owned by it.
  struct Reactor {
    std::size_t index = 0;
    std::unique_ptr<EventLoop> loop;
    std::unique_ptr<ConnManager> manager;
    std::unique_ptr<util::BatchRunner> batch;
    CompletionQueue completions;
    std::thread thread;
    std::atomic<std::uint64_t> jobs_inflight{0};
    /// Fallback-acceptor handoff: fds pushed by reactor 0, adopted on this
    /// loop's wake path. Cold (accept-rate) path — a mutex is fine.
    std::mutex adopt_mutex;
    std::vector<int> adopt_queue;
  };

  struct Job : CompletionNode {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;      ///< pipeline slot within the connection
    Reactor* reactor = nullptr; ///< owning loop: completions go only here
    Request request;
    const Handler* handler = nullptr;  ///< owned by routes_, outlives the job
    http::Response response;
    std::uint64_t t0_ns = 0;  ///< arrival timestamp (SLO/flight latency)
  };

  /// One cached ops-route render (/metrics, /healthz, /slo). Handlers run
  /// on pool workers, hence the mutex; within ttl_ms of the last render
  /// every scrape is served from the cache.
  struct OpsCache {
    std::mutex mutex;
    http::Response response;
    std::uint64_t rendered_at_ns = 0;
  };

  void on_request(Reactor& reactor, std::uint64_t conn_id,
                  const http::Request& request);
  void run_job(Job* job) noexcept;
  void drain_completions(Reactor& reactor);
  void drain_adoptions(Reactor& reactor);
  void install_builtin_routes();
  http::Response serve_cached(OpsCache& cache,
                              const std::function<http::Response()>& render);

  Options options_;
  std::map<std::string, Handler, std::less<>> routes_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<std::size_t> round_robin_{0};
  OpsCache metrics_cache_;
  OpsCache healthz_cache_;
  OpsCache slo_cache_;
  std::atomic<bool> running_{false};
};

/// Install the demo serving surface used by the example server and the
/// gateway benchmark — the paper's patterns behind real routes:
///   /fast?x=N  hedged SequentialAlternatives + RedundancyCache
///   /vote?x=N  3-variant ParallelEvaluation under a majority voter
///   /echo      body (or ?x=) echoed back
///   /big?n=N   N bytes of payload (write-backpressure fodder)
/// Handlers serialize each pattern behind a mutex (pattern metrics are
/// owner-thread by contract); the fan-out inside stays parallel.
void install_demo_routes(Gateway& gateway);

}  // namespace redundancy::net
