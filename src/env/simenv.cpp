#include "env/simenv.hpp"

#include <cstdio>

#include "util/checksum.hpp"

namespace redundancy::env {

std::string_view to_string(AllocStrategy s) noexcept {
  switch (s) {
    case AllocStrategy::compact: return "compact";
    case AllocStrategy::padded: return "padded";
    case AllocStrategy::randomized: return "randomized";
  }
  return "unknown";
}

std::string_view to_string(MessageOrder o) noexcept {
  switch (o) {
    case MessageOrder::fifo: return "fifo";
    case MessageOrder::shuffled: return "shuffled";
  }
  return "unknown";
}

std::uint64_t SimEnv::signature() const noexcept {
  std::uint64_t h = 0x5eedf00dULL;
  h = util::hash_mix(h, static_cast<std::uint64_t>(alloc));
  h = util::hash_mix(h, pad_bytes);
  h = util::hash_mix(h, sched_seed);
  h = util::hash_mix(h, static_cast<std::uint64_t>(msg_order));
  h = util::hash_mix(h, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(priority) + (1LL << 32)));
  h = util::hash_mix(h, static_cast<std::uint64_t>(admitted_load * 1e6));
  return h;
}

std::vector<std::size_t> SimEnv::delivery_order(std::size_t n) const {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (msg_order == MessageOrder::shuffled) {
    util::Rng rng = noise();
    rng.shuffle(order);
  }
  return order;
}

std::string SimEnv::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "alloc=%s pad=%u sched=%llu order=%s prio=%d load=%.2f",
                std::string(to_string(alloc)).c_str(), pad_bytes,
                static_cast<unsigned long long>(sched_seed),
                std::string(to_string(msg_order)).c_str(), priority,
                admitted_load);
  return buf;
}

std::vector<Perturbation> standard_perturbations() {
  return {
      {"pad-allocations",
       [](SimEnv e) {
         e.alloc = AllocStrategy::padded;
         e.pad_bytes = e.pad_bytes < 64 ? 64 : e.pad_bytes * 2;
         return e;
       }},
      {"randomize-allocation",
       [](SimEnv e) {
         e.alloc = AllocStrategy::randomized;
         return e;
       }},
      {"shuffle-messages",
       [](SimEnv e) {
         e.msg_order = e.msg_order == MessageOrder::fifo
                           ? MessageOrder::shuffled
                           : MessageOrder::fifo;
         e.sched_seed = util::hash_mix(e.sched_seed, 0x0edeULL);
         return e;
       }},
      {"reschedule",
       [](SimEnv e) {
         e.sched_seed = util::hash_mix(e.sched_seed, 0x5c4edULL);
         return e;
       }},
      {"lower-priority",
       [](SimEnv e) {
         e.priority -= 1;
         e.sched_seed = util::hash_mix(e.sched_seed, 0x917ULL);
         return e;
       }},
      {"shed-load",
       [](SimEnv e) {
         e.admitted_load *= 0.5;
         return e;
       }},
  };
}

std::function<bool()> overflow_condition(const SimEnv& env, std::uint32_t needed) {
  return [&env, needed] {
    if (env.alloc == AllocStrategy::randomized) return false;
    const std::uint32_t guard =
        env.alloc == AllocStrategy::padded ? env.pad_bytes : 0;
    return guard < needed;
  };
}

std::function<bool()> race_condition(const SimEnv& env, double f) {
  return [&env, f] {
    std::uint64_t s = util::hash_mix(env.sched_seed, 0xacedULL);
    const std::uint64_t h = util::splitmix64(s);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < f;
  };
}

std::function<bool()> order_condition(const SimEnv& env) {
  return [&env] { return env.msg_order == MessageOrder::fifo; };
}

std::function<bool()> overload_condition(const SimEnv& env, double ceiling) {
  return [&env, ceiling] { return env.admitted_load > ceiling; };
}

}  // namespace redundancy::env
