// SimEnv: the simulated execution environment.
//
// Environment-level redundancy techniques (rejuvenation, RX environment
// perturbation, checkpoint-recovery, reboot) act not on code but on the
// conditions the code runs under. SimEnv models the environment knobs that
// the RX paper (Qin et al.) perturbs — memory-allocation strategy, message
// delivery order, scheduling, process priority, admitted load — and gives
// fault triggers a concrete ambient state to depend on, so that "change the
// environment and re-execute" has real, observable consequences.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace redundancy::env {

enum class AllocStrategy : std::uint8_t {
  compact,     ///< objects packed tightly; overflows clobber neighbours
  padded,      ///< guard padding between allocations
  randomized,  ///< random placement (address-space layout diversity)
};

enum class MessageOrder : std::uint8_t {
  fifo,      ///< deterministic arrival order
  shuffled,  ///< randomized delivery order
};

[[nodiscard]] std::string_view to_string(AllocStrategy s) noexcept;
[[nodiscard]] std::string_view to_string(MessageOrder o) noexcept;

struct SimEnv {
  AllocStrategy alloc = AllocStrategy::compact;
  std::uint32_t pad_bytes = 0;           ///< guard padding when alloc==padded
  std::uint64_t sched_seed = 1;          ///< interleaving identity
  MessageOrder msg_order = MessageOrder::fifo;
  std::int32_t priority = 0;             ///< process priority delta
  double admitted_load = 1.0;            ///< fraction of user requests admitted

  /// Stable fingerprint of the whole knob vector; two executions with equal
  /// signatures see identical environment nondeterminism.
  [[nodiscard]] std::uint64_t signature() const noexcept;

  /// Deterministic per-environment noise source (derived from signature()).
  [[nodiscard]] util::Rng noise() const noexcept {
    return util::Rng{signature()};
  }

  /// Deliver `n` messages under this environment's ordering policy: returns
  /// the arrival permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> delivery_order(std::size_t n) const;

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const SimEnv&, const SimEnv&) = default;
};

/// A directed environment change (one RX "medicine").
struct Perturbation {
  std::string name;
  std::function<SimEnv(SimEnv)> apply;
};

/// The RX menu of perturbations, in the order RX tries them: pad
/// allocations, randomize allocation placement, change message order,
/// reschedule (new interleaving), drop priority, shed load.
[[nodiscard]] std::vector<Perturbation> standard_perturbations();

// --- Environment-sensitive bug conditions --------------------------------
//
// Factories for the ambient predicates that environment-dependent faults are
// built from. Each returns a condition over a SimEnv reference cell, so the
// same fault instance observes environment changes made by RX/rejuvenation.

/// Memory bug: manifests unless allocations carry at least `needed` guard
/// bytes (padding or randomized placement both mask it).
[[nodiscard]] std::function<bool()> overflow_condition(const SimEnv& env,
                                                       std::uint32_t needed);

/// Race: manifests on a fraction `f` of scheduler interleavings,
/// deterministically per sched_seed.
[[nodiscard]] std::function<bool()> race_condition(const SimEnv& env, double f);

/// Message-order bug: manifests only under deterministic FIFO delivery.
[[nodiscard]] std::function<bool()> order_condition(const SimEnv& env);

/// Overload bug: manifests when admitted load exceeds `ceiling`.
[[nodiscard]] std::function<bool()> overload_condition(const SimEnv& env,
                                                       double ceiling);

}  // namespace redundancy::env
