// AgingProcess: the software-aging substrate behind rejuvenation.
//
// Huang et al.'s rejuvenation analysis rests on a process whose failure
// hazard grows as it ages — leaked memory, fragmented heaps, stale caches.
// AgingProcess implements that model directly: each request leaks an
// exponentially distributed amount of a finite resource, the per-request
// failure hazard rises with resource consumption, exhausting the resource
// crashes the process, and a reboot restores youth at a fixed downtime cost.
#pragma once

#include <cstdint>

#include "core/result.hpp"
#include "util/rng.hpp"

namespace redundancy::env {

struct AgingConfig {
  double capacity = 10'000.0;    ///< resource budget (e.g. KB of heap)
  double mean_leak = 10.0;       ///< expected leak per request
  double base_hazard = 0.0;      ///< failure probability when young
  double hazard_scale = 0.05;    ///< hazard added at full consumption
  double hazard_exponent = 3.0;  ///< convexity: failures cluster in old age
  double request_time = 1.0;     ///< service time units per request
  double reboot_time = 250.0;    ///< downtime units per (full) reboot
};

class AgingProcess {
 public:
  explicit AgingProcess(AgingConfig cfg = {}, std::uint64_t seed = 1)
      : cfg_(cfg), rng_(seed) {}

  /// Serve one request. Advances simulated time; on failure the process
  /// crashes and must be rebooted before it can serve again.
  core::Status serve();

  /// Restart: clears accumulated aging, pays reboot downtime.
  void reboot();

  [[nodiscard]] bool crashed() const noexcept { return crashed_; }
  [[nodiscard]] double consumed() const noexcept { return consumed_; }
  [[nodiscard]] double age_fraction() const noexcept {
    return consumed_ / cfg_.capacity;
  }
  /// Current per-request failure hazard h(age).
  [[nodiscard]] double hazard() const noexcept;

  [[nodiscard]] double clock() const noexcept { return clock_; }
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t reboots() const noexcept { return reboots_; }
  [[nodiscard]] const AgingConfig& config() const noexcept { return cfg_; }

 private:
  AgingConfig cfg_;
  util::Rng rng_;
  double consumed_ = 0.0;
  double clock_ = 0.0;
  bool crashed_ = false;
  std::uint64_t served_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t reboots_ = 0;
};

/// Garg et al. (1996): completion time of a long-running program under
/// checkpointing and rejuvenation. The program needs `total_work` units;
/// crashes lose work since the last checkpoint; rejuvenation (planned
/// reboot) also returns to the last checkpoint but can be scheduled when
/// convenient.
struct CompletionRun {
  double total_time = 0.0;
  std::uint64_t crashes = 0;
  std::uint64_t rejuvenations = 0;
  std::uint64_t checkpoints = 0;
};

struct CompletionConfig {
  double total_work = 5'000.0;
  double checkpoint_every = 0.0;  ///< work units between checkpoints (0 = none)
  double checkpoint_cost = 5.0;
  double rejuvenate_every = 0.0;  ///< work units between rejuvenations (0 = none)
  double rejuvenation_time = 80.0; ///< planned restart is cheaper than a crash
};

[[nodiscard]] CompletionRun simulate_completion(const AgingConfig& aging,
                                                const CompletionConfig& cfg,
                                                std::uint64_t seed);

}  // namespace redundancy::env
