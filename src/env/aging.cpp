#include "env/aging.hpp"

#include <cmath>

namespace redundancy::env {

double AgingProcess::hazard() const noexcept {
  const double age = consumed_ / cfg_.capacity;
  return cfg_.base_hazard +
         cfg_.hazard_scale * std::pow(std::min(age, 1.0), cfg_.hazard_exponent);
}

core::Status AgingProcess::serve() {
  if (crashed_) {
    return core::failure(core::FailureKind::unavailable, "process crashed",
                         core::FaultClass::aging);
  }
  clock_ += cfg_.request_time;
  consumed_ += rng_.exponential(cfg_.mean_leak);
  if (consumed_ >= cfg_.capacity || rng_.chance(hazard())) {
    crashed_ = true;
    ++crashes_;
    return core::failure(core::FailureKind::crash,
                         consumed_ >= cfg_.capacity ? "resource exhausted"
                                                    : "aging failure",
                         core::FaultClass::aging);
  }
  ++served_;
  return core::ok_status();
}

void AgingProcess::reboot() {
  clock_ += cfg_.reboot_time;
  consumed_ = 0.0;
  crashed_ = false;
  ++reboots_;
}

CompletionRun simulate_completion(const AgingConfig& aging,
                                  const CompletionConfig& cfg,
                                  std::uint64_t seed) {
  // Semantics (Garg et al. 1996):
  //  * work committed at a checkpoint survives any restart;
  //  * a crash loses all volatile work and pays the full reboot downtime;
  //  * a planned rejuvenation first saves volatile work (a final checkpoint),
  //    then restarts young at the cheaper planned-downtime cost.
  constexpr double kTimeCap = 5e7;  // safety net against pathological configs
  AgingProcess proc{aging, seed};
  CompletionRun run;
  double committed = 0.0;
  double volatile_work = 0.0;
  double since_rejuvenation = 0.0;
  double extra_time = 0.0;  // checkpoint costs and planned-downtime deltas
  while (committed + volatile_work < cfg.total_work &&
         proc.clock() + extra_time < kTimeCap) {
    if (cfg.rejuvenate_every > 0.0 &&
        since_rejuvenation >= cfg.rejuvenate_every) {
      committed += volatile_work;  // clean shutdown saves state
      volatile_work = 0.0;
      extra_time += cfg.checkpoint_cost;
      ++run.checkpoints;
      proc.reboot();
      extra_time += cfg.rejuvenation_time - aging.reboot_time;
      since_rejuvenation = 0.0;
      ++run.rejuvenations;
      continue;
    }
    if (cfg.checkpoint_every > 0.0 && volatile_work >= cfg.checkpoint_every) {
      committed += volatile_work;
      volatile_work = 0.0;
      extra_time += cfg.checkpoint_cost;
      ++run.checkpoints;
    }
    auto status = proc.serve();
    if (status.has_value()) {
      volatile_work += aging.request_time;
      since_rejuvenation += aging.request_time;
    } else {
      volatile_work = 0.0;  // crash loses everything since the last commit
      since_rejuvenation = 0.0;
      proc.reboot();
      ++run.crashes;
    }
  }
  run.total_time = proc.clock() + extra_time;
  return run;
}

}  // namespace redundancy::env
