// HeapModel: a simulated process heap.
//
// Substitutes for the real C-library heap that Fetzer & Xiao's "healers"
// protect: allocations are byte blocks laid out in a flat arena according to
// the environment's allocation strategy, and *unchecked* writes past a
// block's end clobber whatever is adjacent — exactly the failure the
// HeapHealer wrapper (techniques/wrappers.hpp) exists to prevent, and the
// memory the heap-smash attack payloads corrupt.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "env/simenv.hpp"

namespace redundancy::env {

using BlockId = std::uint32_t;

class HeapModel {
 public:
  /// Arena of `arena_size` bytes laid out per `env.alloc` / `env.pad_bytes`.
  explicit HeapModel(std::size_t arena_size = 1 << 16, SimEnv env = {});

  /// Allocate `size` bytes; returns the block id, or unavailable when the
  /// arena is exhausted.
  core::Result<BlockId> malloc(std::size_t size);
  core::Status free(BlockId id);

  /// UNCHECKED write, mimicking C semantics: bytes beyond the block's size
  /// spill into adjacent arena memory (silently corrupting neighbours).
  core::Status write_raw(BlockId id, std::size_t offset,
                         std::span<const std::byte> data);
  /// Bounds-checked write: fails instead of spilling.
  core::Status write_checked(BlockId id, std::size_t offset,
                             std::span<const std::byte> data);

  [[nodiscard]] core::Result<std::vector<std::byte>> read(BlockId id,
                                                          std::size_t offset,
                                                          std::size_t len) const;

  /// Size the allocator recorded for this block (what a healer consults).
  [[nodiscard]] std::optional<std::size_t> block_size(BlockId id) const;

  /// Integrity audit: number of live blocks whose contents were clobbered
  /// by out-of-bounds writes from another block (tracked ground truth).
  [[nodiscard]] std::size_t corrupted_blocks() const;
  /// True if the given block was corrupted by a neighbour's overflow.
  [[nodiscard]] bool is_corrupted(BlockId id) const;

  [[nodiscard]] std::size_t live_blocks() const noexcept { return blocks_.size(); }
  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return used_; }

 private:
  struct Block {
    std::size_t offset = 0;  ///< position in the arena
    std::size_t size = 0;
    bool corrupted = false;  ///< clobbered by someone else's overflow
  };

  [[nodiscard]] std::size_t guard_bytes() const noexcept;
  void clobber(std::size_t arena_begin, std::size_t arena_end, BlockId writer);

  SimEnv env_;
  std::size_t arena_size_;
  std::size_t next_offset_ = 0;
  std::size_t used_ = 0;
  BlockId next_id_ = 1;
  std::map<BlockId, Block> blocks_;
  util::Rng place_rng_;
};

}  // namespace redundancy::env
