#include "env/checkpoint.hpp"

namespace redundancy::env {

using core::failure;
using core::FailureKind;
using core::ok_status;
using core::Status;

std::uint64_t CheckpointStore::capture(const Checkpointable& subject) {
  Entry entry;
  entry.seq = next_seq_++;
  entry.state = subject.snapshot();
  entry.crc = util::crc32(entry.state.span());
  ring_.push_back(std::move(entry));
  while (ring_.size() > retain_) ring_.pop_front();
  return ring_.back().seq;
}

Status CheckpointStore::apply(const Entry& entry, Checkpointable& subject) const {
  if (util::crc32(entry.state.span()) != entry.crc) {
    return failure(FailureKind::corrupted_state,
                   "checkpoint " + std::to_string(entry.seq) + " failed CRC");
  }
  subject.restore(entry.state);
  return ok_status();
}

Status CheckpointStore::restore_latest(Checkpointable& subject) const {
  if (ring_.empty()) {
    return failure(FailureKind::unavailable, "no checkpoints");
  }
  return apply(ring_.back(), subject);
}

Status CheckpointStore::restore(std::uint64_t seq, Checkpointable& subject) const {
  for (const auto& entry : ring_) {
    if (entry.seq == seq) return apply(entry, subject);
  }
  return failure(FailureKind::unavailable,
                 "checkpoint " + std::to_string(seq) + " evicted or unknown");
}

std::size_t CheckpointStore::bytes_retained() const noexcept {
  std::size_t total = 0;
  for (const auto& e : ring_) total += e.state.size();
  return total;
}

void CheckpointStore::corrupt(std::uint64_t seq, std::size_t byte_index) {
  for (auto& entry : ring_) {
    if (entry.seq != seq) continue;
    auto bytes = entry.state.bytes();
    if (bytes.empty()) return;
    bytes[byte_index % bytes.size()] ^= std::byte{0xff};
    entry.state = util::ByteBuffer{std::move(bytes)};
    return;
  }
}

}  // namespace redundancy::env
