#include "env/heap_model.hpp"

#include <algorithm>

namespace redundancy::env {

using core::failure;
using core::FailureKind;
using core::ok_status;
using core::Status;

HeapModel::HeapModel(std::size_t arena_size, SimEnv env)
    : env_(env), arena_size_(arena_size), place_rng_(env.signature()) {}

std::size_t HeapModel::guard_bytes() const noexcept {
  switch (env_.alloc) {
    case AllocStrategy::compact: return 0;
    case AllocStrategy::padded: return env_.pad_bytes;
    case AllocStrategy::randomized: return 0;  // handled by placement
  }
  return 0;
}

core::Result<BlockId> HeapModel::malloc(std::size_t size) {
  if (size == 0) return failure(FailureKind::crash, "malloc(0)");
  std::size_t offset;
  if (env_.alloc == AllocStrategy::randomized) {
    // Random placement: retry a few probes for a free gap.
    bool placed = false;
    offset = 0;
    for (int probe = 0; probe < 64 && !placed; ++probe) {
      offset = place_rng_.index(arena_size_ > size ? arena_size_ - size : 1);
      placed = true;
      for (const auto& [id, b] : blocks_) {
        if (offset < b.offset + b.size && b.offset < offset + size) {
          placed = false;
          break;
        }
      }
    }
    if (!placed) return failure(FailureKind::unavailable, "arena fragmented");
  } else {
    const std::size_t need = size + guard_bytes();
    if (next_offset_ + need > arena_size_) {
      return failure(FailureKind::unavailable, "arena exhausted");
    }
    offset = next_offset_;
    next_offset_ += need;
  }
  const BlockId id = next_id_++;
  blocks_[id] = Block{offset, size, false};
  used_ += size;
  return id;
}

Status HeapModel::free(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return failure(FailureKind::crash, "free of unknown block");
  }
  used_ -= it->second.size;
  blocks_.erase(it);
  return ok_status();
}

void HeapModel::clobber(std::size_t begin, std::size_t end, BlockId writer) {
  for (auto& [id, b] : blocks_) {
    if (id == writer) continue;
    if (begin < b.offset + b.size && b.offset < end) b.corrupted = true;
  }
}

Status HeapModel::write_raw(BlockId id, std::size_t offset,
                            std::span<const std::byte> data) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return failure(FailureKind::crash, "write to unknown block");
  }
  const Block& b = it->second;
  const std::size_t end = offset + data.size();
  if (end > b.size) {
    // C semantics: the write proceeds, spilling past the block's end into
    // arena neighbours. With guard padding the spill may land harmlessly.
    const std::size_t spill_begin = b.offset + b.size + guard_bytes();
    const std::size_t spill_end = b.offset + end;
    if (spill_end > spill_begin) clobber(spill_begin, spill_end, id);
  }
  return ok_status();
}

Status HeapModel::write_checked(BlockId id, std::size_t offset,
                                std::span<const std::byte> data) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return failure(FailureKind::crash, "write to unknown block");
  }
  if (offset + data.size() > it->second.size) {
    return failure(FailureKind::corrupted_state,
                   "bounds violation caught: write past block end",
                   core::FaultClass::malicious);
  }
  return write_raw(id, offset, data);
}

core::Result<std::vector<std::byte>> HeapModel::read(BlockId id,
                                                     std::size_t offset,
                                                     std::size_t len) const {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return failure(FailureKind::crash, "read of unknown block");
  }
  if (offset + len > it->second.size) {
    return failure(FailureKind::crash, "read past block end");
  }
  // The model tracks corruption, not contents; reads return zeroed bytes.
  return std::vector<std::byte>(len, std::byte{0});
}

std::optional<std::size_t> HeapModel::block_size(BlockId id) const {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) return std::nullopt;
  return it->second.size;
}

std::size_t HeapModel::corrupted_blocks() const {
  return static_cast<std::size_t>(
      std::count_if(blocks_.begin(), blocks_.end(),
                    [](const auto& kv) { return kv.second.corrupted; }));
}

bool HeapModel::is_corrupted(BlockId id) const {
  auto it = blocks_.find(id);
  return it != blocks_.end() && it->second.corrupted;
}

}  // namespace redundancy::env
