// CheckpointStore: consistent-state snapshots for rollback-based recovery.
//
// The substrate behind checkpoint-recovery (Elnozahy et al.), recovery-block
// rollback, and RX's "roll back, perturb, re-execute" loop. Snapshots are
// opaque byte buffers protected by a CRC so that a corrupted checkpoint is
// detected at restore time rather than silently resurrected.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "core/result.hpp"
#include "util/byte_buffer.hpp"
#include "util/checksum.hpp"

namespace redundancy::env {

/// Anything whose state can be captured and restored.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  [[nodiscard]] virtual util::ByteBuffer snapshot() const = 0;
  virtual void restore(const util::ByteBuffer& state) = 0;
};

class CheckpointStore {
 public:
  /// Keep at most `retain` most-recent checkpoints (ring discipline).
  explicit CheckpointStore(std::size_t retain = 4) : retain_(retain) {}

  /// Capture the subject's state; returns the checkpoint sequence number.
  std::uint64_t capture(const Checkpointable& subject);

  /// Restore the most recent checkpoint (or the one with sequence `seq`).
  core::Status restore_latest(Checkpointable& subject) const;
  core::Status restore(std::uint64_t seq, Checkpointable& subject) const;

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }
  [[nodiscard]] std::optional<std::uint64_t> latest_seq() const noexcept {
    if (ring_.empty()) return std::nullopt;
    return ring_.back().seq;
  }
  /// Total bytes currently retained (for overhead benchmarks).
  [[nodiscard]] std::size_t bytes_retained() const noexcept;

  /// Flip bits in the stored copy of checkpoint `seq` (fault injection on
  /// the checkpoint medium itself); restore must then fail the CRC.
  void corrupt(std::uint64_t seq, std::size_t byte_index);

 private:
  struct Entry {
    std::uint64_t seq = 0;
    util::ByteBuffer state;
    std::uint32_t crc = 0;
  };

  core::Status apply(const Entry& entry, Checkpointable& subject) const;

  std::size_t retain_;
  std::uint64_t next_seq_ = 1;
  std::deque<Entry> ring_;
};

}  // namespace redundancy::env
