// Export sinks for trace events.
//
// The Recorder drains per-thread buffers into every attached sink under one
// sink lock, so sink implementations see events one batch at a time and need
// no internal synchronisation beyond their own state. Three implementations:
//
//   JsonlTraceSink   — one JSON object per line (schema: EXPERIMENTS.md);
//                      the machine-readable trace artifact (*.trace.jsonl).
//   CollectingSink   — keeps the records in memory; what tests assert on.
//   NullSink         — counts and drops; the overhead-measurement baseline.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace redundancy::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
  virtual void on_adjudication(const AdjudicationEvent& event) = 0;
  /// Called by Recorder::flush after a drain; push buffered bytes out.
  virtual void flush() {}
};

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Serialise one record as a single JSONL line (no trailing newline).
[[nodiscard]] std::string to_jsonl(const SpanRecord& span);
[[nodiscard]] std::string to_jsonl(const AdjudicationEvent& event);

/// Writes each record as one JSON line to an owned file or borrowed stream.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Append to (or create) `path`; by convention "<name>.trace.jsonl".
  explicit JsonlTraceSink(const std::string& path);
  /// Write to a caller-owned stream (tests use std::ostringstream).
  explicit JsonlTraceSink(std::ostream& out);
  ~JsonlTraceSink() override;

  void on_span(const SpanRecord& span) override;
  void on_adjudication(const AdjudicationEvent& event) override;
  void flush() override;

  /// False if the file path could not be opened (events are dropped).
  [[nodiscard]] bool is_open() const noexcept { return out_ != nullptr; }

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
};

/// Retains every record in memory for inspection.
class CollectingSink final : public TraceSink {
 public:
  void on_span(const SpanRecord& span) override { spans_.push_back(span); }
  void on_adjudication(const AdjudicationEvent& event) override {
    adjudications_.push_back(event);
  }

  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<AdjudicationEvent>& adjudications()
      const noexcept {
    return adjudications_;
  }
  void clear() {
    spans_.clear();
    adjudications_.clear();
  }

 private:
  std::vector<SpanRecord> spans_;
  std::vector<AdjudicationEvent> adjudications_;
};

/// Counts and discards — the cheapest possible sink, used to measure the
/// recorder's own overhead without serialisation cost.
class NullSink final : public TraceSink {
 public:
  void on_span(const SpanRecord&) override { ++spans_; }
  void on_adjudication(const AdjudicationEvent&) override { ++adjudications_; }

  [[nodiscard]] std::size_t spans() const noexcept { return spans_; }
  [[nodiscard]] std::size_t adjudications() const noexcept {
    return adjudications_;
  }

 private:
  std::size_t spans_ = 0;
  std::size_t adjudications_ = 0;
};

}  // namespace redundancy::obs
