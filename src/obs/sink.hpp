// Export sinks for trace events.
//
// The Recorder drains per-thread buffers into every attached sink under one
// sink lock, so sink implementations see events one batch at a time and need
// no internal synchronisation beyond their own state — except RingTraceSink,
// which is also read concurrently by the HTTP exporter thread and guards its
// ring itself. Four implementations:
//
//   JsonlTraceSink   — one JSON object per line (schema: EXPERIMENTS.md);
//                      the machine-readable trace artifact (*.trace.jsonl).
//   RingTraceSink    — bounded ring of the most recent *root* spans, served
//                      live by obs::HttpExporter as `GET /traces?n=K`.
//   CollectingSink   — keeps the records in memory; what tests assert on.
//   NullSink         — counts and drops; the overhead-measurement baseline.
#pragma once

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace redundancy::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
  virtual void on_adjudication(const AdjudicationEvent& event) = 0;
  /// Called by Recorder::flush after a drain; push buffered bytes out.
  virtual void flush() {}
};

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Serialise one record as a single JSONL line (no trailing newline).
[[nodiscard]] std::string to_jsonl(const SpanRecord& span);
[[nodiscard]] std::string to_jsonl(const AdjudicationEvent& event);

/// Writes each record as one JSON line to an owned file or borrowed stream.
///
/// Crash-safety: records accumulate as complete lines in an internal buffer
/// and reach the underlying stream only in whole-line blocks, each followed
/// immediately by a stream flush. The stream's own buffer therefore never
/// sits on a partial line between flushes — a sink dropped mid-campaign
/// (destructor flushes) or a process that dies between batches leaves a file
/// of complete JSONL lines, never a truncated record.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Buffered bytes that trigger an automatic flush().
  static constexpr std::size_t kFlushBytes = 1 << 16;

  /// Append to (or create) `path`; by convention "<name>.trace.jsonl".
  explicit JsonlTraceSink(const std::string& path);
  /// Write to a caller-owned stream (tests use std::ostringstream).
  explicit JsonlTraceSink(std::ostream& out);
  ~JsonlTraceSink() override;

  void on_span(const SpanRecord& span) override;
  void on_adjudication(const AdjudicationEvent& event) override;
  /// Push every buffered line to the stream and flush the stream.
  void flush() override;

  /// False if the file path could not be opened (events are dropped).
  [[nodiscard]] bool is_open() const noexcept { return out_ != nullptr; }

 private:
  void append_line(std::string line);

  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
  std::string pending_;  ///< complete ('\n'-terminated) lines only
};

/// Bounded ring of the most recent root spans, kept as ready-to-serve JSONL
/// lines. The Recorder writes under the sink lock while the HTTP exporter
/// thread reads tail() concurrently, so the ring carries its own mutex.
class RingTraceSink final : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity = 256);

  /// Keeps root spans (parent_id == 0) only: one line per recent request.
  void on_span(const SpanRecord& span) override;
  void on_adjudication(const AdjudicationEvent&) override {}

  /// Up to the `n` most recent root spans, oldest first.
  [[nodiscard]] std::vector<std::string> tail(std::size_t n) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<std::string> lines_;
};

/// Retains every record in memory for inspection.
class CollectingSink final : public TraceSink {
 public:
  void on_span(const SpanRecord& span) override { spans_.push_back(span); }
  void on_adjudication(const AdjudicationEvent& event) override {
    adjudications_.push_back(event);
  }

  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<AdjudicationEvent>& adjudications()
      const noexcept {
    return adjudications_;
  }
  void clear() {
    spans_.clear();
    adjudications_.clear();
  }

 private:
  std::vector<SpanRecord> spans_;
  std::vector<AdjudicationEvent> adjudications_;
};

/// Counts and discards — the cheapest possible sink, used to measure the
/// recorder's own overhead without serialisation cost.
class NullSink final : public TraceSink {
 public:
  void on_span(const SpanRecord&) override { ++spans_; }
  void on_adjudication(const AdjudicationEvent&) override { ++adjudications_; }

  [[nodiscard]] std::size_t spans() const noexcept { return spans_; }
  [[nodiscard]] std::size_t adjudications() const noexcept {
    return adjudications_;
  }

 private:
  std::size_t spans_ = 0;
  std::size_t adjudications_ = 0;
};

}  // namespace redundancy::obs
