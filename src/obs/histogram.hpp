// Log2-bucketed latency histogram with mergeable snapshots.
//
// Bucket b counts samples whose value v satisfies 2^(b-1) < v <= 2^b (bucket
// 0 counts v <= 1), i.e. the bucket index of v > 1 is bit_width(v - 1).
// Recording is three relaxed atomic adds (bucket, count, sum) — cheap enough
// for per-task latencies on the pool hot path. Buckets, count and sum are
// exact integers, so HistogramSnapshot::merge is plain addition and sharded
// campaigns aggregate to byte-identical snapshots regardless of worker count
// or interleaving. Percentiles are estimated by log-linear interpolation
// inside the winning bucket; they are a deterministic function of the
// (exact) bucket counts.
//
// The histogram is sharded like obs::Counter (obs/shard.hpp): each writer
// thread lands on a sticky cache-line-aligned shard holding its own bucket
// array + count + sum, so two workers recording task latencies never touch
// the same lines — the previous single-shard layout made count_/sum_ a
// process-global contention point on every record() (FL001/FL041). A shard
// is ~9 cache lines, so the shard count is capped lower than the counter's
// (16); snapshot() sums shard-wise, which keeps totals exact.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/shard.hpp"
#include "util/cacheline.hpp"

namespace redundancy::obs {

/// Plain-value copy of a Histogram, mergeable and queryable.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Inclusive upper bound of bucket `b` (2^b; the last bucket is +inf).
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t b) noexcept;

  HistogramSnapshot& merge(const HistogramSnapshot& other) noexcept;

  /// Per-bucket difference `*this - earlier` for two snapshots of the SAME
  /// histogram (counts are monotone, so the result is the exact set of
  /// samples recorded between the two snapshot instants). Saturates at zero
  /// per field so a reset() between the snapshots yields empty buckets
  /// instead of wrapped garbage.
  [[nodiscard]] HistogramSnapshot diff(const HistogramSnapshot& earlier)
      const noexcept;

  [[nodiscard]] double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Estimated value at percentile `p` in [0, 100]. Deterministic given the
  /// bucket counts; exact to within one log2 bucket.
  [[nodiscard]] double percentile(double p) const noexcept;

  /// "count=N sum=S mean=M p50=... p95=... p99=..." for logs.
  [[nodiscard]] std::string summary() const;
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  Histogram()
      : mask_(detail::histogram_shards() - 1),
        shards_(new Shard[detail::histogram_shards()]) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one sample (relaxed; never blocks). All three adds hit the
  /// calling thread's own shard.
  void record(std::uint64_t value) noexcept {
    Shard& s = shards_[detail::thread_shard_cookie() & mask_];
    s.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    for (std::size_t i = 0; i <= mask_; ++i) {
      const Shard& s = shards_[i];
      for (std::size_t b = 0; b < kBuckets; ++b) {
        out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
    }
    return out;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      total += shards_[i].count.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (std::size_t i = 0; i <= mask_; ++i) {
      Shard& s = shards_[i];
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t shards() const noexcept { return mask_ + 1; }

  /// Index of the bucket that counts `value`.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;

  /// Layout introspection for tests/util/layout_test.cpp.
  [[nodiscard]] const void* shard_addr(std::size_t i) const noexcept {
    return &shards_[i];
  }
  [[nodiscard]] static constexpr std::size_t shard_stride() noexcept {
    return sizeof(Shard);
  }

 private:
  struct alignas(util::kCacheLine) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  static_assert(sizeof(Shard) % util::kCacheLine == 0,
                "adjacent histogram shards must not share a cache line");

  std::size_t mask_;  ///< shard count - 1 (power of two)
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace redundancy::obs
