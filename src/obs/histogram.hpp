// Log2-bucketed latency histogram with mergeable snapshots.
//
// Bucket b counts samples whose value v satisfies 2^(b-1) < v <= 2^b (bucket
// 0 counts v <= 1), i.e. the bucket index of v > 1 is bit_width(v - 1).
// Recording is one relaxed atomic add on a bucket plus count/sum updates —
// cheap enough for per-task latencies on the pool hot path. Buckets, count
// and sum are exact integers, so HistogramSnapshot::merge is plain addition
// and sharded campaigns aggregate to byte-identical snapshots regardless of
// worker count or interleaving. Percentiles are estimated by log-linear
// interpolation inside the winning bucket; they are a deterministic function
// of the (exact) bucket counts.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace redundancy::obs {

/// Plain-value copy of a Histogram, mergeable and queryable.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Inclusive upper bound of bucket `b` (2^b; the last bucket is +inf).
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t b) noexcept;

  HistogramSnapshot& merge(const HistogramSnapshot& other) noexcept;

  [[nodiscard]] double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Estimated value at percentile `p` in [0, 100]. Deterministic given the
  /// bucket counts; exact to within one log2 bucket.
  [[nodiscard]] double percentile(double p) const noexcept;

  /// "count=N sum=S mean=M p50=... p95=... p99=..." for logs.
  [[nodiscard]] std::string summary() const;
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Record one sample (relaxed; never blocks).
  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  /// Index of the bucket that counts `value`.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace redundancy::obs
