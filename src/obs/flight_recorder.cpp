#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/clock.hpp"
#include "obs/event.hpp"
#include "util/signals.hpp"

namespace redundancy::obs {

namespace detail {
std::atomic<bool> g_flight_enabled{false};
}  // namespace detail

namespace {

/// Registration-path-only lock; the record path never takes it after a
/// thread's first record.
std::mutex g_register_mutex;

/// Crash-dump destination, filled by install_crash_handler. Static storage
/// so the signal handler never touches the heap.
char g_crash_path[512] = {};

/// Plain pointer mirror of instance() for the signal handler — a function-
/// local static's guard variable is not async-signal-safe to race with.
FlightRecorder* g_instance_for_signal = nullptr;

void crash_dump_handler(int sig) {
  if (g_instance_for_signal != nullptr && g_crash_path[0] != '\0') {
    g_instance_for_signal->dump_to_path(g_crash_path);
  }
  // SA_RESETHAND already restored the default disposition; re-raise so the
  // process dies with the original signal (status, core policy intact).
  raise(sig);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

const char* kind_name(std::uint8_t kind) {
  switch (static_cast<FlightKind>(kind)) {
    case FlightKind::span: return "span";
    case FlightKind::adjudication: return "adjudication";
    case FlightKind::gateway: return "gateway";
    case FlightKind::mark: return "mark";
    case FlightKind::none: break;
  }
  return "none";
}

// ---- async-signal-safe formatting helpers -------------------------------
// A dump line is at most ~300 bytes: fixed skeleton plus five u64 fields
// (20 digits each) and a 30-char sanitised name.

struct LineBuf {
  char data[384];
  std::size_t len = 0;

  void put(char c) noexcept {
    if (len < sizeof data) data[len++] = c;
  }
  void put_str(const char* s) noexcept {
    while (*s != '\0') put(*s++);
  }
  void put_u64(std::uint64_t v) noexcept {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }
  /// Name bytes pass through only when plain printable ASCII that needs no
  /// JSON escaping; anything else becomes '_'. Good enough for a black box.
  void put_name(const char* s, std::size_t max) noexcept {
    for (std::size_t i = 0; i < max && s[i] != '\0'; ++i) {
      const char c = s[i];
      const bool plain = c >= 0x20 && c < 0x7F && c != '"' && c != '\\';
      put(plain ? c : '_');
    }
  }
};

std::size_t write_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, data + written, len - written);
    if (n <= 0) break;  // EINTR-or-worse: give up rather than loop forever
    written += static_cast<std::size_t>(n);
  }
  return written;
}

void format_record(LineBuf& line, const FlightRecord& rec,
                   std::size_t thread) noexcept {
  line.len = 0;
  line.put_str("{\"type\":\"flight\",\"kind\":\"");
  line.put_str(kind_name(rec.kind));
  line.put_str("\",\"t_ns\":");
  line.put_u64(rec.t_ns);
  line.put_str(",\"trace\":");
  line.put_u64(rec.trace);
  line.put_str(",\"name\":\"");
  line.put_name(rec.name, sizeof rec.name);
  line.put_str("\",\"a\":");
  line.put_u64(rec.a);
  line.put_str(",\"b\":");
  line.put_u64(rec.b);
  line.put_str(",\"ok\":");
  line.put_str(rec.ok != 0 ? "true" : "false");
  line.put_str(",\"thread\":");
  line.put_u64(thread);
  line.put_str("}\n");
}

void format_header(LineBuf& line, std::size_t threads, std::size_t capacity,
                   std::uint64_t dropped, std::uint64_t t_ns) noexcept {
  line.len = 0;
  line.put_str("{\"type\":\"flight_header\",\"threads\":");
  line.put_u64(threads);
  line.put_str(",\"records_per_thread\":");
  line.put_u64(capacity);
  line.put_str(",\"dropped\":");
  line.put_u64(dropped);
  line.put_str(",\"t_dump_ns\":");
  line.put_u64(t_ns);
  line.put_str("}\n");
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  // Leaked on purpose: the crash handler may fire during static
  // destruction and must still find live rings.
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    g_instance_for_signal = r;
    return r;
  }();
  return *recorder;
}

void FlightRecorder::enable(std::size_t records_per_thread) {
  std::size_t expected = 0;
  capacity_.compare_exchange_strong(expected,
                                    round_up_pow2(records_per_thread),
                                    std::memory_order_acq_rel);
  detail::g_flight_enabled.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() noexcept {
  detail::g_flight_enabled.store(false, std::memory_order_relaxed);
}

FlightRecorder::ThreadRing* FlightRecorder::register_thread() noexcept {
  std::lock_guard lock(g_register_mutex);
  const std::size_t index = ring_count_.load(std::memory_order_relaxed);
  if (index >= kMaxThreads) return nullptr;
  const std::size_t capacity = capacity_.load(std::memory_order_acquire);
  auto* ring = new ThreadRing();        // leaked: see class comment
  ring->records = new FlightRecord[capacity]();  // leaked
  rings_[index] = ring;
  ring_count_.store(index + 1, std::memory_order_release);
  return ring;
}

FlightRecorder::ThreadRing* FlightRecorder::ring_for_this_thread() noexcept {
  // One cached pointer per (thread, process): rings are never deregistered,
  // so the cache can only go from null to a stable value. nullptr after
  // registration failed means "over the thread cap" and stays sticky via
  // the registered flag.
  thread_local ThreadRing* ring = nullptr;
  thread_local bool registered = false;
  if (!registered) {
    ring = register_thread();
    registered = true;
    if (ring == nullptr) dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return ring;
}

void FlightRecorder::record(FlightKind kind, std::string_view name,
                            std::uint64_t trace, std::uint64_t a,
                            std::uint64_t b, bool ok) noexcept {
  if (!flight_enabled()) return;
  ThreadRing* ring = ring_for_this_thread();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t mask = capacity_.load(std::memory_order_acquire) - 1;
  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  FlightRecord& rec = ring->records[h & mask];
  rec.t_ns = now_ns();
  rec.trace = trace;
  rec.a = a;
  rec.b = b;
  const std::size_t n = std::min(name.size(), sizeof rec.name - 1);
  std::memcpy(rec.name, name.data(), n);
  std::memset(rec.name + n, 0, sizeof rec.name - n);
  rec.ok = ok ? 1 : 0;
  rec.kind = static_cast<std::uint8_t>(kind);
  // Publish after the fill so a racy dump sees either the old record or
  // this one, not a head pointing at uninitialised memory.
  ring->head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::record_span(const SpanRecord& span) noexcept {
  record(FlightKind::span, span.name, span.trace_id, span.duration_ns(),
         span.span_id, span.ok);
}

void FlightRecorder::record_adjudication(
    const AdjudicationEvent& event) noexcept {
  record(FlightKind::adjudication, event.technique, event.trace_id,
         event.ballots_failed, event.electorate, event.accepted);
}

std::string FlightRecorder::dump_jsonl() const {
  struct Tagged {
    FlightRecord rec;
    std::size_t thread;
  };
  const std::size_t capacity = capacity_.load(std::memory_order_acquire);
  const std::size_t threads = ring_count_.load(std::memory_order_acquire);
  std::vector<Tagged> all;
  all.reserve(capacity * threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const ThreadRing* ring = rings_[t];
    if (ring == nullptr || ring->records == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count =
        head < capacity ? head : static_cast<std::uint64_t>(capacity);
    for (std::uint64_t i = head - count; i < head; ++i) {
      all.push_back({ring->records[i & (capacity - 1)], t});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& x, const Tagged& y) {
                     return x.rec.t_ns < y.rec.t_ns;
                   });
  LineBuf line;
  std::ostringstream out;
  format_header(line, threads, capacity, dropped(), now_ns());
  out.write(line.data, static_cast<std::streamsize>(line.len));
  for (const Tagged& t : all) {
    if (t.rec.kind == static_cast<std::uint8_t>(FlightKind::none)) continue;
    format_record(line, t.rec, t.thread);
    out.write(line.data, static_cast<std::streamsize>(line.len));
  }
  return out.str();
}

std::size_t FlightRecorder::dump_to_fd(int fd) const noexcept {
  LineBuf line;
  std::size_t total = 0;
  const std::size_t capacity = capacity_.load(std::memory_order_acquire);
  const std::size_t threads = ring_count_.load(std::memory_order_acquire);
  format_header(line, threads, capacity, dropped(), now_ns());
  total += write_all(fd, line.data, line.len);
  if (capacity == 0) return total;
  for (std::size_t t = 0; t < threads; ++t) {
    const ThreadRing* ring = rings_[t];
    if (ring == nullptr || ring->records == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count =
        head < capacity ? head : static_cast<std::uint64_t>(capacity);
    // Oldest-first within the ring; cross-ring ordering is left to tools
    // (tracetool flight sorts by t_ns).
    for (std::uint64_t i = head - count; i < head; ++i) {
      const FlightRecord& rec = ring->records[i & (capacity - 1)];
      if (rec.kind == static_cast<std::uint8_t>(FlightKind::none)) continue;
      format_record(line, rec, t);
      total += write_all(fd, line.data, line.len);
    }
  }
  return total;
}

bool FlightRecorder::dump_to_path(const char* path) const noexcept {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  dump_to_fd(fd);
  ::close(fd);
  return true;
}

void FlightRecorder::install_crash_handler(const char* path) {
  if (capacity_.load(std::memory_order_acquire) == 0) enable();
  std::strncpy(g_crash_path, path, sizeof g_crash_path - 1);
  g_crash_path[sizeof g_crash_path - 1] = '\0';
  g_instance_for_signal = this;
  util::install_crash_signals(&crash_dump_handler);
}

void FlightRecorder::reset() noexcept {
  const std::size_t capacity = capacity_.load(std::memory_order_acquire);
  const std::size_t threads = ring_count_.load(std::memory_order_acquire);
  for (std::size_t t = 0; t < threads; ++t) {
    ThreadRing* ring = rings_[t];
    if (ring == nullptr || ring->records == nullptr) continue;
    for (std::size_t i = 0; i < capacity; ++i) ring->records[i] = {};
    ring->head.store(0, std::memory_order_release);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace redundancy::obs
