#include "obs/histogram.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace redundancy::obs {

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value <= 1) return 0;
  const auto b = static_cast<std::size_t>(std::bit_width(value - 1));
  return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t HistogramSnapshot::bucket_bound(std::size_t b) noexcept {
  if (b >= kBuckets - 1) return UINT64_MAX;
  return std::uint64_t{1} << b;
}

HistogramSnapshot& HistogramSnapshot::merge(
    const HistogramSnapshot& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  return *this;
}

HistogramSnapshot HistogramSnapshot::diff(
    const HistogramSnapshot& earlier) const noexcept {
  HistogramSnapshot out;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out.buckets[b] =
        buckets[b] >= earlier.buckets[b] ? buckets[b] - earlier.buckets[b] : 0;
  }
  out.count = count >= earlier.count ? count - earlier.count : 0;
  out.sum = sum >= earlier.sum ? sum - earlier.sum : 0;
  return out;
}

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target sample (1-based, ceil): the smallest bucket whose
  // cumulative count reaches it holds the percentile.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += buckets[b];
    if (cumulative < target) continue;
    // Log-linear interpolation between the bucket's bounds by the target's
    // position inside the bucket.
    const double lo = b == 0 ? 0.0 : static_cast<double>(bucket_bound(b - 1));
    const double hi = b >= kBuckets - 1
                          ? static_cast<double>(std::uint64_t{1} << 63)
                          : static_cast<double>(bucket_bound(b));
    const double frac = static_cast<double>(target - before) /
                        static_cast<double>(buckets[b]);
    return lo + (hi - lo) * frac;
  }
  return static_cast<double>(bucket_bound(kBuckets - 2));
}

std::string HistogramSnapshot::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "count=%llu sum=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f",
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(sum), mean(), percentile(50.0),
                percentile(95.0), percentile(99.0));
  return buf;
}

}  // namespace redundancy::obs
