#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace redundancy::obs {

namespace {

std::string sanitise(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// `{technique="nvp"}` (or "" when unlabelled); `extra` appends one more
/// label pair, used for the histogram `le` label. A label spec containing
/// '=' carries its own key ("loop=0" renders as `loop="0"`); a bare value
/// keeps the historical `technique=` key.
std::string label_set(const std::string& technique,
                      const std::string& extra = {}) {
  if (technique.empty() && extra.empty()) return {};
  std::string out{"{"};
  if (!technique.empty()) {
    const std::size_t eq = technique.find('=');
    if (eq == std::string::npos) {
      out += "technique=\"" + escape_label(technique) + "\"";
    } else {
      out += sanitise(technique.substr(0, eq)) + "=\"" +
             escape_label(technique.substr(eq + 1)) + "\"";
    }
    if (!extra.empty()) out += ",";
  }
  out += extra;
  out += "}";
  return out;
}

std::string exposition_key(const std::string& name,
                           const std::string& technique) {
  return technique.empty() ? name : name + label_set(technique);
}

/// Sorted (family, technique, metric*) view for deterministic rendering.
template <typename Entry>
std::vector<const Entry*> sorted_view(const std::vector<Entry>& entries) {
  std::vector<const Entry*> view;
  view.reserve(entries.size());
  for (const auto& e : entries) view.push_back(&e);
  std::sort(view.begin(), view.end(), [](const Entry* a, const Entry* b) {
    const std::string fa = sanitise(a->name), fb = sanitise(b->name);
    if (fa != fb) return fa < fb;
    return a->technique < b->technique;
  });
  return view;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: pool workers hold cached Counter/Histogram pointers
  // and may still bump them during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& technique) {
  std::lock_guard lock(mutex_);
  for (auto& e : counters_) {
    if (e.name == name && e.technique == technique) return *e.metric;
  }
  counters_.push_back({name, technique, std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& technique) {
  std::lock_guard lock(mutex_);
  for (auto& e : histograms_) {
    if (e.name == name && e.technique == technique) return *e.metric;
  }
  histograms_.push_back({name, technique, std::make_unique<Histogram>()});
  return *histograms_.back().metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& technique) {
  std::lock_guard lock(mutex_);
  for (auto& e : gauges_) {
    if (e.name == name && e.technique == technique) return *e.metric;
  }
  gauges_.push_back({name, technique, std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

void MetricsRegistry::render_prometheus(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  std::string prev_family;
  for (const auto* e : sorted_view(counters_)) {
    const std::string fam = sanitise(e->name);
    if (fam != prev_family) {
      out << "# HELP " << fam << "_total redundancy counter " << fam << "\n";
      out << "# TYPE " << fam << "_total counter\n";
      prev_family = fam;
    }
    out << fam << "_total" << label_set(e->technique) << " "
        << e->metric->total() << "\n";
  }
  prev_family.clear();
  for (const auto* e : sorted_view(gauges_)) {
    const std::string fam = sanitise(e->name);
    if (fam != prev_family) {
      out << "# HELP " << fam << " redundancy gauge " << fam << "\n";
      out << "# TYPE " << fam << " gauge\n";
      prev_family = fam;
    }
    char value[64];
    std::snprintf(value, sizeof value, "%.9g", e->metric->value());
    out << fam << label_set(e->technique) << " " << value << "\n";
  }
  prev_family.clear();
  for (const auto* e : sorted_view(histograms_)) {
    const std::string fam = sanitise(e->name);
    if (fam != prev_family) {
      out << "# HELP " << fam << " redundancy histogram " << fam << "\n";
      out << "# TYPE " << fam << " histogram\n";
      prev_family = fam;
    }
    const HistogramSnapshot s = e->metric->snapshot();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      cumulative += s.buckets[b];
      // Only emit buckets up to the last occupied one; +Inf carries the rest.
      if (s.buckets[b] == 0) continue;
      out << fam << "_bucket"
          << label_set(e->technique,
                       "le=\"" +
                           std::to_string(HistogramSnapshot::bucket_bound(b)) +
                           "\"")
          << " " << cumulative << "\n";
    }
    out << fam << "_bucket" << label_set(e->technique, "le=\"+Inf\"") << " "
        << s.count << "\n";
    out << fam << "_sum" << label_set(e->technique) << " " << s.sum << "\n";
    out << fam << "_count" << label_set(e->technique) << " " << s.count
        << "\n";
  }
}

std::string MetricsRegistry::render_prometheus_text() const {
  std::ostringstream out;
  render_prometheus(out);
  return out.str();
}

bool MetricsRegistry::write_prometheus_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out.is_open()) return false;
  render_prometheus(out);
  return true;
}

void MetricsRegistry::reset_all() {
  std::lock_guard lock(mutex_);
  for (auto& e : counters_) e.metric->reset();
  for (auto& e : histograms_) e.metric->reset();
  for (auto& e : gauges_) e.metric->reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_totals() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& e : counters_) {
    out.emplace_back(exposition_key(e.name, e.technique), e.metric->total());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histogram_snapshots() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& e : histograms_) {
    out.emplace_back(exposition_key(e.name, e.technique),
                     e.metric->snapshot());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& e : gauges_) {
    out.emplace_back(exposition_key(e.name, e.technique), e.metric->value());
  }
  return out;
}

}  // namespace redundancy::obs
