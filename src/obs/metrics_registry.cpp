#include "obs/metrics_registry.hpp"

#include <fstream>
#include <ostream>

namespace redundancy::obs {

namespace {

std::string sanitise(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: pool workers hold cached Counter/Histogram pointers
  // and may still bump them during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  for (auto& [n, c] : counters_) {
    if (n == name) return *c;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return *h;
  }
  histograms_.emplace_back(name, std::make_unique<Histogram>());
  return *histograms_.back().second;
}

void MetricsRegistry::render_prometheus(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) {
    const std::string p = sanitise(name);
    out << "# TYPE " << p << "_total counter\n";
    out << p << "_total " << c->total() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = sanitise(name);
    const HistogramSnapshot s = h->snapshot();
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      cumulative += s.buckets[b];
      // Only emit buckets up to the last occupied one; +Inf carries the rest.
      if (s.buckets[b] == 0) continue;
      out << p << "_bucket{le=\"" << HistogramSnapshot::bucket_bound(b)
          << "\"} " << cumulative << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << s.count << "\n";
    out << p << "_sum " << s.sum << "\n";
    out << p << "_count " << s.count << "\n";
  }
}

bool MetricsRegistry::write_prometheus_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out.is_open()) return false;
  render_prometheus(out);
  return true;
}

void MetricsRegistry::reset_all() {
  std::lock_guard lock(mutex_);
  for (auto& [n, c] : counters_) c->reset();
  for (auto& [n, h] : histograms_) h->reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_totals() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [n, c] : counters_) out.emplace_back(n, c->total());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histogram_snapshots() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [n, h] : histograms_) out.emplace_back(n, h->snapshot());
  return out;
}

}  // namespace redundancy::obs
