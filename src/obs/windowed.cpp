#include "obs/windowed.hpp"

namespace redundancy::obs {

namespace {

std::size_t clamp_slots(std::size_t slots) { return slots == 0 ? 1 : slots; }

/// A ring slot whose epoch ended at `t_end` still overlaps the window
/// (now - span, now] when it ended after the window's left edge.
bool slot_in_window(std::uint64_t t_end, std::uint64_t span,
                    std::uint64_t now) noexcept {
  return t_end + span > now;
}

}  // namespace

WindowedHistogram::WindowedHistogram(const Histogram& source,
                                     WindowOptions options)
    : source_(&source),
      options_{options.epoch_ns == 0 ? WindowOptions{}.epoch_ns
                                     : options.epoch_ns,
               clamp_slots(options.slots)},
      ring_(options_.slots),
      // Samples recorded before the wrapper existed belong to no epoch: a
      // wrapper attached to a long-lived registry metric must not surface
      // that entire history as its first "live partial epoch".
      base_(source.snapshot()) {}

void WindowedHistogram::rotate(std::uint64_t now_ns) {
  const HistogramSnapshot current = source_->snapshot();
  std::lock_guard lock(mutex_);
  Slot& slot = ring_[head_];
  slot.delta = current.diff(base_);
  slot.t_end_ns = now_ns;
  base_ = current;
  head_ = (head_ + 1) % ring_.size();
  ++rotations_;
}

HistogramSnapshot WindowedHistogram::window(std::uint64_t span_ns,
                                            std::uint64_t now_ns) const {
  const HistogramSnapshot current = source_->snapshot();
  std::lock_guard lock(mutex_);
  HistogramSnapshot out = current.diff(base_);  // live partial epoch
  const std::size_t n = ring_.size();
  const std::size_t filled =
      rotations_ < n ? static_cast<std::size_t>(rotations_) : n;
  for (std::size_t i = 0; i < filled; ++i) {
    // Newest first: slot head_-1 closed most recently.
    const Slot& slot = ring_[(head_ + n - 1 - i) % n];
    if (!slot_in_window(slot.t_end_ns, span_ns, now_ns)) break;
    out.merge(slot.delta);
  }
  return out;
}

std::uint64_t WindowedHistogram::rotations() const {
  std::lock_guard lock(mutex_);
  return rotations_;
}

WindowedCounter::WindowedCounter(const Counter& source, WindowOptions options)
    : source_(&source),
      options_{options.epoch_ns == 0 ? WindowOptions{}.epoch_ns
                                     : options.epoch_ns,
               clamp_slots(options.slots)},
      ring_(options_.slots),
      base_(source.total()) {}  // pre-existing counts are not window events

void WindowedCounter::rotate(std::uint64_t now_ns) {
  const std::uint64_t current = source_->total();
  std::lock_guard lock(mutex_);
  Slot& slot = ring_[head_];
  slot.delta = current >= base_ ? current - base_ : 0;
  slot.t_end_ns = now_ns;
  base_ = current;
  head_ = (head_ + 1) % ring_.size();
  ++rotations_;
}

std::uint64_t WindowedCounter::window(std::uint64_t span_ns,
                                      std::uint64_t now_ns) const {
  const std::uint64_t current = source_->total();
  std::lock_guard lock(mutex_);
  std::uint64_t out = current >= base_ ? current - base_ : 0;
  const std::size_t n = ring_.size();
  const std::size_t filled =
      rotations_ < n ? static_cast<std::size_t>(rotations_) : n;
  for (std::size_t i = 0; i < filled; ++i) {
    const Slot& slot = ring_[(head_ + n - 1 - i) % n];
    if (!slot_in_window(slot.t_end_ns, span_ns, now_ns)) break;
    out += slot.delta;
  }
  return out;
}

std::uint64_t WindowedCounter::rotations() const {
  std::lock_guard lock(mutex_);
  return rotations_;
}

}  // namespace redundancy::obs
