// Umbrella header for instrumentation sites.
//
// Typical usage at a redundancy decision point:
//
//   obs::ScopedSpan span{"nvp.run"};               // sampled request span
//   ...fan variants out, passing span.context()...
//   obs::ScopedSpan child{"variant", ctx};         // child, any thread
//   obs::record_adjudication(span.context(), ev);  // why the verdict
//   obs::counter("nvp.requests").add();            // exact, always-on
//   obs::histogram("nvp.request_ns").record(dt);
//
// Every call is a no-op unless obs::enabled() (and compiles away entirely
// under -DREDUNDANCY_OBS_NOOP).
#pragma once

#include <string>

#include "obs/clock.hpp"
#include "obs/counter.hpp"
#include "obs/event.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/gauge.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/recorder.hpp"
#include "obs/sink.hpp"
#include "obs/windowed.hpp"

namespace redundancy::obs {

/// Find-or-create a named metric in the process-wide registry. Call sites
/// should cache the reference (e.g. in a function-local static) — it stays
/// valid for the life of the process. Pass `technique` to register one
/// labelled series per redundancy technique under a shared family name
/// (rendered as `name{technique="nvp"}`) instead of mangling the technique
/// into the metric name.
[[nodiscard]] inline Counter& counter(const std::string& name,
                                      const std::string& technique = "") {
  return MetricsRegistry::instance().counter(name, technique);
}
[[nodiscard]] inline Histogram& histogram(const std::string& name,
                                          const std::string& technique = "") {
  return MetricsRegistry::instance().histogram(name, technique);
}
[[nodiscard]] inline Gauge& gauge(const std::string& name,
                                  const std::string& technique = "") {
  return MetricsRegistry::instance().gauge(name, technique);
}

}  // namespace redundancy::obs
