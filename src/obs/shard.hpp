// Shared sharding policy for the obs:: metric primitives.
//
// Counter and Histogram spread writers over cache-line-aligned shards so
// concurrent hot paths never bump the same line. The shard counts scale
// with the machine instead of a fixed 16 (the PR-4 shape): a 64-way box
// gets 64 counter shards, a 2-core CI runner pays for 4. Both counts are
// powers of two so the sticky per-thread cookie maps to a shard with one
// AND — and because every metric uses the same cookie, a given thread
// lands on the same shard index in every counter and histogram it touches,
// keeping its metric working set at one line per metric.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/cacheline.hpp"

namespace redundancy::obs::detail {

/// Sticky per-thread shard cookie: threads are numbered round-robin at
/// first use; metrics reduce the cookie with `cookie & (shards - 1)`.
[[nodiscard]] inline std::size_t thread_shard_cookie() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

/// Counter shards: power of two covering the hardware thread count,
/// clamped to [4, 64]. A shard is one cache line (8 payload bytes), so
/// even the 64-shard ceiling costs 4 KiB per counter.
[[nodiscard]] inline std::size_t counter_shards() noexcept {
  static const std::size_t n = [] {
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw < 4) hw = 4;
    if (hw > 64) hw = 64;
    return util::round_up_pow2(hw);
  }();
  return n;
}

/// Histogram shards: same scaling, but capped at 16 — a histogram shard
/// carries 64 buckets + count + sum (~9 cache lines), so the cap bounds a
/// large registry at ~9 KiB per histogram instead of ~36 KiB.
[[nodiscard]] inline std::size_t histogram_shards() noexcept {
  const std::size_t n = counter_shards();
  return n < 16 ? n : 16;
}

}  // namespace redundancy::obs::detail
