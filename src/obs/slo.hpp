// Live SLO engine: windowed percentiles, error budgets, burn-rate alerts.
//
// An SLO here is "fraction `availability` of requests in a class succeed
// within `latency_slo_ns`", the shape used throughout SRE practice. The
// tracker keeps, per request class, cumulative good/bad counters and a
// latency histogram in the MetricsRegistry (labelled technique=<class>, so
// /metrics carries the ground truth) wrapped by the obs::Windowed* views.
// On each tick it rotates the windows and evaluates Google-SRE-style
// multi-window multi-burn-rate rules:
//
//   burn(W) = error_rate(W) / (1 - availability)
//
// A rule fires when BOTH its long and short windows burn above threshold —
// the long window gives significance, the short one confirms the problem is
// still happening (fast recovery auto-resolves the alert). The defaults are
// the canonical pair: fast_burn (1h budget in ~1h: 14.4x over 1m confirmed
// by 10s, page-worthy) and slow_burn (6x over 1h confirmed by 5m, ticket-
// worthy). A page-level firing drives the class to SloState::failing and a
// ticket-level one to degraded.
//
// The tracker deliberately lives in obs:: below core::, so it cannot call
// core::HealthTracker directly. Instead each tick emits one synthetic
// AdjudicationEvent per class (technique "slo:<class>") through a caller-
// wired VerdictCallback; live telemetry points that at HealthTracker::
// observe, which makes /healthz degrade while error budget remains — the
// paper's adjudication machinery turned on the service itself. A separate
// BreachCallback fires edge-triggered on escalation to failing, used to
// trigger flight-recorder dumps.
//
// Feeding the tracker: observe() is the direct path (the gateway calls it
// per request). As a TraceSink it also scores spans whose name matches a
// registered class and adjudication verdicts whose technique matches
// (rejected verdict = error, no latency contribution).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/sink.hpp"
#include "obs/windowed.hpp"

namespace redundancy::obs {

class Counter;
class Gauge;
class Histogram;

/// Per-class objective: a request is good iff it succeeded AND finished
/// within latency_slo_ns; at least `availability` of requests must be good.
struct SloTarget {
  std::uint64_t latency_slo_ns = 100'000'000;  ///< 100ms
  double availability = 0.999;                 ///< three nines
};

/// One multi-window burn-rate rule. Fires when burn(long) and burn(short)
/// both exceed `threshold`.
struct BurnRule {
  std::string name;          ///< e.g. "fast_burn"
  std::uint64_t long_ns;     ///< significance window
  std::uint64_t short_ns;    ///< confirmation window
  double threshold;          ///< burn-rate multiple that fires the rule
  bool page;                 ///< page (failing) vs ticket (degraded)
};

/// The canonical SRE-workbook pair for a multi-hour budget.
[[nodiscard]] std::vector<BurnRule> default_burn_rules();

enum class SloState : std::uint8_t { ok = 0, degraded = 1, failing = 2 };
[[nodiscard]] const char* to_string(SloState state) noexcept;

class SloTracker final : public TraceSink {
 public:
  struct Options {
    /// Window rotation cadence and ring depth (defaults cover 1h windows).
    std::uint64_t epoch_ns = 10'000'000'000ull;
    std::size_t slots = 361;
    /// Target applied when a class is auto-registered.
    SloTarget default_target{};
    /// Auto-register classes first seen via observe()/on_span. When false,
    /// unknown classes are ignored.
    bool auto_register = true;
    /// Burn-rate rules; empty = default_burn_rules().
    std::vector<BurnRule> rules;
  };

  /// Synthetic verdict per class per tick (technique "slo:<class>").
  using VerdictCallback = std::function<void(const AdjudicationEvent&)>;
  /// Edge-triggered on a class escalating to failing: (class, rule name).
  using BreachCallback =
      std::function<void(const std::string&, const std::string&)>;

  SloTracker();  ///< all Options defaults
  explicit SloTracker(Options options);
  ~SloTracker() override;

  /// Register (or retarget) a request class. Safe at any time.
  void register_class(std::string_view request_class, SloTarget target);

  /// Score one request against its class target. Auto-registers per
  /// Options::auto_register. `ok=false` is an error regardless of latency.
  void observe(std::string_view request_class, std::uint64_t latency_ns,
               bool ok);

  // TraceSink: spans named exactly like a registered class are scored with
  // their duration; adjudication verdicts whose technique is a registered
  // class count accepted/rejected (no latency). Own "slo:*" synthetic
  // verdicts are ignored to avoid feedback.
  void on_span(const SpanRecord& span) override;
  void on_adjudication(const AdjudicationEvent& event) override;

  /// Rotate every class's windows at `now_ns`, evaluate burn rules, update
  /// gauges, emit verdicts/breaches. Call from the rotation thread
  /// (start()) or directly with synthetic time in tests.
  void tick(std::uint64_t now_ns);

  /// Flat NDJSON snapshot: one {"type":"slo_window",...} line per class per
  /// window and one {"type":"slo_class",...} summary line per class. This
  /// is the body of `GET /slo` and the input of `tracetool slo`.
  [[nodiscard]] std::string snapshot_jsonl(std::uint64_t now_ns) const;

  /// Current state of one class (SloState::ok for unknown classes).
  [[nodiscard]] SloState state(std::string_view request_class) const;
  /// Worst state across all classes.
  [[nodiscard]] SloState overall_state() const;

  void set_verdict_callback(VerdictCallback cb);
  void set_breach_callback(BreachCallback cb);

  /// Start/stop a background thread calling tick(obs::now_ns()) every
  /// epoch. `epoch_override_ns` replaces Options::epoch_ns when nonzero.
  void start(std::uint64_t epoch_override_ns = 0);
  void stop();

  [[nodiscard]] std::uint64_t epoch_ns() const noexcept {
    return options_.epoch_ns;
  }

 private:
  struct ClassState {
    std::string name;
    SloTarget target;
    // Cumulative ground truth, owned by MetricsRegistry (leaked with it).
    Counter* requests = nullptr;
    Counter* errors = nullptr;
    Histogram* latency = nullptr;
    std::unique_ptr<WindowedCounter> w_requests;
    std::unique_ptr<WindowedCounter> w_errors;
    std::unique_ptr<WindowedHistogram> w_latency;
    SloState state = SloState::ok;
    std::uint64_t last_transition_ns = 0;
    std::vector<bool> rule_firing;  ///< parallel to rules_
  };

  ClassState* find_locked(std::string_view request_class);
  const ClassState* find_locked(std::string_view request_class) const;
  ClassState& register_locked(std::string_view request_class,
                              SloTarget target);
  void score(std::string_view request_class, std::uint64_t latency_ns,
             bool ok, bool has_latency);

  Options options_;
  std::vector<BurnRule> rules_;
  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<ClassState>> classes_;
  VerdictCallback verdict_cb_;
  BreachCallback breach_cb_;

  std::thread rotator_;
  std::mutex run_mutex_;
  std::condition_variable run_cv_;
  bool running_ = false;
};

/// Parse "class=latency_ms@availability_pct,..." (the REDUNDANCY_SLO_TARGETS
/// format), e.g. "/fast=5@99.9,nvp.run=10@99". Malformed entries are skipped
/// with a loud stderr warning; returns the valid (class, target) pairs.
[[nodiscard]] std::vector<std::pair<std::string, SloTarget>>
parse_slo_targets(const char* spec);

}  // namespace redundancy::obs
