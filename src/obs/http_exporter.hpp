// obs::HttpExporter — embedded HTTP/1.1 scrape endpoint for live telemetry.
//
// A redundancy layer that serves traffic must expose its adjudicator
// verdicts and variant health *while running*, not only as post-mortem
// files. This is a deliberately small POSIX-socket server: one dedicated
// thread, a bounded accept backlog, connections handled serially (scrapers
// are few and periodic), graceful shutdown on destruction. Routes:
//
//   GET /metrics    — Prometheus text exposition of obs::MetricsRegistry
//                     (same bucketing as the metrics_*.prom artifacts).
//   GET /healthz    — per-technique health; callers wire in a handler
//                     derived from recent adjudication verdicts
//                     (core::HealthTracker). 200 when serving, 503 failing.
//   GET /traces?n=K — tail of the ring of recent root spans as JSONL
//                     (RingTraceSink).
//   GET /slo        — windowed SLO snapshot as flat NDJSON (SloTracker).
//   GET /debug/flight — black-box event dump as JSONL (FlightRecorder).
//
// The exporter never touches the recorder fast path: a scrape reads the
// registry/ring under their own locks. It compiles (and works — counters
// simply read zero) under -DREDUNDANCY_OBS_NOOP.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/http.hpp"

namespace redundancy::obs {

/// What a route handler returns; the exporter adds the status line,
/// Content-Length and Connection: close. The struct itself is the shared
/// net::http::Response — the gateway's handlers return the same type, so
/// a /metrics or /healthz handler is portable between the two servers.
using HttpResponse = net::http::Response;

class HttpExporter {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read the
    /// result from port()).
    std::uint16_t port = 0;
    /// Bounded accept backlog passed to listen(2).
    int backlog = 16;
    /// Override the /metrics body. Default: MetricsRegistry exposition.
    std::function<HttpResponse()> metrics_handler;
    /// Override /healthz. Default: 200 "ok\n" (no health source wired).
    std::function<HttpResponse()> healthz_handler;
    /// Serve /traces?n=K. Default: 404 (no ring sink wired).
    std::function<HttpResponse(std::size_t n)> traces_handler;
    /// Serve /slo (SloTracker::snapshot_jsonl). Default: 404.
    std::function<HttpResponse()> slo_handler;
    /// Serve /debug/flight (FlightRecorder::dump_jsonl). Default: 404.
    std::function<HttpResponse()> flight_handler;
  };

  HttpExporter() = default;
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;
  ~HttpExporter() { stop(); }

  /// Bind, listen and start the serving thread. False if the socket could
  /// not be set up (port in use, no permissions); safe to call once.
  bool start(Options options);

  /// Graceful shutdown: stops accepting, finishes the in-flight connection,
  /// joins the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Actual bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Requests answered since start (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);
  [[nodiscard]] HttpResponse route(const std::string& target);

  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace redundancy::obs
