// obs::Recorder — thread-safe, low-overhead span/event recorder.
//
// Design constraints, in order:
//   1. Disabled cost ~zero. Every instrumentation site is gated on
//      obs::enabled(), a single relaxed atomic load (and with
//      -DREDUNDANCY_OBS_NOOP the whole layer folds away at compile time).
//   2. Enabled cost bounded. Records go into a per-thread buffer (one
//      uncontended mutex + vector push); sinks see them in batches, either
//      when a buffer fills or on an explicit flush(). Root spans are
//      sampled 1-in-sample_every (default 1: trace everything; production
//      drivers raise it), while Counters/Histograms in MetricsRegistry stay
//      exact and always-on.
//   3. Causality survives work stealing. A span's (trace, span) context is
//      an explicit value that instrumentation passes into pool tasks; a
//      variant span records the request span as its parent regardless of
//      which worker ran it.
//
// The Recorder and MetricsRegistry singletons are intentionally leaked so
// pool workers draining tasks during static destruction can still touch
// them safely.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "obs/clock.hpp"
#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace redundancy::obs {

namespace detail {
/// Global on/off switch, read on every instrumentation fast path.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

#ifdef REDUNDANCY_OBS_NOOP
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// True when the observability layer is compiled in and switched on. One
/// relaxed load; with REDUNDANCY_OBS_NOOP the branch is dead code.
[[nodiscard]] inline bool enabled() noexcept {
  return kCompiledIn && detail::g_enabled.load(std::memory_order_relaxed);
}

/// The (trace, span) pair instrumentation threads through pool tasks so
/// child spans keep their parent across threads.
struct SpanContext {
  TraceId trace = 0;
  SpanId span = 0;
  [[nodiscard]] bool active() const noexcept {
    return trace != 0 && trace != kSuppressedTrace;
  }
  /// Sentinel ambient trace meaning "root was not sampled: record nothing
  /// below this point either".
  static constexpr TraceId kSuppressedTrace = UINT64_MAX;
};

/// The calling thread's ambient span context (set by live ScopedSpans).
[[nodiscard]] SpanContext current_context() noexcept;

class Recorder {
 public:
  /// Process-wide recorder (leaked singleton; see header comment).
  static Recorder& instance();

  void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
  }

  /// Sample 1 in `n` root spans (n >= 1; 1 = trace every request).
  /// Counters and histograms are unaffected by sampling.
  void set_sample_every(std::uint64_t n) noexcept {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }
  /// Draw the sampling decision for the next root span.
  [[nodiscard]] bool sample_next_trace() noexcept {
    const std::uint64_t n = sample_every();
    if (n <= 1) return true;
    return trace_counter_.fetch_add(1, std::memory_order_relaxed) % n == 0;
  }

  void add_sink(std::shared_ptr<TraceSink> sink);
  void clear_sinks();
  [[nodiscard]] std::size_t sink_count() const noexcept {
    return sink_count_.load(std::memory_order_acquire);
  }

  [[nodiscard]] TraceId next_trace_id() noexcept {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] SpanId next_span_id() noexcept {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Buffer one record on the calling thread. Drops when no sink is
  /// attached (nothing would ever drain the buffers).
  void record(SpanRecord span);
  void record(AdjudicationEvent event);

  /// Drain every thread's buffer into the sinks (in each thread's record
  /// order), then flush the sinks. Call after quiescing the workload —
  /// records from threads still actively recording may land in the next
  /// flush.
  void flush();

 private:
  Recorder();

  using Item = std::variant<SpanRecord, AdjudicationEvent>;
  struct ThreadBuffer {
    std::mutex m;
    std::vector<Item> items;
  };
  /// Records buffered per thread before an inline drain kicks in.
  static constexpr std::size_t kDrainBatch = 512;

  [[nodiscard]] ThreadBuffer& local_buffer();
  void push(Item item);
  void drain(ThreadBuffer& buffer);

  std::atomic<std::uint64_t> sample_every_{1};
  std::atomic<std::uint64_t> trace_counter_{0};
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};

  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;

  mutable std::mutex sinks_mutex_;
  std::vector<std::shared_ptr<TraceSink>> sinks_;
  std::atomic<std::size_t> sink_count_{0};
};

/// RAII span. Constructed cheaply when the layer is disabled (one relaxed
/// load, no allocation); when active, records itself on destruction.
class ScopedSpan {
 public:
  /// Root-or-nested span in the calling thread's ambient context: inherits
  /// the ambient (trace, span) as parent, or starts a new (sampled) trace
  /// when there is none.
  explicit ScopedSpan(std::string_view name) {
    if (enabled()) init_ambient(name);
  }

  /// Cross-thread child span: explicit parent context (pass the request
  /// span's context() into the pool task). Inactive when `ctx` is.
  ScopedSpan(std::string_view name, SpanContext ctx) {
    if (enabled() && ctx.active()) init_child(name, ctx);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (restore_ || active_) finish();
  }

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] SpanContext context() const noexcept {
    return active_ ? SpanContext{rec_.trace_id, rec_.span_id} : SpanContext{};
  }

  /// Owner-thread only; no-ops when inactive.
  void set_ok(bool ok) noexcept {
    if (active_) rec_.ok = ok;
  }
  void set_detail(std::string_view detail) {
    if (active_) rec_.detail.assign(detail);
  }

 private:
  void init_ambient(std::string_view name);
  void init_child(std::string_view name, SpanContext ctx);
  void finish();

  SpanRecord rec_;
  SpanContext prev_;
  bool restore_ = false;  ///< ambient context was changed; undo in dtor
  bool active_ = false;
};

/// Emit an adjudication event under `ctx` (no-op when disabled or when the
/// context is inactive, e.g. an unsampled request). Fills trace/parent/time.
void record_adjudication(SpanContext ctx, AdjudicationEvent event);

}  // namespace redundancy::obs
