#include "obs/sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace redundancy::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string to_jsonl(const SpanRecord& span) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"span\",\"trace\":%" PRIu64 ",\"span\":%" PRIu64
                ",\"parent\":%" PRIu64 ",\"t_start_ns\":%" PRIu64
                ",\"t_end_ns\":%" PRIu64 ",\"ok\":%s",
                span.trace_id, span.span_id, span.parent_id, span.t_start_ns,
                span.t_end_ns, span.ok ? "true" : "false");
  std::string out{buf};
  out += ",\"name\":\"" + json_escape(span.name) + "\"";
  out += ",\"detail\":\"" + json_escape(span.detail) + "\"}";
  return out;
}

std::string to_jsonl(const AdjudicationEvent& e) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"adjudication\",\"trace\":%" PRIu64
                ",\"parent\":%" PRIu64 ",\"t_ns\":%" PRIu64
                ",\"round\":%zu,\"electorate\":%zu,\"ballots_seen\":%zu,"
                "\"ballots_failed\":%zu,\"stragglers_cancelled\":%zu,"
                "\"accepted\":%s",
                e.trace_id, e.parent_id, e.t_ns, e.round, e.electorate,
                e.ballots_seen, e.ballots_failed, e.stragglers_cancelled,
                e.accepted ? "true" : "false");
  std::string out{buf};
  out += ",\"technique\":\"" + json_escape(e.technique) + "\"";
  out += ",\"verdict\":\"" + json_escape(e.verdict) + "\"";
  out += ",\"winner\":\"" + json_escape(e.winner) + "\"}";
  return out;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (file->is_open()) {
    owned_ = std::move(file);
    out_ = owned_.get();
  }
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::on_span(const SpanRecord& span) {
  if (out_ != nullptr) *out_ << to_jsonl(span) << '\n';
}

void JsonlTraceSink::on_adjudication(const AdjudicationEvent& event) {
  if (out_ != nullptr) *out_ << to_jsonl(event) << '\n';
}

void JsonlTraceSink::flush() {
  if (out_ != nullptr) out_->flush();
}

}  // namespace redundancy::obs
