#include "obs/sink.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace redundancy::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string to_jsonl(const SpanRecord& span) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"span\",\"trace\":%" PRIu64 ",\"span\":%" PRIu64
                ",\"parent\":%" PRIu64 ",\"t_start_ns\":%" PRIu64
                ",\"t_end_ns\":%" PRIu64 ",\"ok\":%s",
                span.trace_id, span.span_id, span.parent_id, span.t_start_ns,
                span.t_end_ns, span.ok ? "true" : "false");
  std::string out{buf};
  out += ",\"name\":\"" + json_escape(span.name) + "\"";
  out += ",\"detail\":\"" + json_escape(span.detail) + "\"}";
  return out;
}

std::string to_jsonl(const AdjudicationEvent& e) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"adjudication\",\"trace\":%" PRIu64
                ",\"parent\":%" PRIu64 ",\"t_ns\":%" PRIu64
                ",\"round\":%zu,\"electorate\":%zu,\"ballots_seen\":%zu,"
                "\"ballots_failed\":%zu,\"stragglers_cancelled\":%zu,"
                "\"accepted\":%s",
                e.trace_id, e.parent_id, e.t_ns, e.round, e.electorate,
                e.ballots_seen, e.ballots_failed, e.stragglers_cancelled,
                e.accepted ? "true" : "false");
  std::string out{buf};
  out += ",\"technique\":\"" + json_escape(e.technique) + "\"";
  out += ",\"verdict\":\"" + json_escape(e.verdict) + "\"";
  out += ",\"winner\":\"" + json_escape(e.winner) + "\"}";
  return out;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (file->is_open()) {
    owned_ = std::move(file);
    out_ = owned_.get();
  }
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::on_span(const SpanRecord& span) {
  append_line(to_jsonl(span));
}

void JsonlTraceSink::on_adjudication(const AdjudicationEvent& event) {
  append_line(to_jsonl(event));
}

void JsonlTraceSink::append_line(std::string line) {
  if (out_ == nullptr) return;
  pending_ += line;
  pending_ += '\n';
  if (pending_.size() >= kFlushBytes) flush();
}

void JsonlTraceSink::flush() {
  if (out_ == nullptr) return;
  if (!pending_.empty()) {
    out_->write(pending_.data(),
                static_cast<std::streamsize>(pending_.size()));
    pending_.clear();
  }
  out_->flush();
}

RingTraceSink::RingTraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RingTraceSink::on_span(const SpanRecord& span) {
  if (span.parent_id != 0) return;
  std::lock_guard lock(mutex_);
  lines_.push_back(to_jsonl(span));
  while (lines_.size() > capacity_) lines_.pop_front();
}

std::vector<std::string> RingTraceSink::tail(std::size_t n) const {
  std::lock_guard lock(mutex_);
  const std::size_t take = n < lines_.size() ? n : lines_.size();
  return {lines_.end() - static_cast<std::ptrdiff_t>(take), lines_.end()};
}

std::size_t RingTraceSink::size() const {
  std::lock_guard lock(mutex_);
  return lines_.size();
}

}  // namespace redundancy::obs
