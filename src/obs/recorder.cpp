#include "obs/recorder.hpp"

#include <random>
#include <utility>

#include "obs/flight_recorder.hpp"

namespace redundancy::obs {

namespace {

/// Ambient per-thread span context; ScopedSpan saves and restores it.
thread_local SpanContext tls_context;

}  // namespace

SpanContext current_context() noexcept { return tls_context; }

Recorder::Recorder() {
  // Trace files are opened in append mode and are routinely written by
  // several processes in sequence (one campaign driver per technique into
  // one combined *.trace.jsonl). Starting each process's id space at a
  // random offset keeps (trace, span) ids unique across those appends.
  // The offset leaves 2^34 ids of head room, far from the
  // SpanContext::kSuppressedTrace sentinel at UINT64_MAX.
  std::random_device entropy;
  const std::uint64_t base =
      ((static_cast<std::uint64_t>(entropy()) & 0x3FFFFFFFu) << 34) | 1u;
  next_trace_.store(base, std::memory_order_relaxed);
  next_span_.store(base, std::memory_order_relaxed);
}

Recorder& Recorder::instance() {
  // Leaked on purpose: pool workers may record during static destruction.
  static Recorder* recorder = new Recorder();
  return *recorder;
}

void Recorder::add_sink(std::shared_ptr<TraceSink> sink) {
  std::lock_guard lock(sinks_mutex_);
  sinks_.push_back(std::move(sink));
  sink_count_.store(sinks_.size(), std::memory_order_release);
}

void Recorder::clear_sinks() {
  std::lock_guard lock(sinks_mutex_);
  sinks_.clear();
  sink_count_.store(0, std::memory_order_release);
}

Recorder::ThreadBuffer& Recorder::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard lock(buffers_mutex_);
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void Recorder::push(Item item) {
  if (sink_count() == 0) return;  // nothing would drain the buffer
  ThreadBuffer& buffer = local_buffer();
  bool full;
  {
    std::lock_guard lock(buffer.m);
    buffer.items.push_back(std::move(item));
    full = buffer.items.size() >= kDrainBatch;
  }
  if (full) drain(buffer);
}

void Recorder::record(SpanRecord span) {
  // The flight recorder sees every record regardless of sinks or sampling
  // downstream of this point — the black box must not depend on a sink
  // being attached when the process dies.
  if (flight_enabled()) FlightRecorder::instance().record_span(span);
  push(Item{std::move(span)});
}

void Recorder::record(AdjudicationEvent event) {
  if (flight_enabled()) {
    FlightRecorder::instance().record_adjudication(event);
  }
  push(Item{std::move(event)});
}

void Recorder::drain(ThreadBuffer& buffer) {
  std::vector<Item> items;
  {
    std::lock_guard lock(buffer.m);
    items.swap(buffer.items);
  }
  if (items.empty()) return;
  std::lock_guard lock(sinks_mutex_);
  for (const Item& item : items) {
    for (const auto& sink : sinks_) {
      if (const auto* span = std::get_if<SpanRecord>(&item)) {
        sink->on_span(*span);
      } else {
        sink->on_adjudication(std::get<AdjudicationEvent>(item));
      }
    }
  }
}

void Recorder::flush() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard lock(buffers_mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) drain(*buffer);
  std::lock_guard lock(sinks_mutex_);
  for (const auto& sink : sinks_) sink->flush();
}

void ScopedSpan::init_ambient(std::string_view name) {
  Recorder& rec = Recorder::instance();
  prev_ = tls_context;
  if (prev_.trace == SpanContext::kSuppressedTrace) {
    return;  // inside an unsampled request: stay silent, nothing to restore
  }
  if (prev_.trace == 0) {
    // Root span: this is where the sampling decision is drawn.
    if (!rec.sample_next_trace()) {
      tls_context = SpanContext{SpanContext::kSuppressedTrace, 0};
      restore_ = true;
      return;
    }
    rec_.trace_id = rec.next_trace_id();
    rec_.parent_id = 0;
  } else {
    rec_.trace_id = prev_.trace;
    rec_.parent_id = prev_.span;
  }
  rec_.span_id = rec.next_span_id();
  rec_.name.assign(name);
  rec_.t_start_ns = now_ns();
  tls_context = SpanContext{rec_.trace_id, rec_.span_id};
  restore_ = true;
  active_ = true;
}

void ScopedSpan::init_child(std::string_view name, SpanContext ctx) {
  Recorder& rec = Recorder::instance();
  rec_.trace_id = ctx.trace;
  rec_.parent_id = ctx.span;
  rec_.span_id = rec.next_span_id();
  rec_.name.assign(name);
  rec_.t_start_ns = now_ns();
  prev_ = tls_context;
  tls_context = SpanContext{rec_.trace_id, rec_.span_id};
  restore_ = true;
  active_ = true;
}

void ScopedSpan::finish() {
  if (restore_) tls_context = prev_;
  if (active_) {
    rec_.t_end_ns = now_ns();
    Recorder::instance().record(std::move(rec_));
  }
  restore_ = false;
  active_ = false;
}

void record_adjudication(SpanContext ctx, AdjudicationEvent event) {
  if (!enabled() || !ctx.active()) return;
  event.trace_id = ctx.trace;
  event.parent_id = ctx.span;
  if (event.t_ns == 0) event.t_ns = now_ns();
  Recorder::instance().record(std::move(event));
}

}  // namespace redundancy::obs
