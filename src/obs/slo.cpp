#include "obs/slo.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/clock.hpp"
#include "obs/metrics_registry.hpp"

namespace redundancy::obs {

namespace {

/// The window spans reported by snapshot_jsonl and the window gauges.
struct NamedWindow {
  const char* name;
  std::uint64_t span_ns;
};
constexpr NamedWindow kWindows[] = {
    {"10s", 10'000'000'000ull},
    {"1m", 60'000'000'000ull},
    {"5m", 300'000'000'000ull},
    {"1h", 3'600'000'000'000ull},
};

double error_rate(std::uint64_t errors, std::uint64_t total) noexcept {
  return total == 0 ? 0.0
                    : static_cast<double>(errors) / static_cast<double>(total);
}

/// Fraction of the error budget consumed per unit of traffic, normalised so
/// 1.0 = "burning exactly the budget". Zero traffic burns nothing.
double burn_rate(std::uint64_t errors, std::uint64_t total,
                 double availability) noexcept {
  const double budget = 1.0 - availability;
  if (budget <= 0.0) return errors > 0 ? 1e9 : 0.0;  // zero-budget target
  return error_rate(errors, total) / budget;
}

/// JSON number formatting for the NDJSON snapshot (%.6g keeps ratios
/// readable and round-trips through the flat parser's strtod).
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string json_escape_view(std::string_view s) {
  return json_escape(std::string(s));
}

}  // namespace

std::vector<BurnRule> default_burn_rules() {
  return {
      {"fast_burn", 60'000'000'000ull, 10'000'000'000ull, 14.4, true},
      {"slow_burn", 3'600'000'000'000ull, 300'000'000'000ull, 6.0, false},
  };
}

const char* to_string(SloState state) noexcept {
  switch (state) {
    case SloState::ok: return "ok";
    case SloState::degraded: return "degraded";
    case SloState::failing: return "failing";
  }
  return "ok";
}

SloTracker::SloTracker() : SloTracker(Options{}) {}

SloTracker::SloTracker(Options options)
    : options_(std::move(options)),
      rules_(options_.rules.empty() ? default_burn_rules() : options_.rules) {
  if (options_.epoch_ns == 0) options_.epoch_ns = Options{}.epoch_ns;
  if (options_.slots == 0) options_.slots = Options{}.slots;
}

SloTracker::~SloTracker() { stop(); }

SloTracker::ClassState* SloTracker::find_locked(
    std::string_view request_class) {
  for (auto& c : classes_) {
    if (c->name == request_class) return c.get();
  }
  return nullptr;
}

const SloTracker::ClassState* SloTracker::find_locked(
    std::string_view request_class) const {
  for (const auto& c : classes_) {
    if (c->name == request_class) return c.get();
  }
  return nullptr;
}

SloTracker::ClassState& SloTracker::register_locked(
    std::string_view request_class, SloTarget target) {
  if (ClassState* existing = find_locked(request_class)) {
    existing->target = target;
    return *existing;
  }
  auto state = std::make_unique<ClassState>();
  state->name.assign(request_class);
  state->target = target;
  // Cumulative series live in the global registry so /metrics always
  // carries the per-class ground truth next to everything else.
  auto& reg = MetricsRegistry::instance();
  state->requests = &reg.counter("slo.requests", state->name);
  state->errors = &reg.counter("slo.errors", state->name);
  state->latency = &reg.histogram("slo.latency_ns", state->name);
  const WindowOptions wopts{options_.epoch_ns, options_.slots};
  state->w_requests =
      std::make_unique<WindowedCounter>(*state->requests, wopts);
  state->w_errors = std::make_unique<WindowedCounter>(*state->errors, wopts);
  state->w_latency =
      std::make_unique<WindowedHistogram>(*state->latency, wopts);
  state->rule_firing.assign(rules_.size(), false);
  classes_.push_back(std::move(state));
  return *classes_.back();
}

void SloTracker::register_class(std::string_view request_class,
                                SloTarget target) {
  std::unique_lock lock(mutex_);
  register_locked(request_class, target);
}

void SloTracker::score(std::string_view request_class,
                       std::uint64_t latency_ns, bool ok, bool has_latency) {
  ClassState* state = nullptr;
  {
    std::shared_lock lock(mutex_);
    state = find_locked(request_class);
  }
  if (state == nullptr) {
    if (!options_.auto_register) return;
    std::unique_lock lock(mutex_);
    state = &register_locked(request_class, options_.default_target);
  }
  // ClassState pointers are stable once registered (unique_ptr elements);
  // the metric updates below are the lock-free sharded hot path.
  const bool error = !ok || (has_latency && latency_ns > state->target.latency_slo_ns);
  state->requests->add(1);
  if (error) state->errors->add(1);
  if (has_latency) state->latency->record(latency_ns);
}

void SloTracker::observe(std::string_view request_class,
                         std::uint64_t latency_ns, bool ok) {
  score(request_class, latency_ns, ok, /*has_latency=*/true);
}

void SloTracker::on_span(const SpanRecord& span) {
  // Spans only score *registered* classes regardless of auto_register:
  // span names are an open set (variant, shard, ...) and auto-registering
  // all of them would turn every span family into an SLO class.
  {
    std::shared_lock lock(mutex_);
    if (find_locked(span.name) == nullptr) return;
  }
  score(span.name, span.duration_ns(), span.ok, /*has_latency=*/true);
}

void SloTracker::on_adjudication(const AdjudicationEvent& event) {
  if (event.technique.rfind("slo:", 0) == 0) return;  // our own verdicts
  {
    std::shared_lock lock(mutex_);
    if (find_locked(event.technique) == nullptr) return;
  }
  // A rejected verdict is an availability error; there is no meaningful
  // latency on the verdict itself, so the latency histogram is untouched.
  score(event.technique, 0, event.accepted, /*has_latency=*/false);
}

void SloTracker::tick(std::uint64_t now_ns) {
  struct Emission {
    AdjudicationEvent verdict;
    std::vector<std::pair<std::string, std::string>> breaches;
  };
  std::vector<Emission> emissions;
  VerdictCallback verdict_cb;
  BreachCallback breach_cb;
  {
    std::unique_lock lock(mutex_);
    verdict_cb = verdict_cb_;
    breach_cb = breach_cb_;
    auto& reg = MetricsRegistry::instance();
    for (auto& c : classes_) {
      c->w_requests->rotate(now_ns);
      c->w_errors->rotate(now_ns);
      c->w_latency->rotate(now_ns);

      // Windowed gauges: burn/error/latency per named window.
      for (const NamedWindow& w : kWindows) {
        const std::uint64_t total = c->w_requests->window(w.span_ns, now_ns);
        const std::uint64_t errors = c->w_errors->window(w.span_ns, now_ns);
        const HistogramSnapshot lat = c->w_latency->window(w.span_ns, now_ns);
        reg.gauge(std::string("slo.burn_rate_") + w.name, c->name)
            .set(burn_rate(errors, total, c->target.availability));
        reg.gauge(std::string("slo.error_ratio_") + w.name, c->name)
            .set(error_rate(errors, total));
        reg.gauge(std::string("slo.p99_ns_") + w.name, c->name)
            .set(lat.percentile(99.0));
      }

      // Cumulative error-budget accounting since process start.
      const std::uint64_t total_all = c->requests->total();
      const std::uint64_t errors_all = c->errors->total();
      const double allowed =
          static_cast<double>(total_all) * (1.0 - c->target.availability);
      const double remaining =
          allowed <= 0.0
              ? (errors_all > 0 ? 0.0 : 1.0)
              : std::max(0.0, 1.0 - static_cast<double>(errors_all) / allowed);
      reg.gauge("slo.budget_remaining_ratio", c->name).set(remaining);

      // Multi-window burn-rate rules.
      bool any_page = false, any_ticket = false;
      for (std::size_t r = 0; r < rules_.size(); ++r) {
        const BurnRule& rule = rules_[r];
        const double burn_long =
            burn_rate(c->w_errors->window(rule.long_ns, now_ns),
                      c->w_requests->window(rule.long_ns, now_ns),
                      c->target.availability);
        const double burn_short =
            burn_rate(c->w_errors->window(rule.short_ns, now_ns),
                      c->w_requests->window(rule.short_ns, now_ns),
                      c->target.availability);
        const bool firing =
            burn_long >= rule.threshold && burn_short >= rule.threshold;
        c->rule_firing[r] = firing;
        if (firing) (rule.page ? any_page : any_ticket) = true;
      }
      const SloState next = any_page     ? SloState::failing
                            : any_ticket ? SloState::degraded
                                         : SloState::ok;
      const SloState prev = c->state;
      if (next != prev) {
        c->state = next;
        c->last_transition_ns = now_ns;
      }

      Emission em;
      // One synthetic verdict per class with traffic this process: the
      // health tracker adjudicates the service itself. accepted=false only
      // on failing; degraded shows as a masked failure (1 failed ballot,
      // verdict still accepted).
      if (total_all > 0 && verdict_cb) {
        AdjudicationEvent v;
        v.technique = "slo:" + c->name;
        v.t_ns = now_ns;
        v.electorate = 1;
        v.ballots_seen = 1;
        v.ballots_failed = next == SloState::ok ? 0 : 1;
        v.accepted = next != SloState::failing;
        v.verdict = next == SloState::ok
                        ? "ok"
                        : std::string("slo_") + to_string(next);
        em.verdict = std::move(v);
        em.breaches = {};
        if (next == SloState::failing && prev != SloState::failing) {
          for (std::size_t r = 0; r < rules_.size(); ++r) {
            if (c->rule_firing[r] && rules_[r].page) {
              em.breaches.emplace_back(c->name, rules_[r].name);
            }
          }
        }
        emissions.push_back(std::move(em));
      } else if (next == SloState::failing && prev != SloState::failing &&
                 breach_cb) {
        for (std::size_t r = 0; r < rules_.size(); ++r) {
          if (c->rule_firing[r] && rules_[r].page) {
            em.breaches.emplace_back(c->name, rules_[r].name);
          }
        }
        emissions.push_back(std::move(em));
      }
    }
  }
  // Callbacks run outside the tracker lock: the verdict callback typically
  // ends in HealthTracker::observe and the breach callback in a flight
  // dump, neither of which should nest under our mutex.
  for (const Emission& em : emissions) {
    if (!em.verdict.technique.empty() && verdict_cb) verdict_cb(em.verdict);
    if (breach_cb) {
      for (const auto& [cls, rule] : em.breaches) breach_cb(cls, rule);
    }
  }
}

std::string SloTracker::snapshot_jsonl(std::uint64_t now_ns) const {
  std::ostringstream out;
  std::shared_lock lock(mutex_);
  for (const auto& c : classes_) {
    const std::uint64_t total_all = c->requests->total();
    const std::uint64_t errors_all = c->errors->total();
    for (const NamedWindow& w : kWindows) {
      const std::uint64_t total = c->w_requests->window(w.span_ns, now_ns);
      const std::uint64_t errors = c->w_errors->window(w.span_ns, now_ns);
      const HistogramSnapshot lat = c->w_latency->window(w.span_ns, now_ns);
      out << "{\"type\":\"slo_window\",\"class\":\""
          << json_escape_view(c->name) << "\",\"window\":\"" << w.name
          << "\",\"window_s\":" << w.span_ns / 1'000'000'000ull
          << ",\"total\":" << total << ",\"errors\":" << errors
          << ",\"error_rate\":" << json_double(error_rate(errors, total))
          << ",\"burn_rate\":"
          << json_double(burn_rate(errors, total, c->target.availability))
          << ",\"p50_ns\":" << json_double(lat.percentile(50.0))
          << ",\"p95_ns\":" << json_double(lat.percentile(95.0))
          << ",\"p99_ns\":" << json_double(lat.percentile(99.0)) << "}\n";
    }
    const double allowed =
        static_cast<double>(total_all) * (1.0 - c->target.availability);
    out << "{\"type\":\"slo_class\",\"class\":\"" << json_escape_view(c->name)
        << "\",\"latency_slo_ns\":" << c->target.latency_slo_ns
        << ",\"availability\":" << json_double(c->target.availability)
        << ",\"state\":\"" << to_string(c->state)
        << "\",\"total\":" << total_all << ",\"errors\":" << errors_all
        << ",\"budget_allowed\":" << json_double(allowed)
        << ",\"budget_consumed\":"
        << json_double(allowed <= 0.0
                           ? (errors_all > 0 ? 1.0 : 0.0)
                           : static_cast<double>(errors_all) / allowed)
        << ",\"last_transition_ns\":" << c->last_transition_ns;
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      out << ",\"alert_" << rules_[r].name
          << "\":" << (c->rule_firing[r] ? "true" : "false");
    }
    out << "}\n";
  }
  return out.str();
}

SloState SloTracker::state(std::string_view request_class) const {
  std::shared_lock lock(mutex_);
  const ClassState* c = find_locked(request_class);
  return c == nullptr ? SloState::ok : c->state;
}

SloState SloTracker::overall_state() const {
  std::shared_lock lock(mutex_);
  SloState worst = SloState::ok;
  for (const auto& c : classes_) {
    if (static_cast<int>(c->state) > static_cast<int>(worst)) worst = c->state;
  }
  return worst;
}

void SloTracker::set_verdict_callback(VerdictCallback cb) {
  std::unique_lock lock(mutex_);
  verdict_cb_ = std::move(cb);
}

void SloTracker::set_breach_callback(BreachCallback cb) {
  std::unique_lock lock(mutex_);
  breach_cb_ = std::move(cb);
}

void SloTracker::start(std::uint64_t epoch_override_ns) {
  std::unique_lock lock(run_mutex_);
  if (running_) return;
  running_ = true;
  const std::uint64_t epoch =
      epoch_override_ns != 0 ? epoch_override_ns : options_.epoch_ns;
  rotator_ = std::thread([this, epoch] {
    std::unique_lock lk(run_mutex_);
    while (running_) {
      if (run_cv_.wait_for(lk, std::chrono::nanoseconds(epoch),
                           [this] { return !running_; })) {
        break;
      }
      lk.unlock();
      tick(now_ns());
      lk.lock();
    }
  });
}

void SloTracker::stop() {
  {
    std::unique_lock lock(run_mutex_);
    if (!running_) return;
    running_ = false;
  }
  run_cv_.notify_all();
  if (rotator_.joinable()) rotator_.join();
}

std::vector<std::pair<std::string, SloTarget>> parse_slo_targets(
    const char* spec) {
  std::vector<std::pair<std::string, SloTarget>> out;
  if (spec == nullptr || *spec == '\0') return out;
  std::string s{spec};
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string entry = s.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    // class=latency_ms@availability_pct, e.g. "/fast=5@99.9"
    const std::size_t eq = entry.find('=');
    const std::size_t at = entry.find('@', eq == std::string::npos ? 0 : eq);
    bool valid = eq != std::string::npos && at != std::string::npos &&
                 eq > 0 && at > eq + 1 && at + 1 < entry.size();
    double latency_ms = 0.0, availability_pct = 0.0;
    if (valid) {
      char* end = nullptr;
      const std::string ms = entry.substr(eq + 1, at - eq - 1);
      latency_ms = std::strtod(ms.c_str(), &end);
      valid = end != nullptr && *end == '\0' && latency_ms > 0.0;
      if (valid) {
        const std::string pct = entry.substr(at + 1);
        availability_pct = std::strtod(pct.c_str(), &end);
        valid = end != nullptr && *end == '\0' && availability_pct > 0.0 &&
                availability_pct < 100.0;
      }
    }
    if (!valid) {
      std::fprintf(stderr,
                   "[redundancy] REDUNDANCY_SLO_TARGETS entry '%s' is not "
                   "class=latency_ms@availability_pct (e.g. /fast=5@99.9); "
                   "skipping it\n",
                   entry.c_str());
      continue;
    }
    SloTarget target;
    target.latency_slo_ns =
        static_cast<std::uint64_t>(latency_ms * 1'000'000.0);
    target.availability = availability_pct / 100.0;
    out.emplace_back(entry.substr(0, eq), target);
  }
  return out;
}

}  // namespace redundancy::obs
