// Sliding-window views over the cumulative sharded metric primitives.
//
// Every obs:: counter and histogram is cumulative-since-process-start, which
// is the right shape for exact merges and Prometheus scrapes but useless for
// steering: an SLO controller needs to know what the last minute looked
// like, not the average since boot. WindowedCounter / WindowedHistogram add
// that view WITHOUT touching the hot-path write side: writers keep hitting
// the existing lock-free shards, and a rotation driver (obs::SloTracker's
// tick thread, or a test calling rotate() with synthetic time) periodically
// captures the cumulative snapshot and stores the per-epoch *delta* in a
// ring. A window query merges the most recent K epoch deltas plus the live
// partial epoch (current cumulative minus the last rotation base), so the
// newest samples are visible before the next rotation.
//
// Because epoch deltas are exact bucket counts, a window percentile is just
// HistogramSnapshot::percentile over a merge of deltas — the same exact,
// deterministic arithmetic the sharded campaign aggregation relies on.
// Window edges are quantized to the epoch: a query for the last S seconds
// covers at most one extra epoch of older samples, never fewer.
//
// Thread-safety: rotate() and window() take the wrapper's own mutex; the
// underlying metric stays lock-free for writers. One rotation driver per
// wrapper is the intended shape (concurrent rotate()s are safe but the
// epoch spacing becomes whatever the callers make it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/counter.hpp"
#include "obs/histogram.hpp"

namespace redundancy::obs {

/// Rotation cadence and ring depth shared by both windowed wrappers. The
/// defaults cover a 1-hour window at 10-second epochs (360 slots + 1 spare
/// so the oldest needed epoch is never evicted mid-query).
struct WindowOptions {
  std::uint64_t epoch_ns = 10'000'000'000ull;  ///< rotation period
  std::size_t slots = 361;                     ///< ring depth (>= 1)
};

class WindowedHistogram {
 public:
  explicit WindowedHistogram(const Histogram& source, WindowOptions options = {});

  /// Capture the delta since the previous rotation into the next ring slot.
  /// `now_ns` is the rotation instant (obs::now_ns(), or synthetic time in
  /// tests — the wrapper never reads a clock itself).
  void rotate(std::uint64_t now_ns);

  /// Exact merged snapshot of the samples recorded in (now - span, now]:
  /// the live partial epoch plus every ring slot whose epoch overlaps the
  /// window. Quantized to the epoch (covers at most one extra epoch).
  [[nodiscard]] HistogramSnapshot window(std::uint64_t span_ns,
                                         std::uint64_t now_ns) const;

  /// The underlying cumulative snapshot (what /metrics exports).
  [[nodiscard]] HistogramSnapshot cumulative() const {
    return source_->snapshot();
  }

  [[nodiscard]] std::uint64_t epoch_ns() const noexcept {
    return options_.epoch_ns;
  }
  [[nodiscard]] std::size_t slots() const noexcept { return options_.slots; }
  [[nodiscard]] std::uint64_t rotations() const;

 private:
  struct Slot {
    HistogramSnapshot delta;
    std::uint64_t t_end_ns = 0;  ///< rotation instant that closed the epoch
  };

  const Histogram* source_;
  WindowOptions options_;
  mutable std::mutex mutex_;
  std::vector<Slot> ring_;
  std::size_t head_ = 0;  ///< next slot to write
  std::uint64_t rotations_ = 0;
  HistogramSnapshot base_;  ///< cumulative at the last rotation
};

class WindowedCounter {
 public:
  explicit WindowedCounter(const Counter& source, WindowOptions options = {});

  void rotate(std::uint64_t now_ns);

  /// Events counted in (now - span, now], live partial epoch included.
  [[nodiscard]] std::uint64_t window(std::uint64_t span_ns,
                                     std::uint64_t now_ns) const;

  /// window() scaled to events per second over the span.
  [[nodiscard]] double rate_per_sec(std::uint64_t span_ns,
                                    std::uint64_t now_ns) const {
    return span_ns == 0 ? 0.0
                        : static_cast<double>(window(span_ns, now_ns)) * 1e9 /
                              static_cast<double>(span_ns);
  }

  [[nodiscard]] std::uint64_t cumulative() const { return source_->total(); }
  [[nodiscard]] std::uint64_t epoch_ns() const noexcept {
    return options_.epoch_ns;
  }
  [[nodiscard]] std::size_t slots() const noexcept { return options_.slots; }
  [[nodiscard]] std::uint64_t rotations() const;

 private:
  struct Slot {
    std::uint64_t delta = 0;
    std::uint64_t t_end_ns = 0;
  };

  const Counter* source_;
  WindowOptions options_;
  mutable std::mutex mutex_;
  std::vector<Slot> ring_;
  std::size_t head_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t base_ = 0;
};

}  // namespace redundancy::obs
