// Always-on black-box event ring with an async-signal-safe crash dump.
//
// The tracing Recorder answers "what happened in the traces we sampled";
// the FlightRecorder answers "what were the last few thousand things this
// process did before it died". Every thread owns a fixed-size ring of
// 64-byte POD records; recording is one thread-local lookup, one struct
// fill, and one release store of the head index — no allocation, no locks,
// no formatting on the record path, so it stays enabled in production.
//
// The dump side is deliberately primitive because its most important caller
// is a SIGSEGV handler: dump_to_fd() uses only write(2) plus manual integer
// formatting into stack buffers (async-signal-safe), reading each ring
// racily — a record being written concurrently may come out torn, which is
// acceptable for a black box and is why records are self-describing rather
// than length-prefixed. install_crash_handler() wires dump_to_fd() to the
// fatal-signal set via util::install_crash_signals(); the handler appends
// the dump to a fixed path, then re-raises so the process still dies with
// the original signal. Non-crash consumers (`GET /debug/flight`, SLO breach
// dumps, tests) use dump_jsonl(), which merges all rings and sorts by time.
//
// Capacity model: rings are allocated lazily, one per recording thread, at
// the records-per-thread size fixed by the first enable(). Thread slots are
// capped at kMaxThreads; threads beyond the cap drop records and bump a
// counter rather than blocking. Rings are leaked on purpose — the crash
// handler may fire during static destruction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "util/cacheline.hpp"

namespace redundancy::obs {

struct SpanRecord;
struct AdjudicationEvent;

/// What a FlightRecord describes. Values are stable: dumps name them in
/// text but tools may also see the raw integer in torn records.
enum class FlightKind : std::uint8_t {
  none = 0,          ///< unwritten slot
  span = 1,          ///< completed span (a = duration_ns, b = span_id)
  adjudication = 2,  ///< verdict (a = ballots_failed, b = electorate)
  gateway = 3,       ///< request arrival/completion (a = status, b = latency)
  mark = 4,          ///< free-form breadcrumb from application code
};

/// One black-box entry. Exactly one cache line of POD on the usual 64-byte
/// targets so a record fill never straddles lines; no pointers, no owning
/// members, safe to read from a signal handler.
struct FlightRecord {
  std::uint64_t t_ns = 0;   ///< obs::now_ns() at record time
  std::uint64_t trace = 0;  ///< trace id (0 when not trace-scoped)
  std::uint64_t a = 0;      ///< kind-specific payload (see FlightKind)
  std::uint64_t b = 0;      ///< kind-specific payload (see FlightKind)
  char name[30] = {};       ///< NUL-padded label, truncated to fit
  std::uint8_t ok = 0;      ///< 1 = success-shaped event
  std::uint8_t kind = 0;    ///< FlightKind
};
static_assert(sizeof(FlightRecord) == 64, "one 64-byte line per record");
static_assert(std::is_trivially_copyable_v<FlightRecord>,
              "signal handler reads records as raw memory");

namespace detail {
/// Process-wide fast-path switch, mirroring detail::g_enabled for tracing.
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

/// One relaxed load; recording sites check this before doing any work.
/// Dead code under -DREDUNDANCY_OBS_NOOP, like obs::enabled().
[[nodiscard]] inline bool flight_enabled() noexcept {
#ifdef REDUNDANCY_OBS_NOOP
  return false;
#else
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
#endif
}

class FlightRecorder {
 public:
  /// Hard cap on distinct recording threads; beyond it records are dropped
  /// (counted), never blocked on.
  static constexpr std::size_t kMaxThreads = 256;

  /// Leaked singleton: the crash handler must be able to reach it at any
  /// point in the process lifetime, including static destruction.
  static FlightRecorder& instance();

  /// Turn recording on. `records_per_thread` is rounded up to a power of
  /// two (min 64) and fixed at the FIRST enable for the process lifetime;
  /// later enables only flip the switch back on. Idempotent.
  void enable(std::size_t records_per_thread = 1024);

  /// Stop recording (rings and their contents stay readable/dumpable).
  void disable() noexcept;

  /// Record one event. No-op (cheap) when disabled. noexcept and
  /// allocation-free after the calling thread's first record, which lazily
  /// registers its ring (that first call does allocate — never from a
  /// signal handler; install_crash_handler() only *reads* rings).
  void record(FlightKind kind, std::string_view name, std::uint64_t trace,
              std::uint64_t a, std::uint64_t b, bool ok) noexcept;

  /// Convenience hooks used by Recorder::record and the gateway.
  void record_span(const SpanRecord& span) noexcept;
  void record_adjudication(const AdjudicationEvent& event) noexcept;

  /// Merge every thread ring, sort by t_ns, and render flat JSONL: one
  /// flight_header line then one {"type":"flight",...} line per record.
  /// Not signal-safe (allocates); for /debug/flight, breach dumps, tests.
  [[nodiscard]] std::string dump_jsonl() const;

  /// Async-signal-safe dump of all rings to `fd`, unsorted (per-ring
  /// order), manual formatting, write(2) only. Returns bytes written.
  std::size_t dump_to_fd(int fd) const noexcept;

  /// dump_to_fd() into `path` (O_CREAT|O_APPEND, 0644). Async-signal-safe.
  /// Returns false if the file could not be opened.
  bool dump_to_path(const char* path) const noexcept;

  /// Enable-if-needed and route fatal signals to a handler that appends a
  /// dump to `path` (copied into static storage) before re-raising.
  void install_crash_handler(const char* path);

  /// Records dropped because more than kMaxThreads threads recorded.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t records_per_thread() const noexcept {
    return capacity_.load(std::memory_order_acquire);
  }

  /// Number of thread rings registered so far.
  [[nodiscard]] std::size_t threads() const noexcept {
    return ring_count_.load(std::memory_order_acquire);
  }

  /// Zero every registered ring and the dropped counter (tests). Rings stay
  /// registered to their threads.
  void reset() noexcept;

 private:
  FlightRecorder() = default;

  struct alignas(util::kCacheLine) ThreadRing {
    std::atomic<std::uint64_t> head{0};  ///< total records ever written
    FlightRecord* records = nullptr;     ///< capacity slots, leaked
  };

  ThreadRing* ring_for_this_thread() noexcept;
  ThreadRing* register_thread() noexcept;

  std::atomic<std::size_t> capacity_{0};  ///< records per ring (power of 2)
  std::atomic<std::size_t> ring_count_{0};
  std::atomic<std::uint64_t> dropped_{0};
  ThreadRing* rings_[kMaxThreads] = {};
};

}  // namespace redundancy::obs
