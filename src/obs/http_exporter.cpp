#include "obs/http_exporter.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "net/http.hpp"
#include "obs/metrics_registry.hpp"

namespace redundancy::obs {

namespace {

constexpr int kPollIntervalMs = 100;   // stop-flag check cadence
constexpr int kRequestTimeoutMs = 2000;
constexpr std::size_t kMaxRequestBytes = 8192;
constexpr std::size_t kDefaultTraceTail = 32;

/// "n=K" out of a query string; default when absent, malformed or zero.
std::size_t tail_count(std::string_view query) {
  const auto n = net::http::query_param(query, "n");
  if (n.has_value() && *n > 0) return static_cast<std::size_t>(*n);
  return kDefaultTraceTail;
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool HttpExporter::start(Options options) {
  if (running()) return false;
  options_ = std::move(options);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, options_.backlog) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpExporter::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void HttpExporter::handle_connection(int fd) {
  // Read until the end of the request head, a byte cap, or a timeout. The
  // request body (there is none for GET) is ignored. Pathological inputs
  // (oversized head, stalled sender) get a diagnostic status rather than a
  // silent connection drop — a curl in a CI script should print "408", not
  // "connection reset by peer".
  std::string request;
  HttpResponse response;
  bool parse = true;
  const std::uint64_t deadline_hint = kRequestTimeoutMs / kPollIntervalMs;
  for (std::uint64_t waits = 0; request.find("\r\n\r\n") == std::string::npos;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (++waits > deadline_hint) {
        response = {408, "text/plain; charset=utf-8", "request timeout\n"};
        parse = false;
        break;
      }
      continue;
    }
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;  // peer hung up; nobody is listening for a reply
    request.append(buf, static_cast<std::size_t>(n));
    if (request.size() > kMaxRequestBytes) {
      response = {400, "text/plain; charset=utf-8", "request too large\n"};
      parse = false;
      break;
    }
  }

  if (parse) {
    // Shared head parser; the exporter never reads request bodies (GET
    // only), so a declared Content-Length is parsed but not awaited.
    const net::http::ParseResult parsed = net::http::parse_head(request);
    if (parsed.status != net::http::ParseStatus::ok) {
      response = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (parsed.request.method != "GET") {
      response = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      response = route(std::string{parsed.request.target});
    }
  }

  std::string head = net::http::response_head(
      response.status, response.content_type, response.body.size(),
      /*keep_alive=*/false);
  // Count before the reply bytes leave: a scraper that has read a complete
  // response must observe the incremented counter.
  served_.fetch_add(1, std::memory_order_relaxed);
  if (write_all(fd, head)) (void)write_all(fd, response.body);
  // Graceful close: half-close our side and let the client read to EOF.
  // Closing with unread data in the socket can turn into an RST that races
  // the response bytes on loopback.
  ::shutdown(fd, SHUT_WR);
}

HttpResponse HttpExporter::route(const std::string& target) {
  std::string path = target;
  std::string query;
  if (const std::size_t q = target.find('?'); q != std::string::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }

  if (path == "/metrics") {
    if (options_.metrics_handler) return options_.metrics_handler();
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            MetricsRegistry::instance().render_prometheus_text()};
  }
  if (path == "/healthz") {
    if (options_.healthz_handler) return options_.healthz_handler();
    return {200, "text/plain; charset=utf-8", "ok\n"};
  }
  if (path == "/traces") {
    if (options_.traces_handler) {
      return options_.traces_handler(tail_count(query));
    }
    return {404, "text/plain; charset=utf-8", "no trace ring attached\n"};
  }
  if (path == "/slo") {
    if (options_.slo_handler) return options_.slo_handler();
    return {404, "text/plain; charset=utf-8", "no SLO tracker attached\n"};
  }
  if (path == "/debug/flight") {
    if (options_.flight_handler) return options_.flight_handler();
    return {404, "text/plain; charset=utf-8", "flight recorder disabled\n"};
  }
  return {404, "text/plain; charset=utf-8",
          "not found; try /metrics, /healthz, /traces?n=K, /slo, "
          "/debug/flight\n"};
}

}  // namespace redundancy::obs
