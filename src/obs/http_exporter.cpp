#include "obs/http_exporter.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "obs/metrics_registry.hpp"

namespace redundancy::obs {

namespace {

constexpr int kPollIntervalMs = 100;   // stop-flag check cadence
constexpr int kRequestTimeoutMs = 2000;
constexpr std::size_t kMaxRequestBytes = 8192;
constexpr std::size_t kDefaultTraceTail = 32;

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

/// Parse "n=K" out of a query string; default when absent or malformed.
std::size_t tail_count(const std::string& query) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string param = query.substr(pos, end - pos);
    if (param.rfind("n=", 0) == 0) {
      const std::string value = param.substr(2);
      char* stop = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &stop, 10);
      if (stop != value.c_str() && *stop == '\0' && n > 0) {
        return static_cast<std::size_t>(n);
      }
      return kDefaultTraceTail;
    }
    pos = end + 1;
  }
  return kDefaultTraceTail;
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool HttpExporter::start(Options options) {
  if (running()) return false;
  options_ = std::move(options);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, options_.backlog) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpExporter::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void HttpExporter::handle_connection(int fd) {
  // Read until the end of the request head, a byte cap, or a timeout. The
  // request body (there is none for GET) is ignored. Pathological inputs
  // (oversized head, stalled sender) get a diagnostic status rather than a
  // silent connection drop — a curl in a CI script should print "408", not
  // "connection reset by peer".
  std::string request;
  HttpResponse response;
  bool parse = true;
  const std::uint64_t deadline_hint = kRequestTimeoutMs / kPollIntervalMs;
  for (std::uint64_t waits = 0; request.find("\r\n\r\n") == std::string::npos;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0 && errno != EINTR) return;
    if (ready <= 0) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (++waits > deadline_hint) {
        response = {408, "text/plain; charset=utf-8", "request timeout\n"};
        parse = false;
        break;
      }
      continue;
    }
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;  // peer hung up; nobody is listening for a reply
    request.append(buf, static_cast<std::size_t>(n));
    if (request.size() > kMaxRequestBytes) {
      response = {400, "text/plain; charset=utf-8", "request too large\n"};
      parse = false;
      break;
    }
  }

  if (parse) {
    // Request line: METHOD SP target SP version.
    const std::size_t line_end = request.find("\r\n");
    const std::string line = request.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      response = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else if (line.substr(0, sp1) != "GET") {
      response = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      response = route(line.substr(sp1 + 1, sp2 - sp1 - 1));
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     reason_phrase(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  // Count before the reply bytes leave: a scraper that has read a complete
  // response must observe the incremented counter.
  served_.fetch_add(1, std::memory_order_relaxed);
  if (write_all(fd, head)) (void)write_all(fd, response.body);
  // Graceful close: half-close our side and let the client read to EOF.
  // Closing with unread data in the socket can turn into an RST that races
  // the response bytes on loopback.
  ::shutdown(fd, SHUT_WR);
}

HttpResponse HttpExporter::route(const std::string& target) {
  std::string path = target;
  std::string query;
  if (const std::size_t q = target.find('?'); q != std::string::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }

  if (path == "/metrics") {
    if (options_.metrics_handler) return options_.metrics_handler();
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            MetricsRegistry::instance().render_prometheus_text()};
  }
  if (path == "/healthz") {
    if (options_.healthz_handler) return options_.healthz_handler();
    return {200, "text/plain; charset=utf-8", "ok\n"};
  }
  if (path == "/traces") {
    if (options_.traces_handler) {
      return options_.traces_handler(tail_count(query));
    }
    return {404, "text/plain; charset=utf-8", "no trace ring attached\n"};
  }
  return {404, "text/plain; charset=utf-8",
          "not found; try /metrics, /healthz, /traces?n=K\n"};
}

}  // namespace redundancy::obs
