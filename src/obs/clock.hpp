// Monotonic nanosecond clock shared by every obs:: component.
//
// All trace timestamps and latency samples are taken from one steady clock
// so span intervals and histogram samples are directly comparable. Wall
// time never appears in traces: a trace is ordered by the monotonic
// timeline of the process that emitted it.
#pragma once

#include <chrono>
#include <cstdint>

namespace redundancy::obs {

/// Nanoseconds since an arbitrary (per-process) steady epoch.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace redundancy::obs
