// Lock-free sharded monotonic counter.
//
// Hot paths (pool workers, variant tasks) bump a per-thread shard with one
// relaxed atomic add on a private cache line; readers sum the shards. The
// total is exact — shards are plain partial sums, so merging snapshots from
// different shards/processes is ordinary addition and a sharded campaign
// reports byte-identical totals for any worker count or interleaving.
//
// The shard count scales with the machine (obs/shard.hpp): a power of two
// covering hardware_concurrency(), clamped to [4, 64], decided once per
// process. Each shard is alignas(kCacheLine) and padded to exactly one
// line, so two threads on different shards never invalidate each other —
// the fixed 16-shard array this replaces aliased threads 1 and 17 onto one
// line on wide machines (FL001).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "obs/shard.hpp"
#include "util/cacheline.hpp"

namespace redundancy::obs {

class Counter {
 public:
  Counter()
      : mask_(detail::counter_shards() - 1),
        shards_(new Shard[detail::counter_shards()]) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Add `n` to the calling thread's shard (relaxed; never blocks).
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_shard_cookie() & mask_].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Exact sum over all shards.
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i <= mask_; ++i) {
      sum += shards_[i].value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() noexcept {
    for (std::size_t i = 0; i <= mask_; ++i) {
      shards_[i].value.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t shards() const noexcept { return mask_ + 1; }

  /// Layout introspection for tests/util/layout_test.cpp: address of shard
  /// `i`'s hot word, and the stride between adjacent shards.
  [[nodiscard]] const void* shard_addr(std::size_t i) const noexcept {
    return &shards_[i].value;
  }
  [[nodiscard]] static constexpr std::size_t shard_stride() noexcept {
    return sizeof(Shard);
  }

 private:
  struct alignas(util::kCacheLine) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  static_assert(sizeof(Shard) == util::kCacheLine,
                "a counter shard must occupy exactly one cache line");

  std::size_t mask_;  ///< shard count - 1 (power of two)
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace redundancy::obs
