// Lock-sharded monotonic counter.
//
// Hot paths (pool workers, variant tasks) bump a per-thread shard with one
// relaxed atomic add on a private cache line; readers sum the shards. The
// total is exact — shards are plain partial sums, so merging snapshots from
// different shards/processes is ordinary addition and a sharded campaign
// reports byte-identical totals for any worker count or interleaving.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace redundancy::obs {

class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Add `n` to the calling thread's shard (relaxed; never blocks).
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Exact sum over all shards.
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  /// Threads are spread over shards round-robin at first use; the index is
  /// sticky per thread so a worker always hits the same cache line.
  [[nodiscard]] static std::size_t shard_index() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t mine =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return mine;
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace redundancy::obs
