// Named metric registry with Prometheus text exposition.
//
// Instrumentation sites resolve a Counter/Histogram by name once (keeping a
// reference; registered metrics are never destroyed before process exit) and
// then update it lock-free. The registry itself is mutex-guarded only on the
// registration path. render_prometheus() writes the standard text exposition
// format — counters as `<name>_total`, histograms with cumulative log2 `le`
// buckets plus `_sum`/`_count` — so any Prometheus scraper or promtool can
// consume a metrics_*.prom artifact directly.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/counter.hpp"
#include "obs/histogram.hpp"

namespace redundancy::obs {

class MetricsRegistry {
 public:
  /// Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& instance();

  /// Find-or-create by name. The returned reference stays valid for the
  /// registry's lifetime. Thread-safe.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Prometheus text exposition of every registered metric, in registration
  /// order. Metric names are sanitised ('.' and '-' become '_').
  void render_prometheus(std::ostream& out) const;

  /// Write render_prometheus() to `path` (convention: metrics_<name>.prom).
  /// Returns false if the file could not be opened.
  bool write_prometheus_file(const std::string& path) const;

  /// Zero every registered metric (tests; metrics stay registered).
  void reset_all();

  /// Snapshot of (name, total) for every counter, registration order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_totals() const;
  /// Snapshot of (name, snapshot) for every histogram, registration order.
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  histogram_snapshots() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace redundancy::obs
