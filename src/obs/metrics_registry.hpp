// Named metric registry with Prometheus text exposition.
//
// Instrumentation sites resolve a Counter/Histogram by name once (keeping a
// reference; registered metrics are never destroyed before process exit) and
// then update it lock-free. The registry itself is mutex-guarded only on the
// registration path. Metrics may carry a fixed `technique=` label so one
// family (e.g. technique_requests_total) holds one series per redundancy
// technique instead of mangling the technique into the metric name.
//
// render_prometheus() writes the standard text exposition format — HELP/TYPE
// headers per family, counters as `<name>_total`, histograms with cumulative
// log2 `le` buckets plus `_sum`/`_count` — sorted by (family, label) so the
// output is byte-deterministic regardless of registration order. Any
// Prometheus scraper or promtool can consume a metrics_*.prom artifact (or a
// live `GET /metrics` scrape from obs::HttpExporter) directly.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/counter.hpp"
#include "obs/gauge.hpp"
#include "obs/histogram.hpp"

namespace redundancy::obs {

class MetricsRegistry {
 public:
  /// Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& instance();

  /// Find-or-create by (name, technique label). The returned reference stays
  /// valid for the registry's lifetime. Thread-safe. An empty `technique`
  /// means an unlabelled series. A label spec containing '=' names its own
  /// label key ("loop=0" renders `{loop="0"}`) — the gateway's per-reactor
  /// metric shards use this; a bare value keeps the `technique=` key.
  Counter& counter(const std::string& name, const std::string& technique = "");
  Histogram& histogram(const std::string& name,
                       const std::string& technique = "");
  /// Last-value gauges for derived readings (windowed burn rates, window
  /// percentiles) that go up and down — rendered as `# TYPE <fam> gauge`.
  Gauge& gauge(const std::string& name, const std::string& technique = "");

  /// Prometheus text exposition of every registered metric, sorted by
  /// (sanitised family name, technique label) — byte-deterministic for a
  /// given set of metric values. Metric names are sanitised to
  /// [a-zA-Z0-9_:].
  void render_prometheus(std::ostream& out) const;

  /// render_prometheus() as a string (what `GET /metrics` serves).
  [[nodiscard]] std::string render_prometheus_text() const;

  /// Write render_prometheus() to `path` (convention: metrics_<name>.prom).
  /// Returns false if the file could not be opened.
  bool write_prometheus_file(const std::string& path) const;

  /// Zero every registered metric (tests; metrics stay registered).
  void reset_all();

  /// Snapshot of (exposition key, total) for every counter, registration
  /// order. Labelled series render as `name{technique="x"}`.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_totals() const;
  /// Snapshot of (exposition key, snapshot) for every histogram,
  /// registration order.
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  histogram_snapshots() const;
  /// Snapshot of (exposition key, value) for every gauge, registration
  /// order.
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauge_values()
      const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::string technique;  ///< "" = unlabelled
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mutex_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Histogram>> histograms_;
  std::vector<Entry<Gauge>> gauges_;
};

}  // namespace redundancy::obs
