// Trace event records: spans and adjudication events.
//
// Section 4.1 of the paper prices every technique by execution cost,
// adjudicator cost, and redundancy consumption. The trace makes those three
// observable per request: a SpanRecord times every unit of redundant work
// (one request, one variant execution, one campaign shard), and an
// AdjudicationEvent records *why* the adjudicator reached its verdict —
// electorate size, ballots actually seen, failures among them, the verdict,
// and how much redundancy was left unconsumed (stragglers cancelled).
//
// Both records are plain values: sinks serialise them (JSONL schema in
// EXPERIMENTS.md) and tests introspect them directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace redundancy::obs {

/// Identifies one request's causal tree across threads. 0 = "no trace".
using TraceId = std::uint64_t;
/// Identifies one span within the process. 0 = "no parent" (root span).
using SpanId = std::uint64_t;

/// One timed unit of work. Parent/child edges survive work stealing: the
/// instrumentation passes (trace_id, parent span id) into pool tasks
/// explicitly, so a variant span points at its request span no matter which
/// worker executed it.
struct SpanRecord {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_id = 0;             ///< 0 for root spans
  std::string name;                 ///< e.g. "nvp.run", "variant", "shard"
  std::string detail;               ///< free-form (variant name, shard range)
  std::uint64_t t_start_ns = 0;     ///< obs::now_ns() at entry
  std::uint64_t t_end_ns = 0;       ///< obs::now_ns() at exit
  bool ok = true;                   ///< false if the unit reported failure

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return t_end_ns >= t_start_ns ? t_end_ns - t_start_ns : 0;
  }
};

/// One adjudicator evaluation: a voter over ballots (implicit) or an
/// acceptance-test round (explicit).
struct AdjudicationEvent {
  TraceId trace_id = 0;
  SpanId parent_id = 0;             ///< span the vote happened under
  std::string technique;            ///< emitting pattern/technique label
  std::uint64_t t_ns = 0;           ///< obs::now_ns() at the verdict
  std::size_t round = 1;            ///< revote round (incremental adjudication)
  std::size_t electorate = 0;       ///< variants eligible to vote
  std::size_t ballots_seen = 0;     ///< ballots available at vote time
  std::size_t ballots_failed = 0;   ///< failed ballots among those seen
  bool accepted = false;            ///< verdict carries a value
  std::string verdict;              ///< "ok" or the failure description
  std::string winner;               ///< selected variant, when identifiable
  std::size_t stragglers_cancelled = 0;  ///< variants still unfinished when
                                         ///< the verdict was emitted
};

}  // namespace redundancy::obs
