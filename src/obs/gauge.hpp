// Last-value gauge for derived, non-monotone observations.
//
// Counters and histograms carry the exact cumulative ground truth; a Gauge
// carries a *derived* reading that goes up and down — a windowed burn rate,
// a window percentile, remaining error budget. One writer (the deriving
// tick thread) sets it, any reader loads it; both are single relaxed
// atomic operations on one double. Gauges are registered and rendered by
// MetricsRegistry (`# TYPE <fam> gauge`) next to the counters and
// histograms so every windowed SLO signal is scrapeable from /metrics.
#pragma once

#include <atomic>

namespace redundancy::obs {

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

}  // namespace redundancy::obs
