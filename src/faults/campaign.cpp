#include "faults/campaign.hpp"

#include <cstdio>

namespace redundancy::faults {

std::string CampaignReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s: requests=%zu correct=%zu wrong=%zu detected=%zu "
                "reliability=%.4f safety=%.4f",
                name.c_str(), requests, correct, wrong, detected,
                reliability.value(), safety.value());
  return buf;
}

}  // namespace redundancy::faults
