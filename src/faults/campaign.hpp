// Fault-injection campaigns: the measurement harness behind every
// experiment. A campaign drives a system-under-test with a seeded workload,
// checks each response against an oracle, and reports reliability with
// confidence intervals.
#pragma once

#include <functional>
#include <string>

#include "core/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace redundancy::faults {

/// Outcome counts of one campaign.
struct CampaignReport {
  std::string name;
  std::size_t requests = 0;
  std::size_t correct = 0;        ///< value produced and matches the oracle
  std::size_t wrong = 0;          ///< value produced but incorrect (silent failure)
  std::size_t detected = 0;       ///< mechanism reported failure (fail-stop)
  util::Proportion reliability;   ///< correct / requests
  util::Proportion safety;        ///< (correct + detected) / requests — no silent wrong

  [[nodiscard]] double reliability_value() const { return reliability.value(); }
  [[nodiscard]] double safety_value() const { return safety.value(); }
  [[nodiscard]] std::string summary() const;
};

/// Run `requests` inputs from `workload` through `system`, judging each
/// output against `oracle`.
template <typename In, typename Out>
CampaignReport run_campaign(std::string name, std::size_t requests,
                            std::function<In(std::size_t, util::Rng&)> workload,
                            std::function<core::Result<Out>(const In&)> system,
                            std::function<Out(const In&)> oracle,
                            std::uint64_t seed = 1) {
  CampaignReport report;
  report.name = std::move(name);
  util::Rng rng{seed};
  for (std::size_t i = 0; i < requests; ++i) {
    const In input = workload(i, rng);
    core::Result<Out> out = system(input);
    ++report.requests;
    bool is_correct = false;
    bool is_detected = false;
    if (out.has_value()) {
      if (out.value() == oracle(input)) {
        ++report.correct;
        is_correct = true;
      } else {
        ++report.wrong;
      }
    } else {
      ++report.detected;
      is_detected = true;
    }
    report.reliability.add(is_correct);
    report.safety.add(is_correct || is_detected);
  }
  return report;
}

}  // namespace redundancy::faults
