// Fault-injection campaigns: the measurement harness behind every
// experiment. A campaign drives a system-under-test with a seeded workload,
// checks each response against an oracle, and reports reliability with
// confidence intervals.
//
// Request i draws from its own generator, derived from the campaign seed by
// counter-based splitting (util::Rng::split(i), SplitMix64-style). The draw
// sequence of request i is therefore a pure function of (seed, i) — never of
// which worker processed it or of how many requests ran before it — so
// run_campaign_parallel produces byte-identical counts for any worker count,
// and identical to the serial run_campaign.
//
// The workload/system/oracle slots are generic callable template parameters,
// not std::function: the campaign loop invokes all three once per request,
// and with the concrete closure types visible the compiler inlines them into
// the loop body — the previous std::function signatures put two erased
// indirect calls (and a possible heap-allocated closure) on every request of
// every experiment (FL031). Call sites are unchanged: they already name the
// <In, Out> pair explicitly and pass raw lambdas.
#pragma once

#include <algorithm>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/result.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::faults {

/// Outcome counts of one campaign.
struct CampaignReport {
  std::string name;
  std::size_t requests = 0;
  std::size_t correct = 0;        ///< value produced and matches the oracle
  std::size_t wrong = 0;          ///< value produced but incorrect (silent failure)
  std::size_t detected = 0;       ///< mechanism reported failure (fail-stop)
  util::Proportion reliability;   ///< correct / requests
  util::Proportion safety;        ///< (correct + detected) / requests — no silent wrong

  [[nodiscard]] double reliability_value() const { return reliability.value(); }
  [[nodiscard]] double safety_value() const { return safety.value(); }
  [[nodiscard]] std::string summary() const;

  /// Pool another (shard) report into this one. Counts and proportions are
  /// sums, so merging is commutative and associative; the name is kept.
  void merge(const CampaignReport& other) {
    requests += other.requests;
    correct += other.correct;
    wrong += other.wrong;
    detected += other.detected;
    reliability.merge(other.reliability);
    safety.merge(other.safety);
  }
};

namespace detail {

/// Judge one request and record it. Shared by the serial and parallel
/// runners so their per-request behaviour cannot drift apart.
template <typename In, typename Out, typename Workload, typename System,
          typename Oracle>
void campaign_step(CampaignReport& report, std::size_t i, const util::Rng& base,
                   const Workload& workload, const System& system,
                   const Oracle& oracle) {
  util::Rng rng = base.split(i);
  const In input = workload(i, rng);
  std::uint64_t t0 = 0;
  if (obs::enabled()) {
    static obs::Counter& requests = obs::counter("campaign.requests");
    requests.add();
    t0 = obs::now_ns();
  }
  core::Result<Out> out = system(input);
  if (t0 != 0) {
    static obs::Histogram& latency = obs::histogram("campaign.request_ns");
    latency.record(obs::now_ns() - t0);
  }
  ++report.requests;
  bool is_correct = false;
  bool is_detected = false;
  if (out.has_value()) {
    if (out.value() == oracle(input)) {
      ++report.correct;
      is_correct = true;
    } else {
      ++report.wrong;
    }
  } else {
    ++report.detected;
    is_detected = true;
  }
  report.reliability.add(is_correct);
  report.safety.add(is_correct || is_detected);
}

}  // namespace detail

/// Run `requests` inputs from `workload` through `system`, judging each
/// output against `oracle`.
template <typename In, typename Out, typename Workload, typename System,
          typename Oracle>
CampaignReport run_campaign(std::string name, std::size_t requests,
                            Workload workload, System system, Oracle oracle,
                            std::uint64_t seed = 1) {
  CampaignReport report;
  report.name = std::move(name);
  obs::ScopedSpan span{"campaign"};
  span.set_detail(report.name);
  const util::Rng base{seed};
  for (std::size_t i = 0; i < requests; ++i) {
    detail::campaign_step<In, Out>(report, i, base, workload, system, oracle);
  }
  return report;
}

/// Parallel campaign: contiguous shards of the request stream run on the
/// shared pool, one system instance per shard (built by `system_factory` on
/// the calling thread, so factories need not be thread-safe — this is how
/// stateful systems, e.g. techniques holding their own RNG or disable flags,
/// stay race-free). Shard reports merge in shard order. Thanks to
/// counter-based seed splitting the merged counts are byte-identical for any
/// `workers` value, including 1, and identical to run_campaign — provided
/// the system's response to request i does not depend on which requests it
/// served before (true of the stateless systems the experiments measure).
/// Task exceptions are forwarded to the caller.
///
/// The two run_campaign_parallel overloads are told apart by how the fourth
/// argument is invocable: a nullary callable is a system *factory*, a
/// callable taking `const In&` is a shared system (overload below).
template <typename In, typename Out, typename Workload, typename SystemFactory,
          typename Oracle,
          std::enable_if_t<std::is_invocable_v<SystemFactory&>, int> = 0>
CampaignReport run_campaign_parallel(std::string name, std::size_t requests,
                                     Workload workload,
                                     SystemFactory system_factory,
                                     Oracle oracle, std::uint64_t seed = 1,
                                     std::size_t workers = 0) {
  using System = std::decay_t<std::invoke_result_t<SystemFactory&>>;
  auto& pool = util::ThreadPool::shared();
  if (workers == 0) workers = pool.size();
  workers = std::clamp<std::size_t>(workers, 1, std::max<std::size_t>(1, requests));

  obs::ScopedSpan span{"campaign"};
  span.set_detail(name);
  const obs::SpanContext ctx = span.context();

  const util::Rng base{seed};
  std::vector<System> systems;
  systems.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) systems.push_back(system_factory());

  std::vector<CampaignReport> shards(workers);
  util::BatchRunner batch{&pool};
  const std::size_t chunk = requests / workers;
  const std::size_t extra = requests % workers;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t end = begin + chunk + (w < extra ? 1 : 0);
    batch.add([&shards, &systems, &workload, &oracle, &base, w, begin,
               end, ctx] {
      obs::ScopedSpan shard_span{"campaign.shard", ctx};
      shard_span.set_detail("requests [" + std::to_string(begin) + ", " +
                            std::to_string(end) + ")");
      for (std::size_t i = begin; i < end; ++i) {
        detail::campaign_step<In, Out>(shards[w], i, base, workload,
                                       systems[w], oracle);
      }
    });
    begin = end;
  }
  // All shards enter the pool as one batch: a single wake-up fans the
  // campaign across the workers via stealing.
  batch.run_and_wait(util::ThreadPool::ExceptionPolicy::forward);

  CampaignReport report;
  report.name = std::move(name);
  for (const auto& shard : shards) report.merge(shard);
  return report;
}

/// Convenience overload for a single thread-safe (typically stateless)
/// system shared by every shard.
template <typename In, typename Out, typename Workload, typename System,
          typename Oracle,
          std::enable_if_t<std::is_invocable_v<System&, const In&> &&
                               !std::is_invocable_v<System&>,
                           int> = 0>
CampaignReport run_campaign_parallel(std::string name, std::size_t requests,
                                     Workload workload, System system,
                                     Oracle oracle, std::uint64_t seed = 1,
                                     std::size_t workers = 0) {
  return run_campaign_parallel<In, Out>(
      std::move(name), requests, std::move(workload),
      [&system] { return system; }, std::move(oracle), seed, workers);
}

}  // namespace redundancy::faults
