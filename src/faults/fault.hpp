// Fault model and fault injection.
//
// The paper's experiments-by-proxy need software faults with controllable
// class (Bohrbug / Heisenbug / aging / malicious), activation condition, and
// manifestation (wrong output, crash, timeout). A FaultInjector decorates a
// correct implementation with a set of InjectedFaults, yielding the "faulty
// independently developed version" that deliberate-redundancy mechanisms are
// built from, with controllable inter-version fault *correlation* (the
// Brilliant–Knight–Leveson effect).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/result.hpp"
#include "core/variant.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace redundancy::faults {

using core::FailureKind;
using core::FaultClass;
using core::Result;

/// One injected fault inside a component.
template <typename In, typename Out>
struct InjectedFault {
  std::string name;
  FaultClass cls = FaultClass::bohrbug;
  /// Activation condition, evaluated per execution on the input.
  std::function<bool(const In&)> trigger;
  /// How the activated fault manifests at the interface.
  FailureKind manifestation = FailureKind::wrong_output;
  /// For wrong_output manifestations: corrupt the correct result.
  std::function<Out(const In&, Out)> corrupt;
};

/// Decorates a (correct) function with injected faults, producing a faulty
/// variant. Faults are checked in order; the first activated one manifests.
template <typename In, typename Out>
class FaultInjector {
 public:
  FaultInjector(std::string name, std::function<Out(const In&)> golden)
      : name_(std::move(name)), golden_(std::move(golden)) {}

  FaultInjector& add(InjectedFault<In, Out> fault) {
    faults_.push_back(std::move(fault));
    return *this;
  }

  Result<Out> operator()(const In& input) const {
    for (const auto& f : faults_) {
      if (!f.trigger(input)) continue;
      switch (f.manifestation) {
        case FailureKind::wrong_output: {
          Out out = golden_(input);
          return f.corrupt ? f.corrupt(input, std::move(out))
                           : std::move(out);
        }
        default:
          return core::failure(f.manifestation, name_ + "/" + f.name, f.cls);
      }
    }
    return golden_(input);
  }

  /// Package as a core::Variant for use in the redundancy patterns.
  [[nodiscard]] core::Variant<In, Out> as_variant(double cost = 1.0) const {
    return core::make_variant<In, Out>(
        name_, [self = *this](const In& in) { return self(in); }, cost);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t fault_count() const noexcept { return faults_.size(); }

 private:
  std::string name_;
  std::function<Out(const In&)> golden_;
  std::vector<InjectedFault<In, Out>> faults_;
};

/// Hash an input into the unit interval deterministically; the basis of
/// Bohrbug activation regions.
template <typename In>
[[nodiscard]] double input_position(const In& input, std::uint64_t salt) {
  std::uint64_t h;
  if constexpr (std::is_integral_v<In>) {
    h = util::hash_mix(salt, static_cast<std::uint64_t>(input));
  } else if constexpr (std::is_floating_point_v<In>) {
    std::uint64_t bits;
    static_assert(sizeof(In) <= sizeof bits);
    double d = static_cast<double>(input);
    __builtin_memcpy(&bits, &d, sizeof d);
    h = util::hash_mix(salt, bits);
  } else {
    h = util::hash_mix(salt, std::hash<In>{}(input));
  }
  // One more mixing round; hash_mix alone is too linear for small ints.
  std::uint64_t s = h;
  h = util::splitmix64(s);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Bohrbug: deterministic on input. Activates on the fraction
/// `domain_fraction` of the input domain selected by `salt`. Two versions
/// seeded with the *same* salt fail on the same inputs (correlated faults,
/// the Brilliant–Knight–Leveson regime); distinct salts give independent
/// failure regions.
template <typename In, typename Out>
[[nodiscard]] InjectedFault<In, Out> bohrbug(
    std::string name, double domain_fraction, std::uint64_t salt,
    FailureKind manifestation = FailureKind::wrong_output,
    std::function<Out(const In&, Out)> corrupt = nullptr) {
  InjectedFault<In, Out> f;
  f.name = std::move(name);
  f.cls = FaultClass::bohrbug;
  f.trigger = [domain_fraction, salt](const In& in) {
    return input_position(in, salt) < domain_fraction;
  };
  f.manifestation = manifestation;
  f.corrupt = std::move(corrupt);
  return f;
}

/// Heisenbug: fires with probability `p` per execution, independent of the
/// input — the model of faults whose activation depends on transient,
/// unmodeled environment state. The generator is shared so that repeated
/// executions draw fresh nondeterminism.
template <typename In, typename Out>
[[nodiscard]] InjectedFault<In, Out> heisenbug(
    std::string name, double p, std::shared_ptr<util::Rng> rng,
    FailureKind manifestation = FailureKind::crash,
    std::function<Out(const In&, Out)> corrupt = nullptr) {
  InjectedFault<In, Out> f;
  f.name = std::move(name);
  f.cls = FaultClass::heisenbug;
  f.trigger = [p, rng = std::move(rng)](const In&) { return rng->chance(p); };
  f.manifestation = manifestation;
  f.corrupt = std::move(corrupt);
  return f;
}

/// Bursty Heisenbug: fires for `burst_len` consecutive executions out of
/// every `period` (a degraded window — GC storm, noisy neighbour, flapping
/// link). Retry-based techniques that ride out sporadic faults behave very
/// differently inside a burst.
template <typename In, typename Out>
[[nodiscard]] InjectedFault<In, Out> burst_fault(
    std::string name, std::uint64_t period, std::uint64_t burst_len,
    FailureKind manifestation = FailureKind::crash,
    std::function<Out(const In&, Out)> corrupt = nullptr) {
  InjectedFault<In, Out> f;
  f.name = std::move(name);
  f.cls = FaultClass::heisenbug;
  f.trigger = [period, burst_len, counter = std::make_shared<std::uint64_t>(0)](
                  const In&) {
    const std::uint64_t phase = (*counter)++ % period;
    return phase < burst_len;
  };
  f.manifestation = manifestation;
  f.corrupt = std::move(corrupt);
  return f;
}

/// Environment-dependent Heisenbug: activation decided by an arbitrary
/// predicate over ambient state (used with env::SimEnv so that perturbing
/// the environment genuinely changes whether the bug fires).
template <typename In, typename Out>
[[nodiscard]] InjectedFault<In, Out> conditional_fault(
    std::string name, FaultClass cls, std::function<bool()> condition,
    FailureKind manifestation = FailureKind::crash,
    std::function<Out(const In&, Out)> corrupt = nullptr) {
  InjectedFault<In, Out> f;
  f.name = std::move(name);
  f.cls = cls;
  f.trigger = [condition = std::move(condition)](const In&) {
    return condition();
  };
  f.manifestation = manifestation;
  f.corrupt = std::move(corrupt);
  return f;
}

/// Canonical output corruption: off-by-one for arithmetic results.
template <typename In, typename Out>
  requires std::is_arithmetic_v<Out>
[[nodiscard]] std::function<Out(const In&, Out)> off_by_one() {
  return [](const In&, Out v) { return static_cast<Out>(v + 1); };
}

/// Version-specific corruption so that two faulty versions activated on the
/// same input still *disagree* with each other (distinct wrong answers),
/// unless constructed with the same `skew` — letting experiments dial in
/// identical-and-wrong consensus, the worst case for voting.
template <typename In, typename Out>
  requires std::is_arithmetic_v<Out>
[[nodiscard]] std::function<Out(const In&, Out)> skewed(Out skew) {
  return [skew](const In&, Out v) { return static_cast<Out>(v + skew); };
}

}  // namespace redundancy::faults
