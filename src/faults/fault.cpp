#include "faults/fault.hpp"

// The fault model is header-only (templates over In/Out); this translation
// unit exists to give the module a home for future non-template helpers and
// to keep one object file per module in the build.

namespace redundancy::faults {}
