// Execution metrics shared by patterns and techniques.
//
// The cost discussion in Section 4.1 of the paper (design cost vs execution
// cost, adjudicator cost, redundancy consumption) is made measurable here:
// every pattern accounts for the variants it actually executed, the abstract
// cost units it consumed, and the adjudications it performed.
#pragma once

#include <cstddef>
#include <string>

namespace redundancy::core {

struct Metrics {
  std::size_t requests = 0;            ///< top-level run() calls
  std::size_t variant_executions = 0;  ///< variant invocations (all outcomes)
  std::size_t variant_failures = 0;    ///< variant invocations that failed
  std::size_t adjudications = 0;       ///< voter / acceptance-test evaluations
  std::size_t rollbacks = 0;           ///< state restorations performed
  std::size_t recoveries = 0;          ///< failures masked by the mechanism
  std::size_t unrecovered = 0;         ///< requests that failed despite redundancy
  std::size_t disabled_components = 0; ///< components taken out of service
  std::size_t hedged_launches = 0;     ///< alternatives started on budget expiry
  double cost_units = 0.0;             ///< abstract execution cost consumed

  void reset() { *this = Metrics{}; }
  Metrics& operator+=(const Metrics& other);

  /// Mean number of variant executions per request ("execution cost").
  [[nodiscard]] double executions_per_request() const {
    return requests ? static_cast<double>(variant_executions) /
                          static_cast<double>(requests)
                    : 0.0;
  }
  [[nodiscard]] double cost_per_request() const {
    return requests ? cost_units / static_cast<double>(requests) : 0.0;
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace redundancy::core
