// A library of reusable explicit adjudicators (acceptance tests).
//
// Recovery blocks, self-checking components, and retry blocks all hinge on
// application-provided acceptance tests; Section 4.1 of the paper makes the
// cost of *designing* them the defining cost of the explicit-adjudicator
// family. These combinators cover the classic designs — range/envelope
// checks, sanity bounds relative to the input, inverse checks, watchdog
// timing — and compose with and/or/not so realistic tests stay declarative.
#pragma once

#include <chrono>
#include <functional>

#include "core/variant.hpp"

namespace redundancy::core::acceptance {

/// Output must lie within [lo, hi] — the actuator-envelope check.
template <typename In, typename Out>
[[nodiscard]] AcceptanceTest<In, Out> in_range(Out lo, Out hi) {
  return [lo, hi](const In&, const Out& out) { return lo <= out && out <= hi; };
}

/// Output must satisfy a relation with the input (e.g. |f(x)| <= |x| + c).
template <typename In, typename Out>
[[nodiscard]] AcceptanceTest<In, Out> relation(
    std::function<bool(const In&, const Out&)> rel) {
  return AcceptanceTest<In, Out>{std::move(rel)};
}

/// Inverse check: applying `inverse` to the output must reproduce the
/// input within `close_enough` — the strongest cheap test for invertible
/// computations (sqrt/square, encode/decode, ...).
template <typename In, typename Out>
[[nodiscard]] AcceptanceTest<In, Out> inverse_check(
    std::function<In(const Out&)> inverse,
    std::function<bool(const In&, const In&)> close_enough =
        [](const In& a, const In& b) { return a == b; }) {
  return [inverse = std::move(inverse), close_enough = std::move(close_enough)](
             const In& in, const Out& out) {
    return close_enough(in, inverse(out));
  };
}

/// Both tests must pass.
template <typename In, typename Out>
[[nodiscard]] AcceptanceTest<In, Out> all_of(AcceptanceTest<In, Out> a,
                                             AcceptanceTest<In, Out> b) {
  return [a = std::move(a), b = std::move(b)](const In& in, const Out& out) {
    return a(in, out) && b(in, out);
  };
}

/// Either test suffices.
template <typename In, typename Out>
[[nodiscard]] AcceptanceTest<In, Out> any_of(AcceptanceTest<In, Out> a,
                                             AcceptanceTest<In, Out> b) {
  return [a = std::move(a), b = std::move(b)](const In& in, const Out& out) {
    return a(in, out) || b(in, out);
  };
}

template <typename In, typename Out>
[[nodiscard]] AcceptanceTest<In, Out> negate(AcceptanceTest<In, Out> t) {
  return [t = std::move(t)](const In& in, const Out& out) {
    return !t(in, out);
  };
}

/// Watchdog: wraps a *variant* so that executions exceeding `budget` of
/// wall-clock time fail with a timeout instead of returning late — the
/// timing half of a classic acceptance test. (Cooperative: the variant
/// still runs to completion; its result is discarded.)
template <typename In, typename Out>
[[nodiscard]] Variant<In, Out> with_deadline(Variant<In, Out> variant,
                                             std::chrono::nanoseconds budget) {
  auto inner = std::move(variant.fn);
  variant.fn = [inner = std::move(inner), budget,
                name = variant.name](const In& input) -> Result<Out> {
    const auto start = std::chrono::steady_clock::now();
    Result<Out> out = inner(input);
    if (std::chrono::steady_clock::now() - start > budget) {
      return failure(FailureKind::timeout, name + " missed its deadline");
    }
    return out;
  };
  return variant;
}

}  // namespace redundancy::core::acceptance
