// Process-wide cache invalidation epoch.
//
// Environment-level redundancy (rejuvenation, microreboot, full reboot)
// deliberately discards accumulated state to clear aging and Heisenbug
// residue. Memoized adjudicated results are exactly such state: a cached
// verdict computed before a restart may embed the very corruption the
// restart was performed to shed. Every restart event therefore advances the
// global epoch; RedundancyCache entries are stamped with the epoch current
// when they were stored and treated as misses once it moves on.
//
// The epoch is a single monotonic counter — advancing it is wait-free and
// costs the caches nothing until the next lookup touches a stale entry.
#pragma once

#include <cstdint>

namespace redundancy::core {

/// The current invalidation epoch (relaxed load; wait-free).
[[nodiscard]] std::uint64_t cache_epoch() noexcept;

/// Advance the epoch, invalidating every cached verdict process-wide.
/// Returns the new epoch. Called by rejuvenation and microreboot on every
/// restart event; safe from any thread.
std::uint64_t advance_cache_epoch() noexcept;

}  // namespace redundancy::core
