#include "core/metrics.hpp"

#include <cstdio>

namespace redundancy::core {

Metrics& Metrics::operator+=(const Metrics& other) {
  requests += other.requests;
  variant_executions += other.variant_executions;
  variant_failures += other.variant_failures;
  adjudications += other.adjudications;
  rollbacks += other.rollbacks;
  recoveries += other.recoveries;
  unrecovered += other.unrecovered;
  disabled_components += other.disabled_components;
  hedged_launches += other.hedged_launches;
  cost_units += other.cost_units;
  return *this;
}

std::string Metrics::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "requests=%zu execs=%zu fails=%zu adjudications=%zu "
                "rollbacks=%zu recovered=%zu unrecovered=%zu cost=%.1f",
                requests, variant_executions, variant_failures, adjudications,
                rollbacks, recoveries, unrecovered, cost_units);
  return buf;
}

}  // namespace redundancy::core
