// Figure 1(a) — parallel evaluation.
//
// All variants execute on the same input configuration; a single adjudicator
// (typically an implicit voter) evaluates the full set of results. This is
// the architecture of N-version programming, N-copy data diversity, process
// replicas, and N-variant data.
//
// Threaded execution fans out on the shared work-stealing pool. Ballots
// complete out of order; the caller joins them collectively (helping with
// queued work while it waits) and accounts each ballot exactly once after it
// lands. With Adjudication::incremental the caller additionally re-votes on
// the ballots that have arrived so far — padding the missing ones with
// failure placeholders so the electorate size stays fixed — and returns as
// soon as the voter reaches a success verdict. Stragglers then finish in the
// background; their execution cost is folded into the metrics on the next
// call.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/concurrency.hpp"
#include "core/metrics.hpp"
#include "core/redundancy_cache.hpp"
#include "core/variant.hpp"
#include "core/voters.hpp"
#include "obs/obs.hpp"
#include "util/checksum.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {

template <typename In, typename Out>
class ParallelEvaluation {
 public:
  ParallelEvaluation(std::vector<Variant<In, Out>> variants, Voter<Out> voter,
                     Concurrency mode = Concurrency::sequential,
                     Adjudication adjudication = Adjudication::join_all)
      : variants_(std::make_shared<std::vector<Variant<In, Out>>>(
            std::move(variants))),
        voter_(std::move(voter)),
        mode_(mode),
        adjudication_(adjudication),
        deferred_(std::make_shared<Deferred>()) {}

  /// Label under which spans, adjudication events, and registry metrics are
  /// emitted (techniques set their own: "nvp", "process_replicas", ...).
  void set_obs_label(std::string label) {
    obs_label_ = std::move(label);
    label_salt_ = util::fnv1a(obs_label_);
    lat_hist_ = nullptr;
    req_counter_ = nullptr;
  }

  /// Memoize adjudicated verdicts keyed by (technique, input digest). Only
  /// sound for deterministic variant sets: a cached verdict replays the
  /// adjudication the electorate produced the first time. Invalidated by
  /// rejuvenation/microreboot epochs, invalidate_cache(), and the TTL.
  void enable_cache(CacheConfig config = {}) {
    static_assert(util::is_digestible_v<In>,
                  "enable_cache needs a digestible input type (integral, "
                  "string, float, vector/optional/pair of those)");
    if (config.label.empty() || config.label == "cache") {
      config.label = obs_label_;
    }
    cache_ = std::make_unique<RedundancyCache<Out>>(std::move(config));
  }
  void disable_cache() noexcept { cache_.reset(); }
  [[nodiscard]] RedundancyCache<Out>* cache() noexcept { return cache_.get(); }
  void invalidate_cache() noexcept {
    if (cache_) cache_->invalidate_all();
  }

  /// Run every variant on `input` and adjudicate the ballots (through the
  /// result cache when one is enabled — a hit skips the electorate and the
  /// voter entirely and performs no heap allocation).
  Result<Out> run(const In& input) {
    if constexpr (util::is_digestible_v<In>) {
      if (cache_) {
        const std::uint64_t t0 = obs::now_ns();
        bool executed = false;
        Result<Out> verdict =
            cache_->get_or_run(cache_key(input), [&]() -> Result<Out> {
              executed = true;
              return run_uncached(input);
            });
        if (!executed) {  // cache hit or coalesced onto another run
          ++metrics_.requests;
          account_observability(t0, verdict.has_value());
        }
        return verdict;
      }
    }
    return run_uncached(input);
  }

 private:
  Result<Out> run_uncached(const In& input) {
    fold_deferred();
    ++metrics_.requests;
    obs::ScopedSpan span{obs_label_};
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    Result<Out> verdict = [&]() -> Result<Out> {
      if (mode_ == Concurrency::threaded &&
          adjudication_ == Adjudication::incremental) {
        // Incremental adjudication may outlive this call, so it needs its
        // own copy of the input; fall back to join_all for move-only inputs.
        if constexpr (std::is_copy_constructible_v<In>) {
          return run_incremental(input);
        }
      }
      auto ballots = collect(input);
      ++metrics_.adjudications;
      Result<Out> v = voter_(ballots);
      if (span.active()) {
        obs::AdjudicationEvent event;
        event.technique = obs_label_;
        event.electorate = ballots.size();
        event.ballots_seen = ballots.size();
        event.ballots_failed = failed_count(ballots);
        event.accepted = v.has_value();
        event.verdict = v.has_value() ? "ok" : v.error().describe();
        obs::record_adjudication(span.context(), std::move(event));
      }
      finish(v, any_failed(ballots));
      return v;
    }();
    if (t0 != 0) account_observability(t0, verdict.has_value());
    span.set_ok(verdict.has_value());
    return verdict;
  }

 public:
  /// Expose raw ballots (used by techniques that post-process divergence,
  /// e.g. process replicas reporting which replica diverged). Always joins
  /// every variant, regardless of the adjudication mode.
  std::vector<Ballot<Out>> collect(const In& input) {
    fold_deferred();
    const std::size_t n = variants_->size();
    // Variant spans parent on the caller's span (run()'s, or whatever the
    // caller has ambient) — passed explicitly so the edge survives stealing.
    const obs::SpanContext ctx = obs::current_context();
    std::vector<Ballot<Out>> ballots;
    ballots.reserve(n);
    if (mode_ == Concurrency::threaded) {
      // Fan out once, join collectively: slots fill in whatever order the
      // variants finish, and nothing is accounted until after the barrier,
      // so the bookkeeping below touches ballots only on this thread. The
      // slot array is member scratch (collect() runs on the owner thread
      // only) and the task closures capture four words + a span context, so
      // they live in the Task inline buffer — after warm-up the fan-out
      // itself costs no heap allocation beyond the task vector.
      std::vector<std::optional<Ballot<Out>>>& slots = slots_scratch_;
      slots.assign(n, std::nullopt);
      for (std::size_t i = 0; i < n; ++i) {
        batch_.add([this, i, &slots, &input, ctx] {
          const Variant<In, Out>& v = (*variants_)[i];
          obs::ScopedSpan vspan{"variant", ctx};
          vspan.set_detail(v.name);
          slots[i].emplace(Ballot<Out>{i, v.name, v(input)});
          vspan.set_ok(slots[i]->result.has_value());
        });
      }
      // One submission epoch for the whole electorate: one wake-up, one
      // pending update, and the builder's storage is reused next call.
      batch_.run_and_wait();
      for (std::size_t i = 0; i < n; ++i) {
        account((*variants_)[i]);
        if (!slots[i]->result.has_value()) ++metrics_.variant_failures;
        ballots.push_back(std::move(*slots[i]));
      }
      slots.clear();
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        account((*variants_)[i]);
        obs::ScopedSpan vspan{"variant", ctx};
        vspan.set_detail((*variants_)[i].name);
        Result<Out> r = (*variants_)[i](input);
        vspan.set_ok(r.has_value());
        if (!r.has_value()) ++metrics_.variant_failures;
        ballots.push_back({i, (*variants_)[i].name, std::move(r)});
      }
    }
    return ballots;
  }

  [[nodiscard]] const Metrics& metrics() const noexcept {
    fold_deferred();
    return metrics_;
  }
  void reset_metrics() noexcept {
    fold_deferred();
    metrics_.reset();
  }
  [[nodiscard]] std::size_t width() const noexcept { return variants_->size(); }

 private:
  /// Work accounted by stragglers after an incremental early return. Folded
  /// into metrics_ lazily so metrics stay a plain struct on the hot path.
  struct Deferred {
    std::atomic<std::size_t> executions{0};
    std::atomic<std::size_t> failures{0};
    std::atomic<double> cost{0.0};
  };

  /// Everything a straggler variant may touch after the caller has returned.
  struct IncrementalState {
    IncrementalState(const In& in,
                     std::shared_ptr<std::vector<Variant<In, Out>>> vs,
                     std::shared_ptr<Deferred> d, std::size_t n)
        : input(in),
          variants(std::move(vs)),
          deferred(std::move(d)),
          arrived(n) {}

    const In input;
    std::shared_ptr<std::vector<Variant<In, Out>>> variants;
    std::shared_ptr<Deferred> deferred;
    std::vector<std::optional<Ballot<Out>>> arrived;
    std::size_t arrived_count = 0;
    std::size_t done = 0;
    bool caller_gone = false;
    std::mutex m;
    std::condition_variable cv;
    util::CancellationToken token;
  };

  Result<Out> run_incremental(const In& input) {
    const std::size_t n = variants_->size();
    auto& pool = util::ThreadPool::shared();
    const obs::SpanContext ctx = obs::current_context();
    auto st =
        std::make_shared<IncrementalState>(input, variants_, deferred_, n);
    for (std::size_t i = 0; i < n; ++i) {
      batch_.add([st, i, ctx] {
        if (st->token.cancelled()) {
          // Skipped before starting: no work done, nothing to account.
          std::lock_guard lock(st->m);
          ++st->done;
          return;
        }
        const Variant<In, Out>& v = (*st->variants)[i];
        Result<Out> r = [&] {
          obs::ScopedSpan vspan{"variant", ctx};
          vspan.set_detail(v.name);
          Result<Out> out = v(st->input);
          vspan.set_ok(out.has_value());
          return out;
        }();
        std::unique_lock lock(st->m);
        ++st->done;
        if (st->caller_gone) {
          // The verdict is already out; fold this work in later.
          st->deferred->executions.fetch_add(1, std::memory_order_relaxed);
          st->deferred->cost.fetch_add(v.cost, std::memory_order_relaxed);
          if (!r.has_value()) {
            st->deferred->failures.fetch_add(1, std::memory_order_relaxed);
          }
          return;
        }
        st->arrived[i].emplace(Ballot<Out>{i, v.name, std::move(r)});
        ++st->arrived_count;
        lock.unlock();
        st->cv.notify_all();
      });
    }
    // Fire-and-forget as one batch: stragglers may outlive this call, but
    // the submission epoch (wake-up + bookkeeping) is still paid once.
    batch_.dispatch();

    std::optional<Result<Out>> early;
    std::size_t last_voted = 0;
    std::size_t rounds = 0;
    std::unique_lock lock(st->m);
    pool.help_until(lock, st->cv, [&] {
      if (st->done == n) return true;
      if (st->arrived_count > last_voted) {
        last_voted = st->arrived_count;
        ++metrics_.adjudications;
        ++rounds;
        Result<Out> v = voter_(padded_ballots(*st, n));
        if (ctx.active()) {
          record_incremental_vote(ctx, *st, n, rounds, v);
        }
        if (v.has_value()) {
          early.emplace(std::move(v));
          return true;
        }
      }
      return false;
    });

    // Account every ballot that made it in before we leave; stragglers go
    // through the Deferred counters instead.
    bool failed_seen = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!st->arrived[i].has_value()) continue;
      account((*variants_)[i]);
      if (!st->arrived[i]->result.has_value()) {
        ++metrics_.variant_failures;
        failed_seen = true;
      }
    }

    if (early.has_value()) {
      st->caller_gone = true;
      st->token.cancel();
      lock.unlock();
      Result<Out> verdict = std::move(*early);
      finish(verdict, failed_seen);
      return verdict;
    }

    // All variants finished without an early success: vote the full set.
    std::vector<Ballot<Out>> ballots;
    ballots.reserve(st->arrived_count);
    for (auto& slot : st->arrived) {
      if (slot.has_value()) ballots.push_back(std::move(*slot));
    }
    lock.unlock();
    ++metrics_.adjudications;
    Result<Out> verdict = voter_(ballots);
    if (ctx.active()) {
      obs::AdjudicationEvent event;
      event.technique = obs_label_;
      event.round = rounds + 1;
      event.electorate = n;
      event.ballots_seen = ballots.size();
      event.ballots_failed = failed_count(ballots);
      event.accepted = verdict.has_value();
      event.verdict = verdict.has_value() ? "ok" : verdict.error().describe();
      obs::record_adjudication(ctx, std::move(event));
    }
    finish(verdict, failed_seen);
    return verdict;
  }

  /// Emit the adjudication event for one incremental revote round. Called
  /// with the state lock held, so `done`/`arrived` reads are consistent.
  void record_incremental_vote(obs::SpanContext ctx,
                               const IncrementalState& st, std::size_t n,
                               std::size_t round, const Result<Out>& v) {
    obs::AdjudicationEvent event;
    event.technique = obs_label_;
    event.round = round;
    event.electorate = n;
    event.ballots_seen = st.arrived_count;
    for (const auto& slot : st.arrived) {
      if (slot.has_value() && !slot->result.has_value()) {
        ++event.ballots_failed;
      }
    }
    event.accepted = v.has_value();
    event.verdict = v.has_value() ? "ok" : v.error().describe();
    // A success verdict short-circuits the join: everything not yet done is
    // cancelled (or finishes as an unobserved straggler).
    if (v.has_value()) event.stragglers_cancelled = n - st.done;
    obs::record_adjudication(ctx, std::move(event));
  }

  /// Arrived ballots plus failure placeholders for the rest, so the voter
  /// sees the full electorate size (a strict majority of n stays a strict
  /// majority once every ballot is in).
  static std::vector<Ballot<Out>> padded_ballots(const IncrementalState& st,
                                                 std::size_t n) {
    std::vector<Ballot<Out>> ballots;
    ballots.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (st.arrived[i].has_value()) {
        ballots.push_back(*st.arrived[i]);
      } else {
        ballots.push_back({i, (*st.variants)[i].name,
                           failure(FailureKind::unavailable,
                                   "ballot not yet available")});
      }
    }
    return ballots;
  }

  static bool any_failed(const std::vector<Ballot<Out>>& ballots) {
    for (const auto& b : ballots) {
      if (!b.result.has_value()) return true;
    }
    return false;
  }

  static std::size_t failed_count(const std::vector<Ballot<Out>>& ballots) {
    std::size_t failed = 0;
    for (const auto& b : ballots) {
      if (!b.result.has_value()) ++failed;
    }
    return failed;
  }

  /// Always-on (sampling-independent) registry metrics for one request.
  /// References are resolved lazily and cached: the registry lookup locks.
  void account_observability(std::uint64_t t0, bool ok) {
    if (lat_hist_ == nullptr) {
      lat_hist_ = &obs::histogram("technique.request_ns", obs_label_);
      req_counter_ = &obs::counter("technique.requests", obs_label_);
      fail_counter_ = &obs::counter("technique.unrecovered", obs_label_);
    }
    lat_hist_->record(obs::now_ns() - t0);
    req_counter_->add();
    if (!ok) fail_counter_->add();
  }

  void finish(const Result<Out>& verdict, bool failed_seen) {
    if (verdict.has_value()) {
      if (failed_seen) ++metrics_.recoveries;
    } else {
      ++metrics_.unrecovered;
    }
  }

  void account(const Variant<In, Out>& v) {
    ++metrics_.variant_executions;
    metrics_.cost_units += v.cost;
  }

  void fold_deferred() const noexcept {
    const std::size_t ex =
        deferred_->executions.exchange(0, std::memory_order_relaxed);
    const std::size_t fl =
        deferred_->failures.exchange(0, std::memory_order_relaxed);
    const double cost = deferred_->cost.exchange(0.0, std::memory_order_relaxed);
    metrics_.variant_executions += ex;
    metrics_.variant_failures += fl;
    metrics_.cost_units += cost;
  }

  /// (technique, input) cache key: the obs label salts the input digest so
  /// two engines sharing one process never collide on equal inputs.
  [[nodiscard]] std::uint64_t cache_key(const In& input) const noexcept {
    util::Digest64 d;
    d.update(label_salt_);
    d.update(input);
    return d.value();
  }

  std::shared_ptr<std::vector<Variant<In, Out>>> variants_;
  Voter<Out> voter_;
  Concurrency mode_;
  Adjudication adjudication_;
  std::shared_ptr<Deferred> deferred_;
  std::unique_ptr<RedundancyCache<Out>> cache_;
  std::vector<std::optional<Ballot<Out>>> slots_scratch_;
  util::BatchRunner batch_;  ///< reusable fan-out builder (owner thread only)
  mutable Metrics metrics_;
  std::uint64_t label_salt_ = util::fnv1a("parallel_evaluation");
  std::string obs_label_ = "parallel_evaluation";
  obs::Histogram* lat_hist_ = nullptr;
  obs::Counter* req_counter_ = nullptr;
  obs::Counter* fail_counter_ = nullptr;
};

}  // namespace redundancy::core
