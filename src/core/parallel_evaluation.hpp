// Figure 1(a) — parallel evaluation.
//
// All variants execute on the same input configuration; a single adjudicator
// (typically an implicit voter) evaluates the full set of results. This is
// the architecture of N-version programming, N-copy data diversity, process
// replicas, and N-variant data.
#pragma once

#include <functional>
#include <future>
#include <vector>

#include "core/metrics.hpp"
#include "core/variant.hpp"
#include "core/voters.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {

enum class Concurrency {
  sequential,  ///< run variants one by one (deterministic; default)
  threaded,    ///< fan out on the shared thread pool (variants must be thread-safe)
};

template <typename In, typename Out>
class ParallelEvaluation {
 public:
  ParallelEvaluation(std::vector<Variant<In, Out>> variants, Voter<Out> voter,
                     Concurrency mode = Concurrency::sequential)
      : variants_(std::move(variants)), voter_(std::move(voter)), mode_(mode) {}

  /// Run every variant on `input` and adjudicate the ballots.
  Result<Out> run(const In& input) {
    ++metrics_.requests;
    auto ballots = collect(input);
    ++metrics_.adjudications;
    Result<Out> verdict = voter_(ballots);
    if (verdict.has_value()) {
      // The mechanism masked any variant failures that occurred.
      bool any_failed = false;
      for (const auto& b : ballots) {
        if (!b.result.has_value()) any_failed = true;
      }
      if (any_failed) ++metrics_.recoveries;
    } else {
      ++metrics_.unrecovered;
    }
    return verdict;
  }

  /// Expose raw ballots (used by techniques that post-process divergence,
  /// e.g. process replicas reporting which replica diverged).
  std::vector<Ballot<Out>> collect(const In& input) {
    std::vector<Ballot<Out>> ballots;
    ballots.reserve(variants_.size());
    if (mode_ == Concurrency::threaded) {
      std::vector<std::future<Result<Out>>> futures;
      futures.reserve(variants_.size());
      for (auto& v : variants_) {
        futures.push_back(util::ThreadPool::shared().submit(
            [&v, &input] { return v(input); }));
      }
      for (std::size_t i = 0; i < variants_.size(); ++i) {
        account(variants_[i]);
        Result<Out> r = futures[i].get();
        if (!r.has_value()) ++metrics_.variant_failures;
        ballots.push_back({i, variants_[i].name, std::move(r)});
      }
    } else {
      for (std::size_t i = 0; i < variants_.size(); ++i) {
        account(variants_[i]);
        Result<Out> r = variants_[i](input);
        if (!r.has_value()) ++metrics_.variant_failures;
        ballots.push_back({i, variants_[i].name, std::move(r)});
      }
    }
    return ballots;
  }

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  void reset_metrics() noexcept { metrics_.reset(); }
  [[nodiscard]] std::size_t width() const noexcept { return variants_.size(); }

 private:
  void account(const Variant<In, Out>& v) {
    ++metrics_.variant_executions;
    metrics_.cost_units += v.cost;
  }

  std::vector<Variant<In, Out>> variants_;
  Voter<Out> voter_;
  Concurrency mode_;
  Metrics metrics_;
};

}  // namespace redundancy::core
