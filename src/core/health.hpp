// Per-technique health derived from recent adjudication verdicts.
//
// The paper's adjudicator is the component that *knows* whether redundancy
// is currently earning its keep: a verdict that accepts with zero failed
// ballots means the variants agree (healthy); accepting while masking
// failed ballots means the technique is actively spending redundancy to
// stay correct (degraded); rejecting means redundancy was exhausted
// (failing). HealthTracker folds the stream of obs::AdjudicationEvents into
// exactly that three-state signal, per technique, over a sliding window of
// the most recent verdicts — the body behind `GET /healthz`.
//
//   ok        — no rejected and no masked verdicts in the window
//   degraded  — accepting, but ≥1 verdict masked failed ballots
//   failing   — ≥1 verdict in the window rejected outright
//
// It plugs straight into the Recorder as a TraceSink (span records are
// ignored), so health tracks whatever the instrumentation already emits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event.hpp"
#include "obs/sink.hpp"

namespace redundancy::core {

enum class HealthState : std::uint8_t { unknown, ok, degraded, failing };

[[nodiscard]] std::string_view to_string(HealthState state) noexcept;

/// One technique's view over its window of recent verdicts.
struct TechniqueHealth {
  HealthState state = HealthState::unknown;
  std::size_t window = 0;    ///< verdicts currently in the window
  std::size_t accepted = 0;  ///< accepted verdicts in the window
  std::size_t masked = 0;    ///< accepted with ballots_failed > 0
  std::size_t rejected = 0;  ///< verdicts that carried no value
  std::uint64_t stragglers_cancelled = 0;  ///< summed over the window
  double error_rate = 0.0;   ///< rejected / window (0 when window empty)
  std::uint64_t last_transition_ns = 0;  ///< obs::now_ns() at the last
                                         ///< state change (0 = never)
};

class HealthTracker final : public obs::TraceSink {
 public:
  /// Window from REDUNDANCY_HEALTH_WINDOW (verdicts per technique; strict
  /// decimal in 1..1000000, loud stderr fallback to 64 on anything else).
  HealthTracker();
  /// `window` = verdicts retained per technique (the health horizon).
  explicit HealthTracker(std::size_t window);

  void on_span(const obs::SpanRecord&) override {}
  void on_adjudication(const obs::AdjudicationEvent& event) override {
    observe(event);
  }

  /// Fold one verdict in (also usable without the Recorder). Thread-safe.
  void observe(const obs::AdjudicationEvent& event);

  /// Health of one technique (state `unknown` when never seen).
  [[nodiscard]] TechniqueHealth technique(const std::string& name) const;

  /// Every technique seen so far, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, TechniqueHealth>>
  snapshot() const;

  /// Worst state over all techniques (`unknown` when nothing observed yet —
  /// an idle process is not unhealthy).
  [[nodiscard]] HealthState overall() const;

  /// The /healthz body: one summary line, then one line per technique.
  [[nodiscard]] std::string healthz_text() const;

  void reset();

 private:
  struct Window {
    struct Verdict {
      bool accepted = false;
      bool masked = false;
      std::uint32_t stragglers = 0;
    };
    std::deque<Verdict> recent;
    std::size_t accepted = 0;
    std::size_t masked = 0;
    std::size_t rejected = 0;
    std::uint64_t stragglers_cancelled = 0;
    HealthState last_state = HealthState::unknown;
    std::uint64_t last_transition_ns = 0;
  };

  [[nodiscard]] static TechniqueHealth derive(const Window& w);

  const std::size_t window_;
  mutable std::mutex mutex_;
  std::map<std::string, Window> techniques_;
};

}  // namespace redundancy::core
