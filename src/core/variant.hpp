// Variant: the unit of code redundancy.
//
// A Variant<In, Out> is one of several logically-equivalent implementations
// of the same functionality — an independently developed version (N-version
// programming), an alternate block (recovery blocks), a spare component
// (self-checking programming), or a substitute service. Patterns in
// core/patterns.hpp compose sets of variants with adjudicators.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/result.hpp"
#include "util/small_function.hpp"

namespace redundancy::core {

template <typename In, typename Out>
struct Variant {
  /// Human-readable identity ("version-A", "sqrt/newton", endpoint URL...).
  std::string name;
  /// The implementation. Must be callable concurrently if the enclosing
  /// pattern is configured for threaded execution. SmallFunction, not
  /// std::function: invoking a variant is the single hottest indirect call
  /// in the engine (every task of every fan-out), and the 64-byte inline
  /// buffer keeps the closure state on the wrapper's own cache lines
  /// instead of behind libstdc++'s manager-thunk double hop (FL031).
  util::SmallFunction<Result<Out>(const In&)> fn;
  /// Abstract execution cost (used by the cost-of-redundancy experiments;
  /// sequential patterns consume cost only for the variants they run).
  double cost = 1.0;
  /// Parallel selection / self-checking disable components that fail.
  bool enabled = true;

  Result<Out> operator()(const In& input) const { return fn(input); }
};

template <typename In, typename Out>
[[nodiscard]] Variant<In, Out> make_variant(
    std::string name, util::SmallFunction<Result<Out>(const In&)> fn,
    double cost = 1.0) {
  return Variant<In, Out>{std::move(name), std::move(fn), cost, true};
}

/// One variant's contribution to an adjudication round.
template <typename Out>
struct Ballot {
  std::size_t variant_index = 0;
  std::string variant_name;
  Result<Out> result;
};

/// Explicit adjudicator: judges a single (input, output) pair — the
/// "acceptance test" of recovery blocks and self-checking components.
/// SmallFunction for the same reason as Variant::fn: acceptance runs once
/// per produced output on the pattern hot path.
template <typename In, typename Out>
using AcceptanceTest = util::SmallFunction<bool(const In&, const Out&)>;

/// Trivially accepting test (useful to degrade a pattern to "first result").
template <typename In, typename Out>
[[nodiscard]] AcceptanceTest<In, Out> accept_all() {
  return [](const In&, const Out&) { return true; };
}

}  // namespace redundancy::core
