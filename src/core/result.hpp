// Result<T>: the value-or-failure type every redundant mechanism traffics in.
//
// We deliberately avoid exceptions for expected failures — a fault-tolerance
// framework's whole business is failures, so they are first-class values.
#pragma once

#include <optional>
#include <stdexcept>
#include <utility>
#include <variant>

#include "core/failure.hpp"

namespace redundancy::core {

template <typename T>
class [[nodiscard]] Result {
 public:
  using value_type = T;

  // Implicit construction from either alternative keeps call sites terse:
  // `return 42;` or `return failure(FailureKind::crash);`.
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Failure f) : state_(std::in_place_index<1>, std::move(f)) {}

  static Result ok(T value) { return Result{std::move(value)}; }
  static Result fail(Failure f) { return Result{std::move(f)}; }

  [[nodiscard]] bool has_value() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const T& value() const& {
    if (!has_value()) throw std::logic_error{"Result: value() on failure"};
    return std::get<0>(state_);
  }
  [[nodiscard]] T& value() & {
    if (!has_value()) throw std::logic_error{"Result: value() on failure"};
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& take() && {
    if (!has_value()) throw std::logic_error{"Result: take() on failure"};
    return std::get<0>(std::move(state_));
  }

  [[nodiscard]] const Failure& error() const& {
    if (has_value()) throw std::logic_error{"Result: error() on success"};
    return std::get<1>(state_);
  }

  // Hot-path accessors: nullptr instead of a throw on the wrong arm, so the
  // cache and the hedging scheduler can branch on an adjudicated verdict
  // without touching the exception machinery. The variant itself is in-place
  // storage — a Result owns no heap block beyond what T/Failure allocate —
  // which is what lets a cache hit be served as a plain copy.
  [[nodiscard]] const T* try_value() const noexcept {
    return std::get_if<0>(&state_);
  }
  [[nodiscard]] T* try_value() noexcept { return std::get_if<0>(&state_); }
  [[nodiscard]] const Failure* try_error() const noexcept {
    return std::get_if<1>(&state_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(state_) : std::move(fallback);
  }

  /// Apply fn to the value if present; propagate the failure otherwise.
  template <typename F>
  auto map(F&& fn) const -> Result<std::invoke_result_t<F, const T&>> {
    if (has_value()) return std::forward<F>(fn)(std::get<0>(state_));
    return std::get<1>(state_);
  }

  /// Monadic bind: fn returns Result<U>.
  template <typename F>
  auto and_then(F&& fn) const -> std::invoke_result_t<F, const T&> {
    if (has_value()) return std::forward<F>(fn)(std::get<0>(state_));
    return std::get<1>(state_);
  }

  friend bool operator==(const Result& a, const Result& b) {
    if (a.has_value() != b.has_value()) return false;
    if (a.has_value()) return a.value() == b.value();
    return a.error().kind == b.error().kind;
  }

 private:
  std::variant<T, Failure> state_;
};

/// Specialization-free helper for "void" computations.
struct Unit {
  friend bool operator==(Unit, Unit) { return true; }
};
using Status = Result<Unit>;

inline Status ok_status() { return Status{Unit{}}; }

}  // namespace redundancy::core
