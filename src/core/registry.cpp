#include "core/registry.hpp"

#include <algorithm>

namespace redundancy::core {

TechniqueRegistry& TechniqueRegistry::instance() {
  static TechniqueRegistry registry;
  return registry;
}

void TechniqueRegistry::add(TaxonomyEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&entry](const TaxonomyEntry& e) {
                           return e.name == entry.name;
                         });
  if (it != entries_.end()) {
    *it = std::move(entry);
  } else {
    entries_.push_back(std::move(entry));
  }
}

std::optional<TaxonomyEntry> TechniqueRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

std::vector<TaxonomyEntry> TechniqueRegistry::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::size_t TechniqueRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace redundancy::core
