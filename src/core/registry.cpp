#include "core/registry.hpp"

#include <algorithm>

namespace redundancy::core {

TechniqueRegistry& TechniqueRegistry::instance() {
  static TechniqueRegistry registry;
  return registry;
}

void TechniqueRegistry::add(TaxonomyEntry entry) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&entry](const TaxonomyEntry& e) {
                           return e.name == entry.name;
                         });
  if (it != entries_.end()) {
    *it = std::move(entry);
  } else {
    entries_.push_back(std::move(entry));
  }
}

std::optional<TaxonomyEntry> TechniqueRegistry::find(std::string_view name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

}  // namespace redundancy::core
