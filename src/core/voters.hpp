// Implicit adjudicators: voters over the ballots of parallel variants.
//
// The paper distinguishes implicit adjudicators "built into the redundant
// mechanism" (majority voting in N-version programming, comparison in
// process replicas and N-variant data) from explicit, application-specific
// acceptance tests. This header provides the implicit family.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "core/variant.hpp"

namespace redundancy::core {

template <typename Out>
using Voter = std::function<Result<Out>(const std::vector<Ballot<Out>>&)>;

/// Strict-majority voter (classic N-version programming, Avizienis 1985).
///
/// A value wins only if strictly more than half of *all* N variants (failed
/// ones included) agree on it: with N = 2k+1 versions the system tolerates
/// up to k faulty results. Ties and sub-majority pluralities yield
/// `adjudication_failed`.
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> majority_voter(Eq eq = Eq{}) {
  return [eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
    const std::size_t n = ballots.size();
    if (n == 0) return failure(FailureKind::adjudication_failed, "no ballots");
    // Group equal outputs; Out need not be hashable or ordered, so this is
    // the quadratic grouping — N is small (3..9) in every realistic use.
    std::vector<std::size_t> group(n, 0);
    std::vector<std::size_t> counts;
    std::vector<const Out*> reps;
    for (std::size_t i = 0; i < n; ++i) {
      if (!ballots[i].result.has_value()) continue;
      const Out& v = ballots[i].result.value();
      bool found = false;
      for (std::size_t g = 0; g < reps.size(); ++g) {
        if (eq(*reps[g], v)) {
          ++counts[g];
          found = true;
          break;
        }
      }
      if (!found) {
        reps.push_back(&v);
        counts.push_back(1);
      }
    }
    for (std::size_t g = 0; g < reps.size(); ++g) {
      if (2 * counts[g] > n) return *reps[g];
    }
    return failure(FailureKind::adjudication_failed, "no majority quorum");
  };
}

/// Plurality voter: the largest agreeing group wins; ties fail.
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> plurality_voter(Eq eq = Eq{}) {
  return [eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
    std::vector<std::size_t> counts;
    std::vector<const Out*> reps;
    for (const auto& b : ballots) {
      if (!b.result.has_value()) continue;
      const Out& v = b.result.value();
      bool found = false;
      for (std::size_t g = 0; g < reps.size(); ++g) {
        if (eq(*reps[g], v)) {
          ++counts[g];
          found = true;
          break;
        }
      }
      if (!found) {
        reps.push_back(&v);
        counts.push_back(1);
      }
    }
    if (reps.empty()) {
      return failure(FailureKind::adjudication_failed, "all variants failed");
    }
    std::size_t best = 0;
    for (std::size_t g = 1; g < reps.size(); ++g) {
      if (counts[g] > counts[best]) best = g;
    }
    const auto ties = static_cast<std::size_t>(
        std::count(counts.begin(), counts.end(), counts[best]));
    if (ties > 1) {
      return failure(FailureKind::adjudication_failed, "plurality tie");
    }
    return *reps[best];
  };
}

/// Unanimity comparator: any divergence (or any failure) is flagged.
///
/// This is the adjudicator of the security mechanisms — process replicas
/// (Cox et al.) and N-variant data (Nguyen-Tuong et al.) — where divergence
/// means a (possibly malicious) fault was activated in some replica.
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> unanimity_voter(Eq eq = Eq{}) {
  return [eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
    if (ballots.empty()) {
      return failure(FailureKind::adjudication_failed, "no ballots");
    }
    const Out* first = nullptr;
    for (const auto& b : ballots) {
      if (!b.result.has_value()) {
        return failure(FailureKind::detected_attack,
                       "replica " + b.variant_name + " failed: " +
                           b.result.error().describe(),
                       b.result.error().cause);
      }
      if (first == nullptr) {
        first = &b.result.value();
      } else if (!eq(*first, b.result.value())) {
        return failure(FailureKind::detected_attack,
                       "divergence at replica " + b.variant_name);
      }
    }
    return *first;
  };
}

/// Median voter for totally ordered outputs — the classic inexact-voting
/// choice when independently developed versions legitimately differ in
/// low-order bits.
template <typename Out>
[[nodiscard]] Voter<Out> median_voter() {
  return [](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
    std::vector<Out> vals;
    for (const auto& b : ballots) {
      if (b.result.has_value()) vals.push_back(b.result.value());
    }
    if (vals.empty()) {
      return failure(FailureKind::adjudication_failed, "all variants failed");
    }
    const auto mid = vals.size() / 2;
    std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(mid),
                     vals.end());
    return vals[mid];
  };
}

/// Weighted voter: each variant carries a reliability weight; the value
/// whose supporters' weights sum highest wins (strictly above half the total
/// weight if `require_majority`).
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> weighted_voter(std::vector<double> weights,
                                        bool require_majority = false,
                                        Eq eq = Eq{}) {
  return [weights = std::move(weights), require_majority,
          eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
    double total = 0.0;
    for (const auto& b : ballots) {
      total += b.variant_index < weights.size() ? weights[b.variant_index] : 1.0;
    }
    std::vector<double> score;
    std::vector<const Out*> reps;
    for (const auto& b : ballots) {
      if (!b.result.has_value()) continue;
      const double w =
          b.variant_index < weights.size() ? weights[b.variant_index] : 1.0;
      const Out& v = b.result.value();
      bool found = false;
      for (std::size_t g = 0; g < reps.size(); ++g) {
        if (eq(*reps[g], v)) {
          score[g] += w;
          found = true;
          break;
        }
      }
      if (!found) {
        reps.push_back(&v);
        score.push_back(w);
      }
    }
    if (reps.empty()) {
      return failure(FailureKind::adjudication_failed, "all variants failed");
    }
    std::size_t best = 0;
    for (std::size_t g = 1; g < reps.size(); ++g) {
      if (score[g] > score[best]) best = g;
    }
    if (require_majority && !(2.0 * score[best] > total)) {
      return failure(FailureKind::adjudication_failed, "no weighted majority");
    }
    return *reps[best];
  };
}

/// Approximate equality for floating-point outputs (inexact voting).
struct ApproxEq {
  double tolerance = 1e-9;
  bool operator()(double a, double b) const noexcept {
    const double diff = a > b ? a - b : b - a;
    const double mag = std::max({1.0, a > 0 ? a : -a, b > 0 ? b : -b});
    return diff <= tolerance * mag;
  }
};

}  // namespace redundancy::core
