// Implicit adjudicators: voters over the ballots of parallel variants.
//
// The paper distinguishes implicit adjudicators "built into the redundant
// mechanism" (majority voting in N-version programming, comparison in
// process replicas and N-variant data) from explicit, application-specific
// acceptance tests. This header provides the implicit family.
//
// Fast path: when the output type is byte-viewable (ByteBuffer, string,
// vector of padding-free trivials, padding-free scalars — see
// util/wordwise.hpp) and the comparator is plain std::equal_to, the
// grouping voters take a vectorized route: one word-wise Digest64-style
// prepass turns N-way grouping into O(N) integer compares, the winning
// group is confirmed byte-exactly once (word-wise SIMD equality), and all
// scratch comes from the calling thread's bump arena instead of the heap.
// Equal values always share a digest, so a collision can only *merge*
// distinct values into one group, never split a real one; the confirm pass
// detects that and falls back to the scalar reference implementation. A
// colliding group therefore can never win a vote — the worst a collision
// can do (at probability ~2^-64) is turn a would-be plurality win into a
// safe-side adjudication failure. Custom comparators (ApproxEq etc.) and
// non-viewable types always use the scalar path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/variant.hpp"
#include "util/arena.hpp"
#include "util/small_function.hpp"
#include "util/wordwise.hpp"

namespace redundancy::core {

/// The adjudicator slot of every voting pattern. SmallFunction, not
/// std::function: the voter runs once per adjudication round (and once per
/// *ballot* in incremental adjudication), and every voter this header
/// builds fits the 64-byte inline buffer — so adjudication never chases a
/// heap-allocated closure (FL031).
template <typename Out>
using Voter =
    util::SmallFunction<Result<Out>(const std::vector<Ballot<Out>>&)>;

namespace voter_detail {

/// Does <Out, Eq> qualify for the word-wise digest-grouping route?
template <typename Out, typename Eq>
inline constexpr bool use_wordwise_v =
    std::is_same_v<Eq, std::equal_to<Out>> && util::wordwise::byte_viewable_v<Out>;

/// Quadratic scalar grouping shared by the reference voters: fills
/// parallel arrays of representatives and their supporter counts.
template <typename Out, typename Eq>
void group_scalar(const std::vector<Ballot<Out>>& ballots, const Eq& eq,
                  std::vector<const Out*>& reps,
                  std::vector<std::size_t>& counts) {
  for (const auto& b : ballots) {
    if (!b.result.has_value()) continue;
    const Out& v = b.result.value();
    bool found = false;
    for (std::size_t g = 0; g < reps.size(); ++g) {
      if (eq(*reps[g], v)) {
        ++counts[g];
        found = true;
        break;
      }
    }
    if (!found) {
      reps.push_back(&v);
      counts.push_back(1);
    }
  }
}

/// Digest-grouping result: ballot values grouped by 64-bit content digest.
/// Arena-backed; valid until the enclosing ArenaScope closes.
template <typename Out>
struct HashedGroups {
  std::span<const Out*> reps;       ///< first value seen per digest
  std::span<std::size_t> counts;    ///< supporters per group
  std::span<std::uint64_t> digests; ///< digest per group
  std::span<std::size_t> member_group;  ///< ballot index -> group (npos if failed)
  std::size_t n_groups = 0;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

template <typename Out>
HashedGroups<Out> group_hashed(const std::vector<Ballot<Out>>& ballots,
                               util::Arena& arena) {
  const std::size_t n = ballots.size();
  HashedGroups<Out> g;
  g.reps = arena.alloc_array<const Out*>(n);
  g.counts = arena.alloc_array<std::size_t>(n);
  g.digests = arena.alloc_array<std::uint64_t>(n);
  g.member_group = arena.alloc_array<std::size_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.member_group[i] = HashedGroups<Out>::npos;
    if (!ballots[i].result.has_value()) continue;
    const Out& v = ballots[i].result.value();
    const std::uint64_t d = util::wordwise::hash64_of(v);
    std::size_t gi = g.n_groups;
    for (std::size_t k = 0; k < g.n_groups; ++k) {
      if (g.digests[k] == d) {
        gi = k;
        break;
      }
    }
    if (gi == g.n_groups) {
      g.reps[gi] = &v;
      g.counts[gi] = 0;
      g.digests[gi] = d;
      ++g.n_groups;
    }
    g.counts[gi] += 1;
    g.member_group[i] = gi;
  }
  return g;
}

/// Byte-exact confirmation of one hashed group: every member must equal
/// the representative. False means a digest collision lumped unequal
/// values together — the caller re-runs the scalar reference path.
template <typename Out>
[[nodiscard]] bool confirm_group(const std::vector<Ballot<Out>>& ballots,
                                 const HashedGroups<Out>& g,
                                 std::size_t group) {
  const Out& rep = *g.reps[group];
  for (std::size_t i = 0; i < ballots.size(); ++i) {
    if (g.member_group[i] != group) continue;
    if (!util::wordwise::equal_values(rep, ballots[i].result.value())) {
      return false;
    }
  }
  return true;
}

template <typename Out, typename Eq>
Result<Out> majority_scalar(const std::vector<Ballot<Out>>& ballots,
                            const Eq& eq) {
  const std::size_t n = ballots.size();
  if (n == 0) return failure(FailureKind::adjudication_failed, "no ballots");
  // Group equal outputs; Out need not be hashable or ordered, so this is
  // the quadratic grouping — N is small (3..9) in every realistic use.
  std::vector<std::size_t> counts;
  std::vector<const Out*> reps;
  group_scalar(ballots, eq, reps, counts);
  for (std::size_t g = 0; g < reps.size(); ++g) {
    if (2 * counts[g] > n) return *reps[g];
  }
  return failure(FailureKind::adjudication_failed, "no majority quorum");
}

template <typename Out, typename Eq>
Result<Out> plurality_scalar(const std::vector<Ballot<Out>>& ballots,
                             const Eq& eq) {
  std::vector<std::size_t> counts;
  std::vector<const Out*> reps;
  group_scalar(ballots, eq, reps, counts);
  if (reps.empty()) {
    return failure(FailureKind::adjudication_failed, "all variants failed");
  }
  std::size_t best = 0;
  for (std::size_t g = 1; g < reps.size(); ++g) {
    if (counts[g] > counts[best]) best = g;
  }
  const auto ties = static_cast<std::size_t>(
      std::count(counts.begin(), counts.end(), counts[best]));
  if (ties > 1) {
    return failure(FailureKind::adjudication_failed, "plurality tie");
  }
  return *reps[best];
}

}  // namespace voter_detail

/// Strict-majority voter (classic N-version programming, Avizienis 1985).
///
/// A value wins only if strictly more than half of *all* N variants (failed
/// ones included) agree on it: with N = 2k+1 versions the system tolerates
/// up to k faulty results. Ties and sub-majority pluralities yield
/// `adjudication_failed`.
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> majority_voter(Eq eq = Eq{}) {
  if constexpr (voter_detail::use_wordwise_v<Out, Eq>) {
    return [](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
      const std::size_t n = ballots.size();
      if (n == 0) {
        return failure(FailureKind::adjudication_failed, "no ballots");
      }
      util::Arena& arena = util::thread_arena();
      util::ArenaScope scope{arena};
      const auto groups = voter_detail::group_hashed(ballots, arena);
      for (std::size_t g = 0; g < groups.n_groups; ++g) {
        if (2 * groups.counts[g] > n) {
          if (voter_detail::confirm_group(ballots, groups, g)) {
            return *groups.reps[g];
          }
          // Digest collision: the reference path re-derives the verdict.
          return voter_detail::majority_scalar(ballots, std::equal_to<Out>{});
        }
      }
      return failure(FailureKind::adjudication_failed, "no majority quorum");
    };
  } else {
    return [eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
      return voter_detail::majority_scalar(ballots, eq);
    };
  }
}

/// Plurality voter: the largest agreeing group wins; ties fail.
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> plurality_voter(Eq eq = Eq{}) {
  if constexpr (voter_detail::use_wordwise_v<Out, Eq>) {
    return [](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
      util::Arena& arena = util::thread_arena();
      util::ArenaScope scope{arena};
      const auto groups = voter_detail::group_hashed(ballots, arena);
      if (groups.n_groups == 0) {
        return failure(FailureKind::adjudication_failed, "all variants failed");
      }
      std::size_t best = 0;
      std::size_t ties = 1;
      for (std::size_t g = 1; g < groups.n_groups; ++g) {
        if (groups.counts[g] > groups.counts[best]) {
          best = g;
          ties = 1;
        } else if (groups.counts[g] == groups.counts[best]) {
          ++ties;
        }
      }
      if (ties > 1) {
        return failure(FailureKind::adjudication_failed, "plurality tie");
      }
      if (voter_detail::confirm_group(ballots, groups, best)) {
        return *groups.reps[best];
      }
      return voter_detail::plurality_scalar(ballots, std::equal_to<Out>{});
    };
  } else {
    return [eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
      return voter_detail::plurality_scalar(ballots, eq);
    };
  }
}

/// Unanimity comparator: any divergence (or any failure) is flagged.
///
/// This is the adjudicator of the security mechanisms — process replicas
/// (Cox et al.) and N-variant data (Nguyen-Tuong et al.) — where divergence
/// means a (possibly malicious) fault was activated in some replica. The
/// word-wise fast path only uses digests to *detect* divergence (digests
/// differing proves the values differ); agreement is always confirmed by
/// full byte comparison, so a hash collision can never hide an attack.
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> unanimity_voter(Eq eq = Eq{}) {
  if constexpr (voter_detail::use_wordwise_v<Out, Eq>) {
    return [](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
      if (ballots.empty()) {
        return failure(FailureKind::adjudication_failed, "no ballots");
      }
      const Out* first = nullptr;
      std::uint64_t first_digest = 0;
      for (const auto& b : ballots) {
        if (!b.result.has_value()) {
          return failure(FailureKind::detected_attack,
                         "replica " + b.variant_name + " failed: " +
                             b.result.error().describe(),
                         b.result.error().cause);
        }
        if (first == nullptr) {
          first = &b.result.value();
          first_digest = util::wordwise::hash64_of(*first);
          continue;
        }
        // Digest mismatch is proof of divergence (fast fail). Digest match
        // is only a hint: confirm byte-exactly before trusting it.
        const Out& v = b.result.value();
        if (util::wordwise::hash64_of(v) != first_digest ||
            !util::wordwise::equal_values(*first, v)) {
          return failure(FailureKind::detected_attack,
                         "divergence at replica " + b.variant_name);
        }
      }
      return *first;
    };
  } else {
    return [eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
      if (ballots.empty()) {
        return failure(FailureKind::adjudication_failed, "no ballots");
      }
      const Out* first = nullptr;
      for (const auto& b : ballots) {
        if (!b.result.has_value()) {
          return failure(FailureKind::detected_attack,
                         "replica " + b.variant_name + " failed: " +
                             b.result.error().describe(),
                         b.result.error().cause);
        }
        if (first == nullptr) {
          first = &b.result.value();
        } else if (!eq(*first, b.result.value())) {
          return failure(FailureKind::detected_attack,
                         "divergence at replica " + b.variant_name);
        }
      }
      return *first;
    };
  }
}

/// Median voter for totally ordered outputs — the classic inexact-voting
/// choice when independently developed versions legitimately differ in
/// low-order bits.
template <typename Out>
[[nodiscard]] Voter<Out> median_voter() {
  return [](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
    std::vector<Out> vals;
    for (const auto& b : ballots) {
      if (b.result.has_value()) vals.push_back(b.result.value());
    }
    if (vals.empty()) {
      return failure(FailureKind::adjudication_failed, "all variants failed");
    }
    const auto mid = vals.size() / 2;
    std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(mid),
                     vals.end());
    return vals[mid];
  };
}

/// Weighted voter: each variant carries a reliability weight; the value
/// whose supporters' weights sum highest wins (strictly above half the total
/// weight if `require_majority`).
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> weighted_voter(std::vector<double> weights,
                                        bool require_majority = false,
                                        Eq eq = Eq{}) {
  return [weights = std::move(weights), require_majority,
          eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
    double total = 0.0;
    for (const auto& b : ballots) {
      total += b.variant_index < weights.size() ? weights[b.variant_index] : 1.0;
    }
    std::vector<double> score;
    std::vector<const Out*> reps;
    for (const auto& b : ballots) {
      if (!b.result.has_value()) continue;
      const double w =
          b.variant_index < weights.size() ? weights[b.variant_index] : 1.0;
      const Out& v = b.result.value();
      bool found = false;
      for (std::size_t g = 0; g < reps.size(); ++g) {
        if (eq(*reps[g], v)) {
          score[g] += w;
          found = true;
          break;
        }
      }
      if (!found) {
        reps.push_back(&v);
        score.push_back(w);
      }
    }
    if (reps.empty()) {
      return failure(FailureKind::adjudication_failed, "all variants failed");
    }
    std::size_t best = 0;
    for (std::size_t g = 1; g < reps.size(); ++g) {
      if (score[g] > score[best]) best = g;
    }
    if (require_majority && !(2.0 * score[best] > total)) {
      return failure(FailureKind::adjudication_failed, "no weighted majority");
    }
    return *reps[best];
  };
}

/// Approximate equality for floating-point outputs (inexact voting).
struct ApproxEq {
  double tolerance = 1e-9;
  bool operator()(double a, double b) const noexcept {
    const double diff = a > b ? a - b : b - a;
    const double mag = std::max({1.0, a > 0 ? a : -a, b > 0 ? b : -b});
    return diff <= tolerance * mag;
  }
};

}  // namespace redundancy::core
