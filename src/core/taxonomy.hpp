// The paper's taxonomy (Table 1) as first-class metadata.
//
// Every technique in src/techniques registers a TaxonomyEntry describing
// where it sits along the four dimensions:
//   intention  — deliberate vs opportunistic redundancy
//   type       — code, data, or environment redundancy
//   adjudicator— preventive, or reactive with implicit/explicit adjudicator
//   faults     — the fault classes the mechanism primarily addresses
// Table 2 of the paper is *generated* from these entries (bench/table2) and
// checked against the published table in tests/core/taxonomy_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/failure.hpp"

namespace redundancy::core {

enum class Intention : std::uint8_t { deliberate, opportunistic };

enum class RedundancyType : std::uint8_t { code, data, environment };

/// Triggers-and-adjudicators dimension. `reactive_hybrid` covers techniques
/// the paper marks "expl./impl." (self-checking programming, data diversity).
enum class AdjudicatorKind : std::uint8_t {
  preventive,
  reactive_implicit,
  reactive_explicit,
  reactive_hybrid,
};

/// The "Faults" column of Table 2. `development` covers both Bohrbugs and
/// Heisenbugs without further commitment, matching the paper's wording.
enum class TargetFaults : std::uint8_t {
  development,
  bohrbugs,
  heisenbugs,
  malicious,
  bohrbugs_and_malicious,
};

/// Figure 1 patterns, plus the intra-component and environment placements
/// discussed in Section 2.
enum class ArchitecturalPattern : std::uint8_t {
  parallel_evaluation,     ///< Fig. 1(a): run all, adjudicate once
  parallel_selection,      ///< Fig. 1(b): run all, per-component adjudicators
  sequential_alternatives, ///< Fig. 1(c): try alternatives until one passes
  intra_component,         ///< redundancy inside a single component
  environment_level,       ///< redundancy rooted in the execution environment
};

[[nodiscard]] std::string_view to_string(Intention v) noexcept;
[[nodiscard]] std::string_view to_string(RedundancyType v) noexcept;
[[nodiscard]] std::string_view to_string(AdjudicatorKind v) noexcept;
[[nodiscard]] std::string_view to_string(TargetFaults v) noexcept;
[[nodiscard]] std::string_view to_string(ArchitecturalPattern v) noexcept;

/// Paper-style rendering (e.g. AdjudicatorKind::reactive_hybrid ->
/// "reactive expl./impl."), used when regenerating Table 2 verbatim.
[[nodiscard]] std::string paper_cell(AdjudicatorKind v);
[[nodiscard]] std::string paper_cell(TargetFaults v);

/// One row of Table 2.
struct TaxonomyEntry {
  std::string name;                 ///< technique family, as in Table 2
  Intention intention{};
  RedundancyType type{};
  AdjudicatorKind adjudicator{};
  TargetFaults faults{};
  ArchitecturalPattern pattern{};   ///< Section 2 / Figure 1 placement
  std::string summary;              ///< one-line description (Section 3)

  friend bool operator==(const TaxonomyEntry&, const TaxonomyEntry&) = default;
};

/// All dimension values with their paper names — reproduces Table 1.
struct TaxonomyDimensions {
  std::vector<std::string> intentions;
  std::vector<std::string> types;
  std::vector<std::string> adjudicators;
  std::vector<std::string> faults;
};

[[nodiscard]] TaxonomyDimensions table1_dimensions();

}  // namespace redundancy::core
