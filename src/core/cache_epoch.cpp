#include "core/cache_epoch.hpp"

#include <atomic>

namespace redundancy::core {

namespace {
std::atomic<std::uint64_t> g_epoch{1};
}  // namespace

std::uint64_t cache_epoch() noexcept {
  return g_epoch.load(std::memory_order_relaxed);
}

std::uint64_t advance_cache_epoch() noexcept {
  return g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace redundancy::core
