// Adaptive reliability-weighted voting — an extension the survey's cost
// discussion points toward: if some versions are observably less reliable,
// the implicit adjudicator can *learn* per-version weights instead of
// treating every ballot equally.
//
// ReliabilityTracker keeps a Laplace-smoothed agreement score per variant:
// after each adjudication round, variants that agreed with the elected
// value gain credit, variants that disagreed (or failed) lose it. The
// tracker then supplies weights for a weighted vote, closing the loop.
#pragma once

#include <vector>

#include "core/voters.hpp"

namespace redundancy::core {

class ReliabilityTracker {
 public:
  explicit ReliabilityTracker(std::size_t variants)
      : agreements_(variants, 1.0), rounds_(variants, 2.0) {}

  /// Record one adjudication round: which variants' ballots matched the
  /// elected output.
  template <typename Out, typename Eq = std::equal_to<Out>>
  void observe(const std::vector<Ballot<Out>>& ballots, const Out& elected,
               Eq eq = Eq{}) {
    for (const auto& ballot : ballots) {
      if (ballot.variant_index >= rounds_.size()) continue;
      rounds_[ballot.variant_index] += 1.0;
      if (ballot.result.has_value() && eq(ballot.result.value(), elected)) {
        agreements_[ballot.variant_index] += 1.0;
      }
    }
  }

  /// Laplace-smoothed agreement rate of one variant.
  [[nodiscard]] double reliability(std::size_t variant) const {
    return variant < rounds_.size() ? agreements_[variant] / rounds_[variant]
                                    : 0.5;
  }

  [[nodiscard]] std::vector<double> weights() const {
    std::vector<double> w(rounds_.size());
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = reliability(i);
    return w;
  }

 private:
  std::vector<double> agreements_;
  std::vector<double> rounds_;
};

/// A self-tuning voter: plurality-elect with learned weights, then feed the
/// outcome back into the tracker. The tracker must outlive the voter.
template <typename Out, typename Eq = std::equal_to<Out>>
[[nodiscard]] Voter<Out> adaptive_voter(ReliabilityTracker& tracker,
                                        Eq eq = Eq{}) {
  return [&tracker, eq](const std::vector<Ballot<Out>>& ballots) -> Result<Out> {
    auto verdict = weighted_voter<Out, Eq>(tracker.weights(),
                                           /*require_majority=*/false, eq)(
        ballots);
    if (verdict.has_value()) {
      tracker.observe(ballots, verdict.value(), eq);
    }
    return verdict;
  };
}

}  // namespace redundancy::core
