#include "core/health.hpp"

#include <algorithm>

namespace redundancy::core {

std::string_view to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::unknown: return "unknown";
    case HealthState::ok: return "ok";
    case HealthState::degraded: return "degraded";
    case HealthState::failing: return "failing";
  }
  return "unknown";
}

HealthTracker::HealthTracker(std::size_t window)
    : window_(window == 0 ? 1 : window) {}

void HealthTracker::observe(const obs::AdjudicationEvent& event) {
  const bool masked = event.accepted && event.ballots_failed > 0;
  std::lock_guard lock(mutex_);
  Window& w = techniques_[event.technique];
  w.recent.push_back({event.accepted, masked,
                      static_cast<std::uint32_t>(std::min<std::size_t>(
                          event.stragglers_cancelled, UINT32_MAX))});
  if (event.accepted) ++w.accepted; else ++w.rejected;
  if (masked) ++w.masked;
  w.stragglers_cancelled += event.stragglers_cancelled;
  while (w.recent.size() > window_) {
    const Window::Verdict& old = w.recent.front();
    if (old.accepted) --w.accepted; else --w.rejected;
    if (old.masked) --w.masked;
    w.stragglers_cancelled -= old.stragglers;
    w.recent.pop_front();
  }
}

TechniqueHealth HealthTracker::derive(const Window& w) {
  TechniqueHealth h;
  h.window = w.recent.size();
  h.accepted = w.accepted;
  h.masked = w.masked;
  h.rejected = w.rejected;
  h.stragglers_cancelled = w.stragglers_cancelled;
  if (h.window == 0) {
    h.state = HealthState::unknown;
  } else if (h.rejected > 0) {
    h.state = HealthState::failing;
  } else if (h.masked > 0) {
    h.state = HealthState::degraded;
  } else {
    h.state = HealthState::ok;
  }
  return h;
}

TechniqueHealth HealthTracker::technique(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = techniques_.find(name);
  return it == techniques_.end() ? TechniqueHealth{} : derive(it->second);
}

std::vector<std::pair<std::string, TechniqueHealth>> HealthTracker::snapshot()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, TechniqueHealth>> out;
  out.reserve(techniques_.size());
  for (const auto& [name, w] : techniques_) out.emplace_back(name, derive(w));
  return out;  // std::map iterates sorted by name
}

HealthState HealthTracker::overall() const {
  HealthState worst = HealthState::unknown;
  for (const auto& [name, h] : snapshot()) {
    if (static_cast<int>(h.state) > static_cast<int>(worst)) worst = h.state;
  }
  return worst;
}

std::string HealthTracker::healthz_text() const {
  const auto techniques = snapshot();
  HealthState worst = HealthState::unknown;
  for (const auto& [name, h] : techniques) {
    if (static_cast<int>(h.state) > static_cast<int>(worst)) worst = h.state;
  }
  std::string out{"status: "};
  out += to_string(worst);
  out += '\n';
  for (const auto& [name, h] : techniques) {
    out += name;
    out += ": ";
    out += to_string(h.state);
    out += " window=" + std::to_string(h.window);
    out += " accepted=" + std::to_string(h.accepted);
    out += " masked=" + std::to_string(h.masked);
    out += " rejected=" + std::to_string(h.rejected);
    out += " stragglers_cancelled=" + std::to_string(h.stragglers_cancelled);
    out += '\n';
  }
  return out;
}

void HealthTracker::reset() {
  std::lock_guard lock(mutex_);
  techniques_.clear();
}

}  // namespace redundancy::core
