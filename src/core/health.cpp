#include "core/health.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/clock.hpp"

namespace redundancy::core {

namespace {

/// REDUNDANCY_HEALTH_WINDOW, parsed with the same strictness as
/// REDUNDANCY_THREADS: decimal digits only, range-checked, loud fallback —
/// a typo'd knob must not silently change the health horizon.
std::size_t window_from_env() noexcept {
  constexpr std::size_t kDefault = 64;
  const char* env = std::getenv("REDUNDANCY_HEALTH_WINDOW");
  if (env == nullptr || *env == '\0') return kDefault;
  std::size_t value = 0;
  bool valid = true;
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9' || value > 1'000'000) {
      valid = false;
      break;
    }
    value = value * 10 + static_cast<std::size_t>(*p - '0');
  }
  if (!valid || value == 0 || value > 1'000'000) {
    std::fprintf(stderr,
                 "[redundancy] REDUNDANCY_HEALTH_WINDOW='%s' is not a valid "
                 "verdict window (expected an integer in 1..1000000); using "
                 "%zu verdicts\n",
                 env, kDefault);
    return kDefault;
  }
  return value;
}

}  // namespace

std::string_view to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::unknown: return "unknown";
    case HealthState::ok: return "ok";
    case HealthState::degraded: return "degraded";
    case HealthState::failing: return "failing";
  }
  return "unknown";
}

HealthTracker::HealthTracker() : HealthTracker(window_from_env()) {}

HealthTracker::HealthTracker(std::size_t window)
    : window_(window == 0 ? 1 : window) {}

void HealthTracker::observe(const obs::AdjudicationEvent& event) {
  const bool masked = event.accepted && event.ballots_failed > 0;
  std::lock_guard lock(mutex_);
  Window& w = techniques_[event.technique];
  w.recent.push_back({event.accepted, masked,
                      static_cast<std::uint32_t>(std::min<std::size_t>(
                          event.stragglers_cancelled, UINT32_MAX))});
  if (event.accepted) ++w.accepted; else ++w.rejected;
  if (masked) ++w.masked;
  w.stragglers_cancelled += event.stragglers_cancelled;
  while (w.recent.size() > window_) {
    const Window::Verdict& old = w.recent.front();
    if (old.accepted) --w.accepted; else --w.rejected;
    if (old.masked) --w.masked;
    w.stragglers_cancelled -= old.stragglers;
    w.recent.pop_front();
  }
  const HealthState now = derive(w).state;
  if (now != w.last_state) {
    w.last_state = now;
    w.last_transition_ns = obs::now_ns();
  }
}

TechniqueHealth HealthTracker::derive(const Window& w) {
  TechniqueHealth h;
  h.window = w.recent.size();
  h.accepted = w.accepted;
  h.masked = w.masked;
  h.rejected = w.rejected;
  h.stragglers_cancelled = w.stragglers_cancelled;
  h.error_rate = h.window == 0 ? 0.0
                               : static_cast<double>(h.rejected) /
                                     static_cast<double>(h.window);
  h.last_transition_ns = w.last_transition_ns;
  if (h.window == 0) {
    h.state = HealthState::unknown;
  } else if (h.rejected > 0) {
    h.state = HealthState::failing;
  } else if (h.masked > 0) {
    h.state = HealthState::degraded;
  } else {
    h.state = HealthState::ok;
  }
  return h;
}

TechniqueHealth HealthTracker::technique(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = techniques_.find(name);
  return it == techniques_.end() ? TechniqueHealth{} : derive(it->second);
}

std::vector<std::pair<std::string, TechniqueHealth>> HealthTracker::snapshot()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, TechniqueHealth>> out;
  out.reserve(techniques_.size());
  for (const auto& [name, w] : techniques_) out.emplace_back(name, derive(w));
  return out;  // std::map iterates sorted by name
}

HealthState HealthTracker::overall() const {
  HealthState worst = HealthState::unknown;
  for (const auto& [name, h] : snapshot()) {
    if (static_cast<int>(h.state) > static_cast<int>(worst)) worst = h.state;
  }
  return worst;
}

std::string HealthTracker::healthz_text() const {
  const auto techniques = snapshot();
  HealthState worst = HealthState::unknown;
  for (const auto& [name, h] : techniques) {
    if (static_cast<int>(h.state) > static_cast<int>(worst)) worst = h.state;
  }
  std::string out{"status: "};
  out += to_string(worst);
  out += '\n';
  for (const auto& [name, h] : techniques) {
    out += name;
    out += ": ";
    out += to_string(h.state);
    out += " window=" + std::to_string(h.window);
    out += " accepted=" + std::to_string(h.accepted);
    out += " masked=" + std::to_string(h.masked);
    out += " rejected=" + std::to_string(h.rejected);
    out += " stragglers_cancelled=" + std::to_string(h.stragglers_cancelled);
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.4f", h.error_rate);
    out += " error_rate=";
    out += rate;
    // Milliseconds since the technique last changed state — a probe's
    // quickest read on "is this flapping or stably bad".
    const std::uint64_t now = obs::now_ns();
    const std::uint64_t since_ms =
        h.last_transition_ns == 0 || now < h.last_transition_ns
            ? 0
            : (now - h.last_transition_ns) / 1'000'000ull;
    out += " since_transition_ms=" + std::to_string(since_ms);
    out += '\n';
  }
  return out;
}

void HealthTracker::reset() {
  std::lock_guard lock(mutex_);
  techniques_.clear();
}

}  // namespace redundancy::core
