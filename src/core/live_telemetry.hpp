// One-call wiring of live telemetry for examples, benches and experiment
// drivers, driven entirely by environment variables so every binary stays
// opt-in and zero-cost by default:
//
//   REDUNDANCY_OBS_HTTP_PORT   start obs::HttpExporter on 127.0.0.1:<port>
//                              (0 = ephemeral; the chosen port is printed).
//                              Serves /metrics, /healthz (from a
//                              core::HealthTracker fed by the recorder) and
//                              /traces?n=K (from a RingTraceSink).
//   REDUNDANCY_OBS_TRACE_FILE  also append every record to this JSONL file
//                              (tools/tracetool input).
//   REDUNDANCY_OBS_SAMPLE      root-span sampling divisor (default 1).
//   REDUNDANCY_OBS_HTTP_LINGER_MS
//                              how long linger_from_env() sleeps before the
//                              process exits, so scrapers can hit the
//                              endpoints after the workload finished.
//   REDUNDANCY_SLO_TARGETS     per-class SLOs as class=latency_ms@avail_pct
//                              (e.g. "/fast=5@99.9,nvp.run=10@99"). Starts
//                              an obs::SloTracker as a recorder sink, serves
//                              /slo, feeds synthetic slo:<class> verdicts
//                              into the health tracker, and exports windowed
//                              burn-rate/error/percentile gauges.
//   REDUNDANCY_SLO_EPOCH_MS    SLO window rotation period (default 10000).
//   REDUNDANCY_FLIGHT_DUMP     enable the obs::FlightRecorder black box,
//                              install the crash handler appending to this
//                              path, serve /debug/flight, and dump on SLO
//                              breach.
//   REDUNDANCY_FLIGHT_RING     flight records per thread (default 1024).
//
// Related (read by net::Gateway, not by this helper):
//   REDUNDANCY_GATEWAY_LOOPS   reactor loop count for gateway hosts
//                              (default min(cores/2, 8), floor 1); each loop
//                              exports its own loop="N"-labelled gateway.*
//                              metric shards through /metrics.
//
// Setting either of the first two enables the recorder for the process
// lifetime. With none of them set, start_live_telemetry_from_env() returns
// nullptr and nothing changes.
#pragma once

#include <memory>

#include "core/health.hpp"
#include "obs/http_exporter.hpp"
#include "obs/sink.hpp"
#include "obs/slo.hpp"

namespace redundancy::core {

/// Owns the wired-up telemetry; destroying it flushes the recorder and
/// stops the HTTP thread (sinks stay attached — the Recorder is process-
/// wide and the process is exiting anyway).
struct LiveTelemetry {
  std::shared_ptr<HealthTracker> health;
  std::shared_ptr<obs::RingTraceSink> ring;
  std::shared_ptr<obs::JsonlTraceSink> trace_file;
  std::shared_ptr<obs::SloTracker> slo;
  std::unique_ptr<obs::HttpExporter> http;

  ~LiveTelemetry();
};

/// Wire up whatever the REDUNDANCY_OBS_* environment asks for; nullptr when
/// none of it is set.
std::unique_ptr<LiveTelemetry> start_live_telemetry_from_env();

/// Sleep REDUNDANCY_OBS_HTTP_LINGER_MS milliseconds (0/unset: return at
/// once) so a scraper can reach the endpoints after the workload is done.
void linger_from_env();

}  // namespace redundancy::core
