// Execution-mode knobs shared by the Figure-1 pattern executors.
#pragma once

namespace redundancy::core {

enum class Concurrency {
  sequential,  ///< run variants one by one (deterministic; default)
  threaded,    ///< fan out on the shared thread pool (variants must be thread-safe)
};

/// How a threaded ParallelEvaluation turns ballots into a verdict.
enum class Adjudication {
  join_all,     ///< wait for every variant, then vote once (default; any voter)
  incremental,  ///< vote as ballots arrive; return as soon as a verdict is
                ///< reachable. Sound only for voters whose *success* verdict on
                ///< a subset padded with failure placeholders cannot be
                ///< overturned by later ballots — strict majority qualifies,
                ///< plurality and median do not.
};

}  // namespace redundancy::core
