// Figure 1(b) — parallel selection.
//
// Every variant executes in parallel and validates its own result through a
// per-component adjudicator (acceptance test). The highest-priority passing
// result is selected; components that fail their check are disabled — the
// "acting / hot spare" discipline of self-checking programming (Laprie et
// al.): a failed acting component is discarded and its spare takes over, so
// redundancy is progressively consumed.
#pragma once

#include <vector>

#include "core/metrics.hpp"
#include "core/variant.hpp"

namespace redundancy::core {

template <typename In, typename Out>
class ParallelSelection {
 public:
  struct Checked {
    Variant<In, Out> variant;
    AcceptanceTest<In, Out> check;
  };

  struct Options {
    /// Take failing components permanently out of service.
    bool disable_on_failure = true;
    /// Stop executing spares once a passing result is found. Figure 1(b)
    /// runs everything in parallel, so the default is to run all.
    bool lazy = false;
  };

  explicit ParallelSelection(std::vector<Checked> components,
                             Options options = {})
      : components_(std::move(components)), options_(options) {}

  Result<Out> run(const In& input) {
    ++metrics_.requests;
    Result<Out> selected =
        failure(FailureKind::no_alternatives, "all components disabled");
    bool have = false;
    bool any_failed = false;
    for (std::size_t i = 0; i < components_.size(); ++i) {
      auto& c = components_[i];
      if (!c.variant.enabled) continue;
      if (options_.lazy && have) break;
      ++metrics_.variant_executions;
      metrics_.cost_units += c.variant.cost;
      Result<Out> r = c.variant(input);
      ++metrics_.adjudications;
      const bool pass = r.has_value() && c.check(input, r.value());
      if (pass) {
        if (!have) {
          selected = std::move(r);
          have = true;
          acting_ = i;
        }
      } else {
        ++metrics_.variant_failures;
        any_failed = true;
        if (options_.disable_on_failure) {
          c.variant.enabled = false;
          ++metrics_.disabled_components;
        }
      }
    }
    if (have) {
      if (any_failed) ++metrics_.recoveries;
    } else {
      ++metrics_.unrecovered;
      if (selected.has_value()) {
        selected = failure(FailureKind::no_alternatives, "no passing component");
      }
    }
    return selected;
  }

  /// Index of the component whose result was last selected.
  [[nodiscard]] std::size_t acting() const noexcept { return acting_; }
  [[nodiscard]] std::size_t alive() const noexcept {
    std::size_t n = 0;
    for (const auto& c : components_) n += c.variant.enabled ? 1 : 0;
    return n;
  }
  /// Re-enable every component (e.g. after repair / redeployment).
  void reinstate_all() noexcept {
    for (auto& c : components_) c.variant.enabled = true;
  }

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  void reset_metrics() noexcept { metrics_.reset(); }

 private:
  std::vector<Checked> components_;
  Options options_;
  Metrics metrics_;
  std::size_t acting_ = 0;
};

}  // namespace redundancy::core
