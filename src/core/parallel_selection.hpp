// Figure 1(b) — parallel selection.
//
// Every variant executes in parallel and validates its own result through a
// per-component adjudicator (acceptance test). The highest-priority passing
// result is selected; components that fail their check are disabled — the
// "acting / hot spare" discipline of self-checking programming (Laprie et
// al.): a failed acting component is discarded and its spare takes over, so
// redundancy is progressively consumed.
//
// With Options::concurrency == Concurrency::threaded the components fan out
// on the shared pool through submit_first_wins: the first result to *arrive*
// and pass its acceptance test is returned immediately, the shared
// cancellation token skips components that have not started, and stragglers
// finish in the background. Selection is therefore by completion time rather
// than by component priority — the latency-optimal reading of Figure 1(b).
// Straggler bookkeeping (failed acceptance tests, disables, cost) is folded
// into the metrics on the next call.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/concurrency.hpp"
#include "core/metrics.hpp"
#include "core/redundancy_cache.hpp"
#include "core/variant.hpp"
#include "obs/obs.hpp"
#include "util/checksum.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {

template <typename In, typename Out>
class ParallelSelection {
 public:
  struct Checked {
    Variant<In, Out> variant;
    AcceptanceTest<In, Out> check;
  };

  struct Options {
    /// Take failing components permanently out of service.
    bool disable_on_failure = true;
    /// Stop executing spares once a passing result is found. Figure 1(b)
    /// runs everything in parallel, so the default is to run all. Threaded
    /// execution is inherently lazy (first acceptable ballot wins).
    bool lazy = false;
    /// Sequential keeps priority order; threaded returns the first passing
    /// result to arrive. Components must be thread-safe when threaded.
    Concurrency concurrency = Concurrency::sequential;
  };

  explicit ParallelSelection(std::vector<Checked> components,
                             Options options = {})
      : components_(std::make_shared<std::vector<Checked>>(
            std::move(components))),
        options_(options),
        pending_(std::make_shared<Pending>(components_->size())) {}

  /// Label under which spans, adjudication events, and registry metrics are
  /// emitted (techniques set their own: "self_checking", ...).
  void set_obs_label(std::string label) {
    obs_label_ = std::move(label);
    label_salt_ = util::fnv1a(obs_label_);
    lat_hist_ = nullptr;
    req_counter_ = nullptr;
  }

  /// Memoize selected results keyed by (technique, input digest). Only sound
  /// for deterministic components; note a cached verdict also skips the
  /// acceptance tests, so disable_on_failure bookkeeping only advances on
  /// misses.
  void enable_cache(CacheConfig config = {}) {
    static_assert(util::is_digestible_v<In>,
                  "enable_cache needs a digestible input type (integral, "
                  "string, float, vector/optional/pair of those)");
    if (config.label.empty() || config.label == "cache") {
      config.label = obs_label_;
    }
    cache_ = std::make_unique<RedundancyCache<Out>>(std::move(config));
  }
  void disable_cache() noexcept { cache_.reset(); }
  [[nodiscard]] RedundancyCache<Out>* cache() noexcept { return cache_.get(); }
  void invalidate_cache() noexcept {
    if (cache_) cache_->invalidate_all();
  }

  Result<Out> run(const In& input) {
    if constexpr (util::is_digestible_v<In>) {
      if (cache_) {
        const std::uint64_t t0 = obs::now_ns();
        bool executed = false;
        Result<Out> verdict =
            cache_->get_or_run(cache_key(input), [&]() -> Result<Out> {
              executed = true;
              return run_adjudicated(input);
            });
        if (!executed) {  // cache hit or coalesced onto another run
          ++metrics_.requests;
          account_observability(t0, verdict.has_value());
        }
        return verdict;
      }
    }
    return run_adjudicated(input);
  }

 private:
  Result<Out> run_adjudicated(const In& input) {
    fold_pending();
    ++metrics_.requests;
    obs::ScopedSpan span{obs_label_};
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    Result<Out> verdict = [&] {
      if (options_.concurrency == Concurrency::threaded) {
        if constexpr (std::is_copy_constructible_v<In>) {
          return run_threaded(input);
        }
      }
      return run_sequential(input);
    }();
    if (t0 != 0) account_observability(t0, verdict.has_value());
    span.set_ok(verdict.has_value());
    return verdict;
  }

 public:
  /// Index of the component whose result was last selected.
  [[nodiscard]] std::size_t acting() const noexcept { return acting_; }
  [[nodiscard]] std::size_t alive() const noexcept {
    fold_pending();
    std::size_t n = 0;
    for (const auto& c : *components_) n += c.variant.enabled ? 1 : 0;
    return n;
  }
  /// Re-enable every component (e.g. after repair / redeployment).
  void reinstate_all() noexcept {
    fold_pending();
    for (auto& c : *components_) c.variant.enabled = true;
  }

  [[nodiscard]] const Metrics& metrics() const noexcept {
    fold_pending();
    return metrics_;
  }
  void reset_metrics() noexcept {
    fold_pending();
    metrics_.reset();
  }

 private:
  /// Bookkeeping written by straggler components after an early return,
  /// folded into metrics_/enabled flags on the next call from the owner.
  struct Pending {
    explicit Pending(std::size_t n) : failed(n) {}
    std::vector<std::atomic<bool>> failed;
    std::atomic<std::size_t> executions{0};
    std::atomic<std::size_t> failures{0};
    std::atomic<std::size_t> adjudications{0};
    std::atomic<double> cost{0.0};
  };

  Result<Out> run_sequential(const In& input) {
    const obs::SpanContext ctx = obs::current_context();
    Result<Out> selected =
        failure(FailureKind::no_alternatives, "all components disabled");
    bool have = false;
    bool any_failed = false;
    std::size_t executed = 0;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < components_->size(); ++i) {
      auto& c = (*components_)[i];
      if (!c.variant.enabled) continue;
      if (options_.lazy && have) break;
      ++metrics_.variant_executions;
      metrics_.cost_units += c.variant.cost;
      obs::ScopedSpan cspan{"component", ctx};
      cspan.set_detail(c.variant.name);
      Result<Out> r = c.variant(input);
      ++metrics_.adjudications;
      ++executed;
      const bool pass = r.has_value() && c.check(input, r.value());
      cspan.set_ok(pass);
      if (pass) {
        if (!have) {
          selected = std::move(r);
          have = true;
          acting_ = i;
        }
      } else {
        ++metrics_.variant_failures;
        ++failed;
        any_failed = true;
        if (options_.disable_on_failure) {
          c.variant.enabled = false;
          ++metrics_.disabled_components;
        }
      }
    }
    if (have) {
      if (any_failed) ++metrics_.recoveries;
    } else {
      ++metrics_.unrecovered;
      if (selected.has_value()) {
        selected = failure(FailureKind::no_alternatives, "no passing component");
      }
    }
    if (ctx.active()) {
      obs::AdjudicationEvent event;
      event.technique = obs_label_;
      event.electorate = components_->size();
      event.ballots_seen = executed;
      event.ballots_failed = failed;
      event.accepted = have;
      event.verdict = have ? "ok" : "no passing component";
      if (have) event.winner = (*components_)[acting_].variant.name;
      obs::record_adjudication(ctx, std::move(event));
    }
    return selected;
  }

  Result<Out> run_threaded(const In& input) {
    // Everything a straggler may touch after run() returns: its own copy of
    // the input plus shared ownership of the components and the fold-later
    // counters.
    struct Shared {
      Shared(const In& in, std::shared_ptr<std::vector<Checked>> cs,
             std::shared_ptr<Pending> p, obs::SpanContext c)
          : input(in),
            components(std::move(cs)),
            pending(std::move(p)),
            ctx(c) {}
      const In input;
      std::shared_ptr<std::vector<Checked>> components;
      std::shared_ptr<Pending> pending;
      const obs::SpanContext ctx;  ///< one copy per run, not per task
    };
    auto sh =
        std::make_shared<Shared>(input, components_, pending_,
                                 obs::current_context());
    const obs::SpanContext ctx = sh->ctx;

    // Raw lambdas (shared state + index: 24 bytes), so neither the task nor
    // the first-wins wrapper around it spills out of the Task inline buffer.
    auto task_for = [&sh](std::size_t i) {
      return [sh, i](const util::CancellationToken&) -> std::optional<Out> {
        const Checked& c = (*sh->components)[i];
        Pending& p = *sh->pending;
        p.executions.fetch_add(1, std::memory_order_relaxed);
        p.cost.fetch_add(c.variant.cost, std::memory_order_relaxed);
        obs::ScopedSpan cspan{"component", sh->ctx};
        cspan.set_detail(c.variant.name);
        Result<Out> r = c.variant(sh->input);
        p.adjudications.fetch_add(1, std::memory_order_relaxed);
        if (r.has_value() && c.check(sh->input, r.value())) {
          return std::move(r).take();
        }
        cspan.set_ok(false);
        p.failures.fetch_add(1, std::memory_order_relaxed);
        p.failed[i].store(true, std::memory_order_release);
        return std::nullopt;
      };
    };
    std::vector<decltype(task_for(0))> tasks;
    std::vector<std::size_t> index_of;  // task slot -> component index
    for (std::size_t i = 0; i < components_->size(); ++i) {
      if (!(*components_)[i].variant.enabled) continue;
      index_of.push_back(i);
      tasks.push_back(task_for(i));
    }
    if (tasks.empty()) {
      ++metrics_.unrecovered;
      return failure(FailureKind::no_alternatives, "all components disabled");
    }

    const std::size_t eligible = tasks.size();
    auto fw = util::ThreadPool::shared().submit_first_wins<Out>(std::move(tasks));
    const std::size_t failures_folded = fold_pending();
    const bool won = fw.value.has_value();
    if (won) acting_ = index_of[fw.winner];
    if (ctx.active()) {
      // Selection is by completion time: the verdict is the first passing
      // ballot, everything not yet executed was cancelled.
      obs::AdjudicationEvent event;
      event.technique = obs_label_;
      event.electorate = eligible;
      event.ballots_seen = fw.executed;
      event.ballots_failed = failures_folded;
      event.accepted = won;
      event.verdict = won ? "ok" : "no passing component";
      if (won) event.winner = (*components_)[acting_].variant.name;
      event.stragglers_cancelled = eligible - fw.executed;
      obs::record_adjudication(ctx, std::move(event));
    }
    if (won) {
      if (failures_folded > 0) ++metrics_.recoveries;
      return Result<Out>{std::move(*fw.value)};
    }
    ++metrics_.unrecovered;
    return failure(FailureKind::no_alternatives, "no passing component");
  }

  /// Fold straggler bookkeeping into metrics_ and the enabled flags. Only
  /// the owning thread touches metrics_ and `enabled`, so this is race-free
  /// as long as run()/metrics() are not called concurrently (they never
  /// were). Returns the number of failures folded in.
  std::size_t fold_pending() const noexcept {
    Pending& p = *pending_;
    const std::size_t ex = p.executions.exchange(0, std::memory_order_relaxed);
    const std::size_t fl = p.failures.exchange(0, std::memory_order_relaxed);
    const std::size_t ad =
        p.adjudications.exchange(0, std::memory_order_relaxed);
    const double cost = p.cost.exchange(0.0, std::memory_order_relaxed);
    metrics_.variant_executions += ex;
    metrics_.variant_failures += fl;
    metrics_.adjudications += ad;
    metrics_.cost_units += cost;
    for (std::size_t i = 0; i < p.failed.size(); ++i) {
      if (!p.failed[i].exchange(false, std::memory_order_acq_rel)) continue;
      auto& c = (*components_)[i];
      if (options_.disable_on_failure && c.variant.enabled) {
        c.variant.enabled = false;
        ++metrics_.disabled_components;
      }
    }
    return fl;
  }

  /// Always-on (sampling-independent) registry metrics for one request.
  void account_observability(std::uint64_t t0, bool ok) {
    if (lat_hist_ == nullptr) {
      lat_hist_ = &obs::histogram("technique.request_ns", obs_label_);
      req_counter_ = &obs::counter("technique.requests", obs_label_);
      fail_counter_ = &obs::counter("technique.unrecovered", obs_label_);
    }
    lat_hist_->record(obs::now_ns() - t0);
    req_counter_->add();
    if (!ok) fail_counter_->add();
  }

  /// (technique, input) cache key — see ParallelEvaluation::cache_key.
  [[nodiscard]] std::uint64_t cache_key(const In& input) const noexcept {
    util::Digest64 d;
    d.update(label_salt_);
    d.update(input);
    return d.value();
  }

  std::shared_ptr<std::vector<Checked>> components_;
  Options options_;
  std::shared_ptr<Pending> pending_;
  std::unique_ptr<RedundancyCache<Out>> cache_;
  mutable Metrics metrics_;
  std::size_t acting_ = 0;
  std::uint64_t label_salt_ = util::fnv1a("parallel_selection");
  std::string obs_label_ = "parallel_selection";
  obs::Histogram* lat_hist_ = nullptr;
  obs::Counter* req_counter_ = nullptr;
  obs::Counter* fail_counter_ = nullptr;
};

}  // namespace redundancy::core
