#include "core/live_telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "util/signals.hpp"

namespace redundancy::core {

namespace {

/// getenv as a non-negative integer; `fallback` when unset or malformed.
long long env_ll(const char* name, long long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* stop = nullptr;
  const long long v = std::strtoll(s, &stop, 10);
  if (stop == s || *stop != '\0' || v < 0) return fallback;
  return v;
}

}  // namespace

LiveTelemetry::~LiveTelemetry() {
  obs::Recorder::instance().flush();
  if (http) http->stop();
}

std::unique_ptr<LiveTelemetry> start_live_telemetry_from_env() {
  const char* trace_path = std::getenv("REDUNDANCY_OBS_TRACE_FILE");
  const bool want_trace = trace_path != nullptr && *trace_path != '\0';
  const char* port_env = std::getenv("REDUNDANCY_OBS_HTTP_PORT");
  const bool want_http = port_env != nullptr && *port_env != '\0';
  if (!want_trace && !want_http) return nullptr;

  // A scraper that hangs up mid-response must not SIGPIPE the process the
  // exporter is embedded in.
  util::ignore_sigpipe();

  auto telemetry = std::make_unique<LiveTelemetry>();
  auto& recorder = obs::Recorder::instance();

  telemetry->health = std::make_shared<HealthTracker>();
  recorder.add_sink(telemetry->health);
  if (want_trace) {
    telemetry->trace_file = std::make_shared<obs::JsonlTraceSink>(
        std::string{trace_path});
    if (telemetry->trace_file->is_open()) {
      recorder.add_sink(telemetry->trace_file);
    } else {
      std::fprintf(stderr, "obs: cannot open trace file %s\n", trace_path);
    }
  }

  recorder.set_sample_every(
      static_cast<std::uint64_t>(env_ll("REDUNDANCY_OBS_SAMPLE", 1)));
  recorder.set_enabled(true);

  if (want_http) {
    telemetry->ring = std::make_shared<obs::RingTraceSink>();
    recorder.add_sink(telemetry->ring);

    obs::HttpExporter::Options options;
    options.port = static_cast<std::uint16_t>(
        env_ll("REDUNDANCY_OBS_HTTP_PORT", 0));
    const auto health = telemetry->health;
    options.healthz_handler = [health]() -> obs::HttpResponse {
      // Drain the per-thread buffers so the window sees current verdicts.
      obs::Recorder::instance().flush();
      const HealthState state = health->overall();
      return {state == HealthState::failing ? 503 : 200,
              "text/plain; charset=utf-8", health->healthz_text()};
    };
    const auto ring = telemetry->ring;
    options.traces_handler = [ring](std::size_t n) -> obs::HttpResponse {
      obs::Recorder::instance().flush();
      std::string body;
      for (const auto& line : ring->tail(n)) {
        body += line;
        body += '\n';
      }
      return {200, "application/x-ndjson", std::move(body)};
    };

    telemetry->http = std::make_unique<obs::HttpExporter>();
    if (telemetry->http->start(std::move(options))) {
      std::fprintf(stderr,
                   "obs: live telemetry on http://127.0.0.1:%u "
                   "(/metrics /healthz /traces?n=K)\n",
                   static_cast<unsigned>(telemetry->http->port()));
    } else {
      std::fprintf(stderr, "obs: could not bind http exporter on port %s\n",
                   port_env);
      telemetry->http.reset();
    }
  }
  return telemetry;
}

void linger_from_env() {
  // Scrapers arriving during the linger want the final verdicts visible.
  obs::Recorder::instance().flush();
  const long long ms = env_ll("REDUNDANCY_OBS_HTTP_LINGER_MS", 0);
  if (ms <= 0) return;
  std::fprintf(stderr, "obs: lingering %lld ms for scrapers\n", ms);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace redundancy::core
