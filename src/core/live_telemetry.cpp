#include "core/live_telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "util/signals.hpp"

namespace redundancy::core {

namespace {

/// getenv as a non-negative integer; `fallback` when unset or malformed.
long long env_ll(const char* name, long long fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* stop = nullptr;
  const long long v = std::strtoll(s, &stop, 10);
  if (stop == s || *stop != '\0' || v < 0) return fallback;
  return v;
}

}  // namespace

LiveTelemetry::~LiveTelemetry() {
  if (slo) slo->stop();
  obs::Recorder::instance().flush();
  if (http) http->stop();
}

std::unique_ptr<LiveTelemetry> start_live_telemetry_from_env() {
  const char* trace_path = std::getenv("REDUNDANCY_OBS_TRACE_FILE");
  const bool want_trace = trace_path != nullptr && *trace_path != '\0';
  const char* port_env = std::getenv("REDUNDANCY_OBS_HTTP_PORT");
  const bool want_http = port_env != nullptr && *port_env != '\0';
  const char* slo_spec = std::getenv("REDUNDANCY_SLO_TARGETS");
  const bool want_slo = slo_spec != nullptr && *slo_spec != '\0';
  const char* flight_path = std::getenv("REDUNDANCY_FLIGHT_DUMP");
  const bool want_flight = flight_path != nullptr && *flight_path != '\0';
  if (!want_trace && !want_http && !want_slo && !want_flight) return nullptr;

  // A scraper that hangs up mid-response must not SIGPIPE the process the
  // exporter is embedded in.
  util::ignore_sigpipe();

  auto telemetry = std::make_unique<LiveTelemetry>();
  auto& recorder = obs::Recorder::instance();

  telemetry->health = std::make_shared<HealthTracker>();
  recorder.add_sink(telemetry->health);
  if (want_trace) {
    telemetry->trace_file = std::make_shared<obs::JsonlTraceSink>(
        std::string{trace_path});
    if (telemetry->trace_file->is_open()) {
      recorder.add_sink(telemetry->trace_file);
    } else {
      std::fprintf(stderr, "obs: cannot open trace file %s\n", trace_path);
    }
  }

  if (want_flight) {
    // Black box on, crash handler appending to the requested path. The
    // recorder hook mirrors every span/verdict into the flight rings from
    // here on; the handler only ever *reads* them.
    auto& flight = obs::FlightRecorder::instance();
    flight.enable(static_cast<std::size_t>(
        env_ll("REDUNDANCY_FLIGHT_RING", 1024)));
    flight.install_crash_handler(flight_path);
    std::fprintf(stderr, "obs: flight recorder on, crash dump -> %s\n",
                 flight_path);
  }

  if (want_slo) {
    obs::SloTracker::Options slo_options;
    slo_options.epoch_ns = static_cast<std::uint64_t>(
        env_ll("REDUNDANCY_SLO_EPOCH_MS", 10'000)) * 1'000'000ull;
    telemetry->slo = std::make_shared<obs::SloTracker>(slo_options);
    for (const auto& [cls, target] : obs::parse_slo_targets(slo_spec)) {
      telemetry->slo->register_class(cls, target);
    }
    // Close the loop: SLO verdicts adjudicate the service itself, so
    // /healthz degrades while error budget remains; a page-level breach
    // flushes the black box even without a crash.
    const auto health = telemetry->health;
    telemetry->slo->set_verdict_callback(
        [health](const obs::AdjudicationEvent& verdict) {
          health->observe(verdict);
        });
    if (want_flight) {
      const std::string dump_path{flight_path};
      telemetry->slo->set_breach_callback(
          [dump_path](const std::string& cls, const std::string& rule) {
            std::fprintf(stderr,
                         "obs: SLO breach on class %s (%s); dumping flight "
                         "recorder -> %s\n",
                         cls.c_str(), rule.c_str(), dump_path.c_str());
            obs::FlightRecorder::instance().dump_to_path(dump_path.c_str());
          });
    }
    recorder.add_sink(telemetry->slo);
    telemetry->slo->start();
  }

  recorder.set_sample_every(
      static_cast<std::uint64_t>(env_ll("REDUNDANCY_OBS_SAMPLE", 1)));
  recorder.set_enabled(true);

  if (want_http) {
    telemetry->ring = std::make_shared<obs::RingTraceSink>();
    recorder.add_sink(telemetry->ring);

    obs::HttpExporter::Options options;
    options.port = static_cast<std::uint16_t>(
        env_ll("REDUNDANCY_OBS_HTTP_PORT", 0));
    const auto health = telemetry->health;
    options.healthz_handler = [health]() -> obs::HttpResponse {
      // Drain the per-thread buffers so the window sees current verdicts.
      obs::Recorder::instance().flush();
      const HealthState state = health->overall();
      return {state == HealthState::failing ? 503 : 200,
              "text/plain; charset=utf-8", health->healthz_text()};
    };
    const auto ring = telemetry->ring;
    options.traces_handler = [ring](std::size_t n) -> obs::HttpResponse {
      obs::Recorder::instance().flush();
      std::string body;
      for (const auto& line : ring->tail(n)) {
        body += line;
        body += '\n';
      }
      return {200, "application/x-ndjson", std::move(body)};
    };
    if (telemetry->slo) {
      const auto slo = telemetry->slo;
      options.slo_handler = [slo]() -> obs::HttpResponse {
        obs::Recorder::instance().flush();
        return {200, "application/x-ndjson",
                slo->snapshot_jsonl(obs::now_ns())};
      };
    }
    if (want_flight) {
      options.flight_handler = []() -> obs::HttpResponse {
        obs::Recorder::instance().flush();
        return {200, "application/x-ndjson",
                obs::FlightRecorder::instance().dump_jsonl()};
      };
    }

    telemetry->http = std::make_unique<obs::HttpExporter>();
    if (telemetry->http->start(std::move(options))) {
      std::fprintf(stderr,
                   "obs: live telemetry on http://127.0.0.1:%u "
                   "(/metrics /healthz /traces?n=K%s%s)\n",
                   static_cast<unsigned>(telemetry->http->port()),
                   telemetry->slo ? " /slo" : "",
                   want_flight ? " /debug/flight" : "");
    } else {
      std::fprintf(stderr, "obs: could not bind http exporter on port %s\n",
                   port_env);
      telemetry->http.reset();
    }
  }
  return telemetry;
}

void linger_from_env() {
  // Scrapers arriving during the linger want the final verdicts visible.
  obs::Recorder::instance().flush();
  const long long ms = env_ll("REDUNDANCY_OBS_HTTP_LINGER_MS", 0);
  if (ms <= 0) return;
  std::fprintf(stderr, "obs: lingering %lld ms for scrapers\n", ms);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace redundancy::core
