// The failure model shared by the whole framework.
//
// Following Avizienis et al. (the fault taxonomy the paper adopts), a *fault*
// activates into an *error* which may propagate to a *failure* observable at
// the component interface. `Failure` describes that observable event; the
// fault class that caused it travels along for experiment bookkeeping only —
// real adjudicators never look at it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace redundancy::core {

/// How a component execution failed, as observable at its interface.
enum class FailureKind : std::uint8_t {
  wrong_output,      ///< value failure: produced a result, but an incorrect one
  crash,             ///< execution aborted (simulated crash / uncaught error)
  timeout,           ///< exceeded its deadline / hung
  unavailable,       ///< component or service could not be reached / is disabled
  detected_attack,   ///< divergence flagged by a security mechanism
  corrupted_state,   ///< internal state integrity violation (audit finding)
  acceptance_failed, ///< result rejected by an explicit acceptance test
  no_alternatives,   ///< redundancy exhausted: every alternative failed
  adjudication_failed, ///< adjudicator could not pick a result (e.g. no majority)
};

[[nodiscard]] std::string_view to_string(FailureKind kind) noexcept;

/// Fault classes from the paper's taxonomy (Avizienis classes restricted to
/// software faults, with development faults split per Gray's terminology).
enum class FaultClass : std::uint8_t {
  none,       ///< no fault involved (e.g. benign overload)
  bohrbug,    ///< development fault, deterministic under a given input
  heisenbug,  ///< development fault, manifests non-deterministically
  aging,      ///< resource-depletion fault (leaks); Heisenbug subfamily
  malicious,  ///< interaction fault introduced with malicious intent
};

[[nodiscard]] std::string_view to_string(FaultClass cls) noexcept;

/// A failure observed at a component interface.
struct Failure {
  FailureKind kind = FailureKind::crash;
  std::string detail;
  /// Ground truth for experiments; opaque to adjudicators.
  FaultClass cause = FaultClass::none;

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] inline Failure failure(FailureKind kind, std::string detail = {},
                                     FaultClass cause = FaultClass::none) {
  return Failure{kind, std::move(detail), cause};
}

}  // namespace redundancy::core
