// Figure 1(c) — sequential alternatives.
//
// Alternatives are attempted one at a time; an adjudicator validates each
// result and, on rejection, the next alternative is activated — after an
// optional state rollback. This is the architecture of recovery blocks
// (Randell 1975), retry blocks, registry-based recovery, and dynamic service
// substitution.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/variant.hpp"
#include "obs/obs.hpp"

namespace redundancy::core {

template <typename In, typename Out>
class SequentialAlternatives {
 public:
  struct Options {
    /// Invoked before every alternative after the first — the recovery-block
    /// "restore to the state before the primary ran".
    std::function<void()> rollback;
    /// Give up after this many alternatives (0 = try all).
    std::size_t max_attempts = 0;
  };

  SequentialAlternatives(std::vector<Variant<In, Out>> alternatives,
                         AcceptanceTest<In, Out> accept, Options options = {})
      : alternatives_(std::move(alternatives)), accept_(std::move(accept)),
        options_(std::move(options)) {}

  /// Label under which spans, adjudication events, and registry metrics are
  /// emitted (techniques set their own: "recovery_blocks", ...).
  void set_obs_label(std::string label) {
    obs_label_ = std::move(label);
    lat_hist_ = nullptr;
    req_counter_ = nullptr;
  }

  Result<Out> run(const In& input) {
    ++metrics_.requests;
    obs::ScopedSpan span{obs_label_};
    const obs::SpanContext ctx = span.context();
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    const std::size_t limit =
        options_.max_attempts == 0
            ? alternatives_.size()
            : std::min(options_.max_attempts, alternatives_.size());
    Failure last = failure(FailureKind::no_alternatives, "no alternatives");
    std::size_t attempted = 0;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < limit; ++i) {
      if (!alternatives_[i].enabled) continue;
      if (i > 0 && options_.rollback) {
        options_.rollback();
        ++metrics_.rollbacks;
      }
      ++metrics_.variant_executions;
      metrics_.cost_units += alternatives_[i].cost;
      obs::ScopedSpan aspan{"alternative", ctx};
      aspan.set_detail(alternatives_[i].name);
      Result<Out> r = alternatives_[i](input);
      ++attempted;
      if (!r.has_value()) {
        ++metrics_.variant_failures;
        ++failed;
        aspan.set_ok(false);
        last = r.error();
        continue;
      }
      ++metrics_.adjudications;
      if (accept_(input, r.value())) {
        if (i > 0) ++metrics_.recoveries;
        last_used_ = i;
        record_verdict(ctx, limit, attempted, failed, true,
                       alternatives_[i].name);
        if (t0 != 0) account_observability(t0, true);
        span.set_ok(true);
        return r;
      }
      ++metrics_.variant_failures;
      ++failed;
      aspan.set_ok(false);
      last = failure(FailureKind::acceptance_failed,
                     "rejected result of " + alternatives_[i].name);
    }
    ++metrics_.unrecovered;
    record_verdict(ctx, limit, attempted, failed, false, last.describe());
    if (t0 != 0) account_observability(t0, false);
    span.set_ok(false);
    return Result<Out>{failure(FailureKind::no_alternatives, last.describe(),
                               last.cause)};
  }

  /// Index of the alternative whose result was last accepted.
  [[nodiscard]] std::size_t last_used() const noexcept { return last_used_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  void reset_metrics() noexcept { metrics_.reset(); }
  [[nodiscard]] std::size_t width() const noexcept { return alternatives_.size(); }

 private:
  void record_verdict(obs::SpanContext ctx, std::size_t electorate,
                      std::size_t attempted, std::size_t failed, bool accepted,
                      const std::string& winner_or_verdict) {
    if (!ctx.active()) return;
    obs::AdjudicationEvent event;
    event.technique = obs_label_;
    event.electorate = electorate;
    event.ballots_seen = attempted;
    event.ballots_failed = failed;
    event.accepted = accepted;
    if (accepted) {
      event.verdict = "ok";
      event.winner = winner_or_verdict;
    } else {
      event.verdict = winner_or_verdict;
    }
    obs::record_adjudication(ctx, std::move(event));
  }

  /// Always-on (sampling-independent) registry metrics for one request.
  void account_observability(std::uint64_t t0, bool ok) {
    if (lat_hist_ == nullptr) {
      lat_hist_ = &obs::histogram("technique.request_ns", obs_label_);
      req_counter_ = &obs::counter("technique.requests", obs_label_);
      fail_counter_ = &obs::counter("technique.unrecovered", obs_label_);
    }
    lat_hist_->record(obs::now_ns() - t0);
    req_counter_->add();
    if (!ok) fail_counter_->add();
  }

  std::vector<Variant<In, Out>> alternatives_;
  AcceptanceTest<In, Out> accept_;
  Options options_;
  Metrics metrics_;
  std::size_t last_used_ = 0;
  std::string obs_label_ = "sequential_alternatives";
  obs::Histogram* lat_hist_ = nullptr;
  obs::Counter* req_counter_ = nullptr;
  obs::Counter* fail_counter_ = nullptr;
};

}  // namespace redundancy::core
