// Figure 1(c) — sequential alternatives.
//
// Alternatives are attempted one at a time; an adjudicator validates each
// result and, on rejection, the next alternative is activated — after an
// optional state rollback. This is the architecture of recovery blocks
// (Randell 1975), retry blocks, registry-based recovery, and dynamic service
// substitution.
//
// Two hot-path additions on top of the classic scheme:
//
//   * Result cache (enable_cache): adjudicated verdicts are memoized by
//     (technique, input digest); a hit skips every alternative and the
//     acceptance test. See core/redundancy_cache.hpp.
//   * Hedged execution (Options::Hedge): instead of waiting for the primary
//     to fail or time out, the next alternative is launched as soon as the
//     primary has been running longer than a latency budget derived live
//     from the technique's own obs::Histogram (multiplier × p-quantile of
//     observed alternative latencies). First result to pass the acceptance
//     test wins; the shared CancellationToken skips alternatives that have
//     not started, and stragglers fold their bookkeeping into the metrics on
//     the next call — the same discipline the parallel patterns use. Hedging
//     engages only for stateless blocks (no rollback installed): concurrent
//     alternatives cannot share a restore point.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/redundancy_cache.hpp"
#include "core/variant.hpp"
#include "obs/obs.hpp"
#include "util/checksum.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {

template <typename In, typename Out>
class SequentialAlternatives {
 public:
  struct Options {
    /// Invoked before every alternative after the first — the recovery-block
    /// "restore to the state before the primary ran". Installing a rollback
    /// disables hedging: concurrent alternatives cannot share it.
    std::function<void()> rollback;
    /// Give up after this many alternatives (0 = try all).
    std::size_t max_attempts = 0;

    /// Latency-budget hedging for stateless alternative sets.
    struct Hedge {
      bool enabled = false;
      /// Budget = multiplier × this percentile of the live alternative
      /// latency histogram (technique.alternative_ns{technique=label}).
      double quantile = 95.0;
      double multiplier = 1.0;
      /// Budget used until the histogram has min_samples observations.
      std::uint64_t fallback_budget_ns = 10'000'000;  // 10ms
      std::uint64_t min_samples = 32;
      /// Clamp on the derived budget (0 = unclamped). The floor keeps a
      /// freak-fast p95 from hedging every request; the ceiling bounds how
      /// long a stuck primary can delay the first hedge.
      std::uint64_t min_budget_ns = 100'000;  // 100µs
      std::uint64_t max_budget_ns = 0;
    };
    Hedge hedge;
  };

  SequentialAlternatives(std::vector<Variant<In, Out>> alternatives,
                         AcceptanceTest<In, Out> accept, Options options = {})
      : alternatives_(std::make_shared<std::vector<Variant<In, Out>>>(
            std::move(alternatives))),
        accept_(std::make_shared<AcceptanceTest<In, Out>>(std::move(accept))),
        options_(std::move(options)),
        pending_(std::make_shared<Pending>()) {}

  /// Label under which spans, adjudication events, and registry metrics are
  /// emitted (techniques set their own: "recovery_blocks", ...).
  void set_obs_label(std::string label) {
    obs_label_ = std::move(label);
    label_salt_ = util::fnv1a(obs_label_);
    lat_hist_ = nullptr;
    req_counter_ = nullptr;
    alt_hist_ = nullptr;
  }

  /// Memoize adjudicated verdicts keyed by (technique, input digest). Only
  /// sound for deterministic alternative sets.
  void enable_cache(CacheConfig config = {}) {
    static_assert(util::is_digestible_v<In>,
                  "enable_cache needs a digestible input type (integral, "
                  "string, float, vector/optional/pair of those)");
    if (config.label.empty() || config.label == "cache") {
      config.label = obs_label_;
    }
    cache_ = std::make_unique<RedundancyCache<Out>>(std::move(config));
  }
  void disable_cache() noexcept { cache_.reset(); }
  [[nodiscard]] RedundancyCache<Out>* cache() noexcept { return cache_.get(); }
  void invalidate_cache() noexcept {
    if (cache_) cache_->invalidate_all();
  }

  Result<Out> run(const In& input) {
    if constexpr (util::is_digestible_v<In>) {
      if (cache_) {
        const std::uint64_t t0 = obs::now_ns();
        bool executed = false;
        Result<Out> verdict =
            cache_->get_or_run(cache_key(input), [&]() -> Result<Out> {
              executed = true;
              return run_uncached(input);
            });
        if (!executed) {  // cache hit or coalesced onto another run
          ++metrics_.requests;
          account_observability(t0, verdict.has_value());
        }
        return verdict;
      }
    }
    return run_uncached(input);
  }

  /// Index of the alternative whose result was last accepted.
  [[nodiscard]] std::size_t last_used() const noexcept { return last_used_; }
  [[nodiscard]] const Metrics& metrics() const noexcept {
    fold_pending();
    return metrics_;
  }
  void reset_metrics() noexcept {
    fold_pending();
    metrics_.reset();
  }
  [[nodiscard]] std::size_t width() const noexcept {
    return alternatives_->size();
  }

  /// Install or update the hedging policy after construction. Hedging still
  /// only engages when no rollback is installed and In is copyable.
  void set_hedge(typename Options::Hedge hedge) noexcept {
    options_.hedge = hedge;
  }

  /// The hedge budget the next request would use (exposed for tests and the
  /// hedging experiment): multiplier × quantile of the live alternative
  /// latency histogram, clamped; the fallback until min_samples landed.
  [[nodiscard]] std::uint64_t hedge_budget_ns() {
    const typename Options::Hedge& h = options_.hedge;
    obs::Histogram& hist = alternative_histogram();
    if (hist.count() < h.min_samples) return h.fallback_budget_ns;
    const double p = hist.snapshot().percentile(h.quantile);
    auto budget = static_cast<std::uint64_t>(p * h.multiplier);
    if (h.min_budget_ns != 0) budget = std::max(budget, h.min_budget_ns);
    if (h.max_budget_ns != 0) budget = std::min(budget, h.max_budget_ns);
    return budget;
  }

 private:
  /// Bookkeeping written by hedge stragglers after an early return, folded
  /// into metrics_ on the next call from the owner thread.
  struct Pending {
    std::atomic<std::size_t> executions{0};
    std::atomic<std::size_t> failures{0};
    std::atomic<std::size_t> adjudications{0};
    std::atomic<double> cost{0.0};
  };

  Result<Out> run_uncached(const In& input) {
    if (options_.hedge.enabled && !options_.rollback) {
      // Hedging needs its own copy of the input: stragglers may touch it
      // after run() returns.
      if constexpr (std::is_copy_constructible_v<In>) {
        return run_hedged(input);
      }
    }
    return run_sequential(input);
  }

  Result<Out> run_sequential(const In& input) {
    fold_pending();
    ++metrics_.requests;
    obs::ScopedSpan span{obs_label_};
    const obs::SpanContext ctx = span.context();
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    const std::size_t limit = attempt_limit();
    Failure last = failure(FailureKind::no_alternatives, "no alternatives");
    std::size_t attempted = 0;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < limit; ++i) {
      const Variant<In, Out>& alt = (*alternatives_)[i];
      if (!alt.enabled) continue;
      if (i > 0 && options_.rollback) {
        options_.rollback();
        ++metrics_.rollbacks;
      }
      ++metrics_.variant_executions;
      metrics_.cost_units += alt.cost;
      obs::ScopedSpan aspan{"alternative", ctx};
      aspan.set_detail(alt.name);
      const std::uint64_t a0 = obs::now_ns();
      Result<Out> r = alt(input);
      alternative_histogram().record(obs::now_ns() - a0);
      ++attempted;
      if (!r.has_value()) {
        ++metrics_.variant_failures;
        ++failed;
        aspan.set_ok(false);
        last = r.error();
        continue;
      }
      ++metrics_.adjudications;
      if ((*accept_)(input, r.value())) {
        if (i > 0) ++metrics_.recoveries;
        last_used_ = i;
        record_verdict(ctx, limit, attempted, failed, true, alt.name);
        if (t0 != 0) account_observability(t0, true);
        span.set_ok(true);
        return r;
      }
      ++metrics_.variant_failures;
      ++failed;
      aspan.set_ok(false);
      last = failure(FailureKind::acceptance_failed,
                     "rejected result of " + alt.name);
    }
    ++metrics_.unrecovered;
    record_verdict(ctx, limit, attempted, failed, false, last.describe());
    if (t0 != 0) account_observability(t0, false);
    span.set_ok(false);
    return Result<Out>{failure(FailureKind::no_alternatives, last.describe(),
                               last.cause)};
  }

  /// Everything a hedged straggler may touch after run() returns.
  struct HedgeShared {
    HedgeShared(const In& in,
                std::shared_ptr<std::vector<Variant<In, Out>>> alts,
                std::shared_ptr<AcceptanceTest<In, Out>> acc,
                std::shared_ptr<Pending> p, obs::SpanContext c,
                obs::Histogram* hist)
        : input(in),
          alternatives(std::move(alts)),
          accept(std::move(acc)),
          pending(std::move(p)),
          ctx(c),
          alt_hist(hist) {}

    const In input;
    std::shared_ptr<std::vector<Variant<In, Out>>> alternatives;
    std::shared_ptr<AcceptanceTest<In, Out>> accept;
    std::shared_ptr<Pending> pending;
    const obs::SpanContext ctx;
    obs::Histogram* alt_hist;  ///< registry-owned; outlives every straggler

    std::mutex m;
    std::condition_variable cv;
    std::optional<Result<Out>> winner;
    std::size_t winner_index = static_cast<std::size_t>(-1);
    std::size_t launched = 0;
    std::size_t settled = 0;  ///< finished or skipped-by-cancellation
    std::size_t failed = 0;   ///< settled without a passing result
    std::optional<Failure> last_error;
    util::CancellationToken token;
  };

  Result<Out> run_hedged(const In& input) {
    fold_pending();
    ++metrics_.requests;
    obs::ScopedSpan span{obs_label_};
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    auto& pool = util::ThreadPool::shared();
    auto sh = std::make_shared<HedgeShared>(input, alternatives_, accept_,
                                            pending_, span.context(),
                                            &alternative_histogram());

    // Eligible alternatives in priority order, honouring max_attempts.
    const std::size_t limit = attempt_limit();
    std::vector<std::size_t> eligible;
    eligible.reserve(limit);
    for (std::size_t i = 0; i < limit; ++i) {
      if ((*alternatives_)[i].enabled) eligible.push_back(i);
    }
    if (eligible.empty()) {
      ++metrics_.unrecovered;
      record_verdict(sh->ctx, limit, 0, 0, false, "no alternatives");
      if (t0 != 0) account_observability(t0, false);
      span.set_ok(false);
      return Result<Out>{
          failure(FailureKind::no_alternatives, "no alternatives")};
    }

    std::size_t next = 0;
    launch(pool, sh, eligible[next++]);

    std::unique_lock lock(sh->m);
    for (;;) {
      const bool more = next < eligible.size();
      // The budget is re-read from the live histogram at every hedge point,
      // so it adapts as latency observations accumulate mid-burst.
      const std::uint64_t deadline =
          more ? obs::now_ns() + hedge_budget_ns() : 0;
      bool hedge_fire = false;
      pool.help_until(lock, sh->cv, [&] {
        if (sh->winner.has_value()) return true;
        if (sh->settled == sh->launched) return true;  // all outcomes in
        if (more && obs::now_ns() >= deadline) {
          hedge_fire = true;
          return true;
        }
        return false;
      });
      if (sh->winner.has_value()) break;
      if (sh->settled == sh->launched && !more) break;  // exhausted
      if (hedge_fire || sh->settled == sh->launched) {
        // Budget elapsed (hedge) or everything launched so far already
        // failed (classic sequential fallthrough): activate the next
        // alternative. metrics_.hedges counts only true hedges.
        if (hedge_fire) ++metrics_.hedged_launches;
        lock.unlock();
        launch(pool, sh, eligible[next++]);
        lock.lock();
      }
    }

    const bool won = sh->winner.has_value();
    const std::size_t attempted = sh->settled;
    const std::size_t failed = sh->failed;
    Result<Out> verdict = won ? std::move(*sh->winner)
                              : Result<Out>{failure(
                                    FailureKind::no_alternatives,
                                    sh->last_error
                                        ? sh->last_error->describe()
                                        : "no passing alternative")};
    if (won) {
      last_used_ = sh->winner_index;
      sh->token.cancel();  // losers still queued are skipped
    }
    const std::size_t stragglers = sh->launched - sh->settled;
    lock.unlock();

    fold_pending();
    if (won) {
      if (failed > 0 || last_used_ != eligible.front()) ++metrics_.recoveries;
    } else {
      ++metrics_.unrecovered;
    }
    if (sh->ctx.active()) {
      obs::AdjudicationEvent event;
      event.technique = obs_label_;
      event.electorate = eligible.size();
      event.ballots_seen = attempted;
      event.ballots_failed = failed;
      event.accepted = won;
      event.verdict = won ? "ok" : "no passing alternative";
      if (won) event.winner = (*alternatives_)[last_used_].name;
      event.stragglers_cancelled = stragglers;
      obs::record_adjudication(sh->ctx, std::move(event));
    }
    if (t0 != 0) account_observability(t0, won);
    span.set_ok(won);
    return verdict;
  }

  /// Post one alternative onto the pool as a hedge leg. The task owns a
  /// shared_ptr to everything it touches: it may settle after run() returned.
  void launch(util::ThreadPool& pool, const std::shared_ptr<HedgeShared>& sh,
              std::size_t index) {
    {
      std::lock_guard lock(sh->m);
      ++sh->launched;
    }
    pool.post(util::ThreadPool::Task{[sh, index] {
      if (sh->token.cancelled()) {
        std::lock_guard lock(sh->m);
        ++sh->settled;
        ++sh->failed;
        sh->cv.notify_all();
        return;
      }
      const Variant<In, Out>& alt = (*sh->alternatives)[index];
      Pending& p = *sh->pending;
      p.executions.fetch_add(1, std::memory_order_relaxed);
      p.cost.fetch_add(alt.cost, std::memory_order_relaxed);
      obs::ScopedSpan aspan{"alternative", sh->ctx};
      aspan.set_detail(alt.name);
      const std::uint64_t a0 = obs::now_ns();
      Result<Out> r = [&]() -> Result<Out> {
        try {
          return alt(sh->input);
        } catch (...) {
          return Result<Out>{
              failure(FailureKind::crash, "alternative threw")};
        }
      }();
      sh->alt_hist->record(obs::now_ns() - a0);
      bool pass = false;
      Failure why = failure(FailureKind::no_alternatives);
      if (r.has_value()) {
        p.adjudications.fetch_add(1, std::memory_order_relaxed);
        pass = (*sh->accept)(sh->input, r.value());
        if (!pass) {
          why = failure(FailureKind::acceptance_failed,
                        "rejected result of " + alt.name);
        }
      } else {
        why = r.error();
      }
      aspan.set_ok(pass);
      if (!pass) p.failures.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard lock(sh->m);
        ++sh->settled;
        if (pass) {
          if (!sh->winner.has_value()) {
            sh->winner.emplace(std::move(r));
            sh->winner_index = index;
            sh->token.cancel();
          }
        } else {
          ++sh->failed;
          sh->last_error.emplace(std::move(why));
        }
        sh->cv.notify_all();
      }
    }});
  }

  [[nodiscard]] std::size_t attempt_limit() const noexcept {
    return options_.max_attempts == 0
               ? alternatives_->size()
               : std::min(options_.max_attempts, alternatives_->size());
  }

  void fold_pending() const noexcept {
    Pending& p = *pending_;
    metrics_.variant_executions +=
        p.executions.exchange(0, std::memory_order_relaxed);
    metrics_.variant_failures +=
        p.failures.exchange(0, std::memory_order_relaxed);
    metrics_.adjudications +=
        p.adjudications.exchange(0, std::memory_order_relaxed);
    metrics_.cost_units += p.cost.exchange(0.0, std::memory_order_relaxed);
  }

  void record_verdict(obs::SpanContext ctx, std::size_t electorate,
                      std::size_t attempted, std::size_t failed, bool accepted,
                      const std::string& winner_or_verdict) {
    if (!ctx.active()) return;
    obs::AdjudicationEvent event;
    event.technique = obs_label_;
    event.electorate = electorate;
    event.ballots_seen = attempted;
    event.ballots_failed = failed;
    event.accepted = accepted;
    if (accepted) {
      event.verdict = "ok";
      event.winner = winner_or_verdict;
    } else {
      event.verdict = winner_or_verdict;
    }
    obs::record_adjudication(ctx, std::move(event));
  }

  /// Always-on (sampling-independent) registry metrics for one request.
  void account_observability(std::uint64_t t0, bool ok) {
    if (lat_hist_ == nullptr) {
      lat_hist_ = &obs::histogram("technique.request_ns", obs_label_);
      req_counter_ = &obs::counter("technique.requests", obs_label_);
      fail_counter_ = &obs::counter("technique.unrecovered", obs_label_);
    }
    lat_hist_->record(obs::now_ns() - t0);
    req_counter_->add();
    if (!ok) fail_counter_->add();
  }

  /// Live per-alternative latency histogram the hedge budget derives from.
  [[nodiscard]] obs::Histogram& alternative_histogram() {
    if (alt_hist_ == nullptr) {
      alt_hist_ = &obs::histogram("technique.alternative_ns", obs_label_);
    }
    return *alt_hist_;
  }

  /// (technique, input) cache key — see ParallelEvaluation::cache_key.
  [[nodiscard]] std::uint64_t cache_key(const In& input) const noexcept {
    util::Digest64 d;
    d.update(label_salt_);
    d.update(input);
    return d.value();
  }

  std::shared_ptr<std::vector<Variant<In, Out>>> alternatives_;
  std::shared_ptr<AcceptanceTest<In, Out>> accept_;
  Options options_;
  std::shared_ptr<Pending> pending_;
  std::unique_ptr<RedundancyCache<Out>> cache_;
  mutable Metrics metrics_;
  std::size_t last_used_ = 0;
  std::uint64_t label_salt_ = util::fnv1a("sequential_alternatives");
  std::string obs_label_ = "sequential_alternatives";
  obs::Histogram* lat_hist_ = nullptr;
  obs::Counter* req_counter_ = nullptr;
  obs::Counter* fail_counter_ = nullptr;
  obs::Histogram* alt_hist_ = nullptr;
};

}  // namespace redundancy::core
