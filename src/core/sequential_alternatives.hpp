// Figure 1(c) — sequential alternatives.
//
// Alternatives are attempted one at a time; an adjudicator validates each
// result and, on rejection, the next alternative is activated — after an
// optional state rollback. This is the architecture of recovery blocks
// (Randell 1975), retry blocks, registry-based recovery, and dynamic service
// substitution.
#pragma once

#include <functional>
#include <vector>

#include "core/metrics.hpp"
#include "core/variant.hpp"

namespace redundancy::core {

template <typename In, typename Out>
class SequentialAlternatives {
 public:
  struct Options {
    /// Invoked before every alternative after the first — the recovery-block
    /// "restore to the state before the primary ran".
    std::function<void()> rollback;
    /// Give up after this many alternatives (0 = try all).
    std::size_t max_attempts = 0;
  };

  SequentialAlternatives(std::vector<Variant<In, Out>> alternatives,
                         AcceptanceTest<In, Out> accept, Options options = {})
      : alternatives_(std::move(alternatives)), accept_(std::move(accept)),
        options_(std::move(options)) {}

  Result<Out> run(const In& input) {
    ++metrics_.requests;
    const std::size_t limit =
        options_.max_attempts == 0
            ? alternatives_.size()
            : std::min(options_.max_attempts, alternatives_.size());
    Failure last = failure(FailureKind::no_alternatives, "no alternatives");
    for (std::size_t i = 0; i < limit; ++i) {
      if (!alternatives_[i].enabled) continue;
      if (i > 0 && options_.rollback) {
        options_.rollback();
        ++metrics_.rollbacks;
      }
      ++metrics_.variant_executions;
      metrics_.cost_units += alternatives_[i].cost;
      Result<Out> r = alternatives_[i](input);
      if (!r.has_value()) {
        ++metrics_.variant_failures;
        last = r.error();
        continue;
      }
      ++metrics_.adjudications;
      if (accept_(input, r.value())) {
        if (i > 0) ++metrics_.recoveries;
        last_used_ = i;
        return r;
      }
      ++metrics_.variant_failures;
      last = failure(FailureKind::acceptance_failed,
                     "rejected result of " + alternatives_[i].name);
    }
    ++metrics_.unrecovered;
    return Result<Out>{failure(FailureKind::no_alternatives, last.describe(),
                               last.cause)};
  }

  /// Index of the alternative whose result was last accepted.
  [[nodiscard]] std::size_t last_used() const noexcept { return last_used_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  void reset_metrics() noexcept { metrics_.reset(); }
  [[nodiscard]] std::size_t width() const noexcept { return alternatives_.size(); }

 private:
  std::vector<Variant<In, Out>> alternatives_;
  AcceptanceTest<In, Out> accept_;
  Options options_;
  Metrics metrics_;
  std::size_t last_used_ = 0;
};

}  // namespace redundancy::core
