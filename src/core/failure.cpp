#include "core/failure.hpp"

namespace redundancy::core {

std::string_view to_string(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::wrong_output: return "wrong_output";
    case FailureKind::crash: return "crash";
    case FailureKind::timeout: return "timeout";
    case FailureKind::unavailable: return "unavailable";
    case FailureKind::detected_attack: return "detected_attack";
    case FailureKind::corrupted_state: return "corrupted_state";
    case FailureKind::acceptance_failed: return "acceptance_failed";
    case FailureKind::no_alternatives: return "no_alternatives";
    case FailureKind::adjudication_failed: return "adjudication_failed";
  }
  return "unknown";
}

std::string_view to_string(FaultClass cls) noexcept {
  switch (cls) {
    case FaultClass::none: return "none";
    case FaultClass::bohrbug: return "Bohrbug";
    case FaultClass::heisenbug: return "Heisenbug";
    case FaultClass::aging: return "aging";
    case FaultClass::malicious: return "malicious";
  }
  return "unknown";
}

std::string Failure::describe() const {
  std::string out{to_string(kind)};
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  if (cause != FaultClass::none) {
    out += " [cause=";
    out += to_string(cause);
    out += "]";
  }
  return out;
}

}  // namespace redundancy::core
