#include "core/taxonomy.hpp"

namespace redundancy::core {

std::string_view to_string(Intention v) noexcept {
  switch (v) {
    case Intention::deliberate: return "deliberate";
    case Intention::opportunistic: return "opportunistic";
  }
  return "unknown";
}

std::string_view to_string(RedundancyType v) noexcept {
  switch (v) {
    case RedundancyType::code: return "code";
    case RedundancyType::data: return "data";
    case RedundancyType::environment: return "environment";
  }
  return "unknown";
}

std::string_view to_string(AdjudicatorKind v) noexcept {
  switch (v) {
    case AdjudicatorKind::preventive: return "preventive";
    case AdjudicatorKind::reactive_implicit: return "reactive_implicit";
    case AdjudicatorKind::reactive_explicit: return "reactive_explicit";
    case AdjudicatorKind::reactive_hybrid: return "reactive_hybrid";
  }
  return "unknown";
}

std::string_view to_string(TargetFaults v) noexcept {
  switch (v) {
    case TargetFaults::development: return "development";
    case TargetFaults::bohrbugs: return "Bohrbugs";
    case TargetFaults::heisenbugs: return "Heisenbugs";
    case TargetFaults::malicious: return "malicious";
    case TargetFaults::bohrbugs_and_malicious: return "Bohrbugs+malicious";
  }
  return "unknown";
}

std::string_view to_string(ArchitecturalPattern v) noexcept {
  switch (v) {
    case ArchitecturalPattern::parallel_evaluation: return "parallel evaluation";
    case ArchitecturalPattern::parallel_selection: return "parallel selection";
    case ArchitecturalPattern::sequential_alternatives:
      return "sequential alternatives";
    case ArchitecturalPattern::intra_component: return "intra-component";
    case ArchitecturalPattern::environment_level: return "environment-level";
  }
  return "unknown";
}

std::string paper_cell(AdjudicatorKind v) {
  switch (v) {
    case AdjudicatorKind::preventive: return "preventive";
    case AdjudicatorKind::reactive_implicit: return "reactive implicit";
    case AdjudicatorKind::reactive_explicit: return "reactive explicit";
    case AdjudicatorKind::reactive_hybrid: return "reactive expl./impl.";
  }
  return "unknown";
}

std::string paper_cell(TargetFaults v) {
  switch (v) {
    case TargetFaults::development: return "development";
    case TargetFaults::bohrbugs: return "Bohrbugs";
    case TargetFaults::heisenbugs: return "Heisenbugs";
    case TargetFaults::malicious: return "malicious";
    case TargetFaults::bohrbugs_and_malicious: return "Bohrbugs, malicious";
  }
  return "unknown";
}

TaxonomyDimensions table1_dimensions() {
  return TaxonomyDimensions{
      .intentions = {"deliberate", "opportunistic"},
      .types = {"code", "data", "environment"},
      .adjudicators = {"preventive (implicit adjudicator)",
                       "reactive: implicit adjudicator",
                       "reactive: explicit adjudicator"},
      .faults = {"interaction - malicious", "development: Bohrbugs",
                 "development: Heisenbugs"},
  };
}

}  // namespace redundancy::core
