// TechniqueRegistry: the runtime catalogue of redundancy techniques.
//
// Each technique registers its TaxonomyEntry here; bench/table2_taxonomy
// regenerates the paper's Table 2 from this registry, and the taxonomy test
// diffs the generated table against the published one.
#pragma once

#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "core/taxonomy.hpp"

namespace redundancy::core {

/// Thread-safe: techniques register themselves lazily, so add/find can race
/// when instrumented benchmarks construct techniques from pool workers.
class TechniqueRegistry {
 public:
  /// Process-wide registry instance.
  static TechniqueRegistry& instance();

  /// Register an entry; duplicate names replace the previous entry so that
  /// re-registration in tests is harmless.
  void add(TaxonomyEntry entry);

  [[nodiscard]] std::optional<TaxonomyEntry> find(std::string_view name) const;
  /// Entries in registration (paper Table 2) order. Returns a snapshot so
  /// iteration never races with a concurrent add().
  [[nodiscard]] std::vector<TaxonomyEntry> entries() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TaxonomyEntry> entries_;
};

/// Registers the 17 technique families of Table 2 (idempotent). Called by
/// the experiment harnesses and by the taxonomy tests.
void register_all_techniques();

}  // namespace redundancy::core
