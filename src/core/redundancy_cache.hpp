// RedundancyCache — memoization of adjudicated verdicts, the amortization
// layer that makes deliberate redundancy deployable at traffic scale.
//
// Every run() of a Figure-1 pattern executes N variants plus an adjudicator;
// the paper observes that this repeated execution is deliberate redundancy's
// dominant cost. For deterministic (pure) variant sets the adjudicated
// Result is a function of the input alone, so a popular input need only pay
// the N-fold cost once. The cache provides three things the hot path needs:
//
//   * Sharded storage. Power-of-two shard count, one mutex per shard, keys
//     spread by mix64 — concurrent readers on different keys never contend.
//     Each shard is an LRU ring over an open hash map; a hit is one lock,
//     one probe, one splice, zero allocations.
//   * TinyLFU admission. A 4-bit count-min sketch estimates each key's
//     popularity; on a full shard a new key must out-score the LRU victim
//     to displace it, so one-hit-wonder scans cannot flush the hot set.
//     Sketch counters halve once the sample window saturates (aging).
//   * Single-flight coalescing. Concurrent requests for the same missing
//     key share one execution: the leader runs the variants, waiters park
//     on a custom latch (mutex + condvar, no std::shared_future) that is
//     cancellation-safe — a waiter whose CancellationToken fires leaves
//     immediately with a failure verdict and the flight carries on.
//
// Invalidation is epoch-based on two levels: the process-wide epoch
// (core/cache_epoch.hpp) advanced by rejuvenation / microreboot restart
// events, and a per-cache epoch advanced by invalidate_all() (e.g. the SQL
// NVP server invalidates its select cache on every mutation). Entries store
// the epoch sum at fill time; both counters are monotonic, so any bump
// strands stale entries, which are reaped lazily on touch. A TTL bounds
// staleness for workloads with no invalidation signal at all.
//
// Stats are exported through obs::MetricsRegistry as exact, always-on
// counters (cache.hits / misses / coalesced / admits / rejects / evictions /
// invalidations) carrying the cache's technique= label, so they render
// byte-deterministically alongside the other technique series.
//
// -DREDUNDANCY_CACHE_OFF=ON compiles the layer down to a pass-through stub
// (mirroring REDUNDANCY_OBS_NOOP): get_or_run() invokes the miss path
// directly and the optimizer deletes the rest.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cache_epoch.hpp"
#include "core/result.hpp"
#include "obs/clock.hpp"
#include "obs/obs.hpp"
#include "util/cacheline.hpp"
#include "util/checksum.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::core {

struct CacheConfig {
  /// Total entries across all shards (per-shard capacity is derived).
  std::size_t capacity = 1024;
  /// Shard count; 0 = derive from hardware concurrency. Rounded up to a
  /// power of two so shard selection is a mask, not a division.
  std::size_t shards = 0;
  /// Entries older than this are misses (0 = no TTL).
  std::uint64_t ttl_ns = 0;
  /// Coalesce concurrent identical requests onto one execution.
  bool coalesce = true;
  /// Memoize failure verdicts too (off: only successes are cached, so a
  /// transient fault is retried by the next request).
  bool cache_failures = false;
  /// technique= label for the cache.* metric series.
  std::string label = "cache";
};

/// Point-in-time counter totals (exact; sums of the registry counters).
struct CacheStatsSnapshot {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;   ///< waiters served by another request's run
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;     ///< denied admission by TinyLFU
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  ///< stale entries reaped (epoch / TTL)

  [[nodiscard]] double hit_rate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

#ifdef REDUNDANCY_CACHE_OFF
inline constexpr bool kCacheCompiledIn = false;

/// Pass-through stub: identical API, no storage, no coalescing. get_or_run
/// always executes; the optimizer folds the layer away.
template <typename Out>
class RedundancyCache {
 public:
  explicit RedundancyCache(CacheConfig config = {}) : config_(std::move(config)) {}

  std::optional<Result<Out>> lookup(std::uint64_t) noexcept {
    return std::nullopt;
  }
  void store(std::uint64_t, const Result<Out>&) noexcept {}

  template <typename Fn>
  Result<Out> get_or_run(std::uint64_t, Fn&& run) {
    return std::forward<Fn>(run)();
  }
  template <typename Fn>
  Result<Out> get_or_run(std::uint64_t, const util::CancellationToken&,
                         Fn&& run) {
    return std::forward<Fn>(run)();
  }

  void invalidate_all() noexcept {}
  void clear() noexcept {}
  [[nodiscard]] std::size_t size() const noexcept { return 0; }
  [[nodiscard]] std::size_t shard_count() const noexcept { return 1; }
  [[nodiscard]] CacheStatsSnapshot stats() const noexcept { return {}; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }

 private:
  CacheConfig config_;
};

#else
inline constexpr bool kCacheCompiledIn = true;

namespace cache_detail {

/// Shared never-cancelled token for the tokenless get_or_run overload. One
/// process-wide instance: a function-local static inside the overload would
/// be re-instantiated (and re-allocated) per caller lambda type, costing the
/// first hit at every new call site a heap allocation.
inline const util::CancellationToken& never_token() {
  static const util::CancellationToken never;
  return never;
}

/// 4-bit count-min sketch with aging — the TinyLFU popularity estimator.
/// Four rows, each `width` nibbles; increments saturate at 15 and every
/// counter halves once `sample_window` increments have been observed, so
/// the estimate tracks *recent* popularity.
class FrequencySketch {
 public:
  explicit FrequencySketch(std::size_t capacity) {
    std::size_t width = 8;
    while (width < capacity * 8) width <<= 1;  // nibbles per row, pow2
    mask_ = width - 1;
    table_.assign(width / 2 * kRows, 0);  // two nibbles per byte
    sample_window_ = capacity * 10 < 640 ? 640 : capacity * 10;
  }

  void record(std::uint64_t key) noexcept {
    bool grew = false;
    for (std::size_t row = 0; row < kRows; ++row) {
      grew |= increment(row, index(key, row));
    }
    if (grew && ++samples_ >= sample_window_) age();
  }

  [[nodiscard]] std::uint8_t estimate(std::uint64_t key) const noexcept {
    std::uint8_t best = 15;
    for (std::size_t row = 0; row < kRows; ++row) {
      const std::uint8_t v = nibble(row, index(key, row));
      if (v < best) best = v;
    }
    return best;
  }

 private:
  static constexpr std::size_t kRows = 4;

  [[nodiscard]] std::size_t index(std::uint64_t key,
                                  std::size_t row) const noexcept {
    // Distinct avalanched streams per row from one mix64 chain.
    return static_cast<std::size_t>(
               util::mix64(key + 0x9e3779b97f4a7c15ULL * (row + 1))) &
           mask_;
  }

  [[nodiscard]] std::uint8_t nibble(std::size_t row,
                                    std::size_t i) const noexcept {
    const std::uint8_t byte = table_[row * (mask_ + 1) / 2 + i / 2];
    return (i & 1) ? byte >> 4 : byte & 0x0f;
  }

  bool increment(std::size_t row, std::size_t i) noexcept {
    std::uint8_t& byte = table_[row * (mask_ + 1) / 2 + i / 2];
    const std::uint8_t v = (i & 1) ? byte >> 4 : byte & 0x0f;
    if (v >= 15) return false;
    byte = (i & 1) ? static_cast<std::uint8_t>((byte & 0x0f) | ((v + 1) << 4))
                   : static_cast<std::uint8_t>((byte & 0xf0) | (v + 1));
    return true;
  }

  void age() noexcept {
    for (auto& byte : table_) {
      byte = static_cast<std::uint8_t>(((byte >> 1) & 0x77));  // halve both nibbles
    }
    samples_ = 0;
  }

  std::vector<std::uint8_t> table_;
  std::size_t mask_ = 0;
  std::size_t samples_ = 0;
  std::size_t sample_window_ = 640;
};

}  // namespace cache_detail

template <typename Out>
class RedundancyCache {
  static_assert(std::is_copy_constructible_v<Out>,
                "RedundancyCache serves hits by copy; Out must be copyable");

 public:
  explicit RedundancyCache(CacheConfig config = {})
      : config_(std::move(config)),
        hits_(obs::counter("cache.hits", config_.label)),
        misses_(obs::counter("cache.misses", config_.label)),
        coalesced_(obs::counter("cache.coalesced", config_.label)),
        admits_(obs::counter("cache.admits", config_.label)),
        rejects_(obs::counter("cache.rejects", config_.label)),
        evictions_(obs::counter("cache.evictions", config_.label)),
        invalidations_(obs::counter("cache.invalidations", config_.label)) {
    std::size_t shards = config_.shards;
    if (shards == 0) {
      const std::size_t hw = std::thread::hardware_concurrency();
      shards = hw < 2 ? 2 : hw;
    }
    std::size_t pow2 = 1;
    while (pow2 < shards) pow2 <<= 1;
    if (config_.capacity == 0) config_.capacity = 1;
    if (pow2 > config_.capacity) pow2 = 1;  // tiny caches: one shard
    shard_mask_ = pow2 - 1;
    const std::size_t per_shard =
        (config_.capacity + pow2 - 1) / pow2;  // ceil
    shards_.reserve(pow2);
    for (std::size_t i = 0; i < pow2; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  RedundancyCache(const RedundancyCache&) = delete;
  RedundancyCache& operator=(const RedundancyCache&) = delete;

  /// Probe for a live entry. A hit bumps recency and the TinyLFU sketch and
  /// returns a copy of the verdict; stale entries (epoch or TTL) are reaped
  /// and count as misses. Allocation-free on the hit path.
  std::optional<Result<Out>> lookup(std::uint64_t key) {
    Shard& shard = shard_of(key);
    std::lock_guard lock(shard.m);
    shard.sketch.record(key);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.add();
      return std::nullopt;
    }
    if (stale(it->second)) {
      invalidations_.add();
      misses_.add();
      shard.lru.erase(it->second.lru_it);
      shard.map.erase(it);
      return std::nullopt;
    }
    // Most-recently-used: splice relinks the existing node, no allocation.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    hits_.add();
    return it->second.value;
  }

  /// Insert (or refresh) the verdict under `key`, subject to admission.
  /// Failures are stored only when config().cache_failures.
  void store(std::uint64_t key, const Result<Out>& value) {
    if (!value.has_value() && !config_.cache_failures) return;
    Shard& shard = shard_of(key);
    std::lock_guard lock(shard.m);
    const std::uint64_t now = obs::now_ns();
    const std::uint64_t ep = epoch();
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      it->second.value = value;
      it->second.stored_ns = now;
      it->second.epoch = ep;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      return;
    }
    if (shard.map.size() >= shard.capacity) {
      // TinyLFU admission duel: the newcomer must beat the LRU victim's
      // recorded popularity to displace it.
      const std::uint64_t victim = shard.lru.back();
      if (shard.sketch.estimate(key) < shard.sketch.estimate(victim)) {
        rejects_.add();
        return;
      }
      shard.map.erase(victim);
      shard.lru.pop_back();
      evictions_.add();
    }
    shard.lru.push_front(key);
    shard.map.emplace(key, Entry{value, now, ep, shard.lru.begin()});
    admits_.add();
  }

  /// Memoized execution with single-flight coalescing: a hit returns the
  /// cached verdict; on a miss one caller (the leader) runs `run` while
  /// concurrent callers for the same key park on the flight's latch and
  /// share the leader's verdict. `token` frees a parked waiter early: it
  /// returns an `unavailable` failure without waiting for the leader.
  template <typename Fn>
  Result<Out> get_or_run(std::uint64_t key, const util::CancellationToken& token,
                         Fn&& run) {
    if (auto hit = lookup(key)) return std::move(*hit);
    if (!config_.coalesce) {
      Result<Out> fresh = run();
      store(key, fresh);
      return fresh;
    }

    Shard& shard = shard_of(key);
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      std::lock_guard lock(shard.m);
      auto [it, inserted] = shard.inflight.try_emplace(key);
      if (inserted) {
        it->second = std::make_shared<Flight>();
        leader = true;
      }
      flight = it->second;
    }

    if (!leader) {
      std::unique_lock latch(flight->m);
      util::ThreadPool::shared().help_until(latch, flight->cv, [&] {
        return flight->done || token.cancelled();
      });
      if (!flight->done) {
        return Result<Out>{failure(FailureKind::unavailable,
                                   "cancelled while awaiting coalesced run")};
      }
      coalesced_.add();
      return *flight->result;
    }

    // Leader: execute, publish to the cache and to the latch, then retire
    // the flight so later requests start fresh. The catch arm keeps waiters
    // from parking forever if the variant set throws.
    Result<Out> fresh = [&]() -> Result<Out> {
      try {
        return run();
      } catch (...) {
        settle(shard, key, flight,
               Result<Out>{failure(FailureKind::crash,
                                   "exception during coalesced run")});
        throw;
      }
    }();
    store(key, fresh);
    settle(shard, key, flight, fresh);
    return fresh;
  }

  /// get_or_run with no cancellation: waiters park until the leader settles.
  template <typename Fn>
  Result<Out> get_or_run(std::uint64_t key, Fn&& run) {
    return get_or_run(key, cache_detail::never_token(), std::forward<Fn>(run));
  }

  /// Strand every current entry (lazy reap on next touch). Wait-free.
  void invalidate_all() noexcept {
    local_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drop every entry eagerly (tests, reconfiguration).
  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard lock(shard->m);
      shard->map.clear();
      shard->lru.clear();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard->m);
      n += shard->map.size();
    }
    return n;
  }

  [[nodiscard]] CacheStatsSnapshot stats() const noexcept {
    return {hits_.total(),    misses_.total(),    coalesced_.total(),
            admits_.total(),  rejects_.total(),   evictions_.total(),
            invalidations_.total()};
  }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Layout introspection for tests/util/layout_test.cpp: the per-shard
  /// header (mutex first) must start on its own cache line.
  [[nodiscard]] static constexpr std::size_t shard_alignment() noexcept {
    return alignof(Shard);
  }
  [[nodiscard]] const void* shard_addr(std::size_t i) const noexcept {
    return shards_[i].get();
  }

 private:
  struct Entry {
    Result<Out> value;
    std::uint64_t stored_ns = 0;
    std::uint64_t epoch = 0;  ///< global + local epoch sum at fill time
    typename std::list<std::uint64_t>::iterator lru_it;
  };

  /// The single-flight latch: plain mutex + condvar, no shared_future, so
  /// waiters can time out / cancel without tearing down the flight.
  struct Flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::optional<Result<Out>> result;
  };

  // Cache-line aligned so the shard header — the mutex every operation on
  // the shard spins through — starts on its own line. Shards are allocated
  // individually, so the alignment (not allocator luck) is what keeps one
  // shard's lock traffic from invalidating a neighbouring allocation
  // (FL001); layout_test.cpp asserts the alignment survives refactors.
  struct alignas(util::kCacheLine) Shard {
    explicit Shard(std::size_t cap) : capacity(cap < 1 ? 1 : cap), sketch(cap) {
      map.reserve(capacity + 1);
    }
    std::mutex m;
    std::size_t capacity;
    std::unordered_map<std::uint64_t, Entry> map;
    std::list<std::uint64_t> lru;  ///< front = most recent
    std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> inflight;
    cache_detail::FrequencySketch sketch;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t key) noexcept {
    return *shards_[util::mix64(key) & shard_mask_];
  }

  /// Both epochs are monotonic, so their sum strands an entry the moment
  /// either advances.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return cache_epoch() + local_epoch_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool stale(const Entry& e) const noexcept {
    if (e.epoch != epoch()) return true;
    return config_.ttl_ns != 0 && obs::now_ns() - e.stored_ns > config_.ttl_ns;
  }

  void settle(Shard& shard, std::uint64_t key,
              const std::shared_ptr<Flight>& flight, Result<Out> verdict) {
    {
      std::lock_guard latch(flight->m);
      flight->result.emplace(std::move(verdict));
      flight->done = true;
    }
    flight->cv.notify_all();
    std::lock_guard lock(shard.m);
    shard.inflight.erase(key);
  }

  CacheConfig config_;
  std::size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> local_epoch_{0};

  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& coalesced_;
  obs::Counter& admits_;
  obs::Counter& rejects_;
  obs::Counter& evictions_;
  obs::Counter& invalidations_;
};

#endif  // REDUNDANCY_CACHE_OFF

}  // namespace redundancy::core
