#include "techniques/process_pair.hpp"

namespace redundancy::techniques {

ProcessPair::ProcessPair(env::Checkpointable& state, Options options)
    : state_(state), shipped_store_(1), options_(options) {
  // The backup starts from the primary's initial state.
  shipped_store_.capture(state_);
  ++shipped_;
}

core::Status ProcessPair::run(const std::function<core::Status()>& op) {
  core::Status outcome = op();
  std::size_t attempts = 0;
  while (!outcome.has_value() && attempts < options_.max_takeovers) {
    // The acting process is dead; its peer restores the last shipped
    // checkpoint and re-executes the operation. Work since the last
    // shipment is lost — Gray's checkpoint-shipping granularity trade-off.
    if (auto restored = shipped_store_.restore_latest(state_);
        !restored.has_value()) {
      ++unrecovered_;
      return restored;
    }
    acting_ = 1 - acting_;
    ++takeovers_;
    ++attempts;
    outcome = op();
  }
  if (!outcome.has_value()) {
    // Both sides failed: leave the pair at the last shipped (consistent)
    // state rather than wherever the final attempt died.
    (void)shipped_store_.restore_latest(state_);
    ++unrecovered_;
    return outcome;
  }
  if (++since_ship_ >= options_.ship_every) {
    shipped_store_.capture(state_);
    ++shipped_;
    since_ship_ = 0;
  }
  return outcome;
}

}  // namespace redundancy::techniques
