// Self-optimizing code (Diaconescu et al. 2004; Naccache & Gannod 2007).
//
// The same functionality is deliberately implemented by several components,
// each optimized for different runtime conditions. A monitor — the explicit
// adjudicator — watches the delivered quality of service and, when the SLA
// is violated over a sliding window, switches the active implementation,
// trying the registered alternatives in order of declared preference.
//
// Taxonomy: deliberate / code / reactive explicit / development faults
// (here: performance faults, a non-functional development fault).
// Pattern: sequential alternatives.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"

namespace redundancy::techniques {

/// One implementation choice: the handler reports its (simulated or
/// measured) latency for each served request.
struct QosImplementation {
  std::string name;
  /// request size -> (result value, latency ms)
  std::function<std::pair<double, double>(double)> handler;
};

class SelfOptimizing {
 public:
  struct Options {
    double sla_latency_ms = 50.0;  ///< window average above this => switch
    std::size_t window = 16;       ///< sliding window length (requests)
    std::size_t warmup = 4;        ///< min observations before judging
  };

  SelfOptimizing(std::vector<QosImplementation> implementations,
                 Options options);

  /// Serve one request; may switch implementation as a side effect.
  core::Result<double> run(double request);

  [[nodiscard]] const std::string& active() const noexcept {
    return impls_[active_].name;
  }
  [[nodiscard]] std::size_t switches() const noexcept { return switches_; }
  [[nodiscard]] double window_average_latency() const noexcept;
  [[nodiscard]] std::size_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::size_t sla_violations() const noexcept {
    return violations_;
  }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Self-optimizing code",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::sequential_alternatives,
        .summary = "changes the executing components to recover from "
                   "performance degradation",
    };
  }

 private:
  std::vector<QosImplementation> impls_;
  Options options_;
  std::size_t active_ = 0;
  std::deque<double> window_;
  std::size_t switches_ = 0;
  std::size_t requests_ = 0;
  std::size_t violations_ = 0;  ///< individual requests above the SLA
};

}  // namespace redundancy::techniques
