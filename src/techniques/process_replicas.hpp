// Process replicas / N-variant systems (Cox et al. 2006; Bruschi et al.
// 2007).
//
// The same program runs in N automatically diversified replicas — here:
// disjoint address-space partitions and per-replica instruction tags on the
// VM — fed identical inputs. A monitor compares the replicas' observable
// behaviour after every request; benign requests behave identically, while
// a memory-corruption attack can succeed in at most one replica's layout,
// so the replicas diverge and the monitor flags the attack (an implicit,
// comparison-based adjudicator). No secrets are required: the defense rests
// on the attacker's inability to craft one input valid in every variant.
//
// Taxonomy: deliberate / environment / reactive implicit / malicious.
// Pattern: parallel evaluation.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/concurrency.hpp"
#include "core/registry.hpp"
#include "core/voters.hpp"
#include "vm/address_space.hpp"
#include "vm/vm.hpp"

namespace redundancy::techniques {

class ProcessReplicas {
 public:
  struct Options {
    std::size_t replicas = 2;
    bool partition_addresses = true;  ///< Cox mechanism 1
    bool tag_instructions = true;     ///< Cox mechanism 2
    std::size_t memory_words = 4096;
    std::uint64_t max_steps = 20'000;
    /// Threaded runs each replica VM on the shared pool (VMs are disjoint,
    /// so this is safe); the comparison still waits for every replica —
    /// divergence detection needs the full behaviour set.
    core::Concurrency concurrency = core::Concurrency::sequential;
  };

  /// Load `program` into every replica; `plant` pokes per-replica data
  /// (e.g. secrets) given (vm, partition_base).
  ProcessReplicas(const vm::Program& program, Options options,
                  std::function<void(vm::Vm&, std::size_t)> plant = nullptr);

  /// Serve one request on every replica and compare behaviours.
  core::Result<vm::Behaviour> serve(const std::vector<std::int64_t>& request);

  /// Reset every replica to its pristine loaded image (between requests in
  /// experiments; a real deployment would fork fresh replicas).
  void reset();

  [[nodiscard]] std::size_t replicas() const noexcept { return vms_.size(); }
  [[nodiscard]] std::size_t detections() const noexcept { return detections_; }
  [[nodiscard]] std::size_t requests() const noexcept { return requests_; }
  [[nodiscard]] const std::vector<vm::Partition>& partitions() const noexcept {
    return partitions_;
  }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Process replicas",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::environment,
        .adjudicator = core::AdjudicatorKind::reactive_implicit,
        .faults = core::TargetFaults::malicious,
        .pattern = core::ArchitecturalPattern::parallel_evaluation,
        .summary = "executes the same process in diversified memory spaces "
                   "and compares behaviour to detect malicious attacks",
    };
  }

 private:
  [[nodiscard]] std::uint8_t tag_for(std::size_t replica) const noexcept {
    return options_.tag_instructions
               ? static_cast<std::uint8_t>(replica + 1)
               : 0;
  }

  vm::Program program_;
  Options options_;
  std::function<void(vm::Vm&, std::size_t)> plant_;
  std::vector<vm::Partition> partitions_;
  std::vector<std::unique_ptr<vm::Vm>> vms_;
  std::size_t detections_ = 0;
  std::size_t requests_ = 0;
};

}  // namespace redundancy::techniques
