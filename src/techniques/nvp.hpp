// N-version programming (Avizienis 1985).
//
// Independently developed versions execute in parallel on the same input
// configuration; a general voting algorithm — the *implicit* adjudicator —
// compares the results and selects the majority value. With N = 2k+1
// versions the system tolerates up to k faulty results per request.
//
// Taxonomy: deliberate / code / reactive implicit / development faults.
// Pattern: parallel evaluation (Figure 1a).
#pragma once

#include <vector>

#include "core/parallel_evaluation.hpp"
#include "core/registry.hpp"
#include "core/voters.hpp"

namespace redundancy::techniques {

template <typename In, typename Out>
class NVersionProgramming {
 public:
  /// `versions` are the independently developed implementations. The
  /// default adjudicator is the strict-majority voter; pass e.g.
  /// core::median_voter for inexact voting. With Concurrency::threaded +
  /// Adjudication::incremental the vote is re-taken as ballots arrive and
  /// run() returns as soon as a majority exists — only sound for
  /// majority-style voters (see core/concurrency.hpp).
  explicit NVersionProgramming(
      std::vector<core::Variant<In, Out>> versions,
      core::Voter<Out> voter = core::majority_voter<Out>(),
      core::Concurrency mode = core::Concurrency::sequential,
      core::Adjudication adjudication = core::Adjudication::join_all)
      : engine_(std::move(versions), std::move(voter), mode, adjudication) {
    engine_.set_obs_label("nvp");
  }

  core::Result<Out> run(const In& input) { return engine_.run(input); }

  /// Memoize adjudicated majority verdicts (deterministic version sets
  /// only); keyed by (technique, input digest), invalidated by restart
  /// epochs. See core/redundancy_cache.hpp.
  void enable_cache(core::CacheConfig config = {}) {
    engine_.enable_cache(std::move(config));
  }
  void disable_cache() noexcept { engine_.disable_cache(); }
  [[nodiscard]] core::RedundancyCache<Out>* cache() noexcept {
    return engine_.cache();
  }
  void invalidate_cache() noexcept { engine_.invalidate_cache(); }

  /// Number of faulty results a full-width majority round can mask.
  [[nodiscard]] std::size_t tolerated_faults() const noexcept {
    return engine_.width() == 0 ? 0 : (engine_.width() - 1) / 2;
  }
  [[nodiscard]] std::size_t versions() const noexcept { return engine_.width(); }
  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return engine_.metrics();
  }
  void reset_metrics() noexcept { engine_.reset_metrics(); }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "N-version programming",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::reactive_implicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::parallel_evaluation,
        .summary = "compares the results of executing different versions of "
                   "the program to identify errors",
    };
  }

 private:
  core::ParallelEvaluation<In, Out> engine_;
};

}  // namespace redundancy::techniques
