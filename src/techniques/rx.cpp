#include "techniques/rx.hpp"

namespace redundancy::techniques {

RxRecovery::RxRecovery(env::SimEnv& env, env::Checkpointable& state,
                       std::vector<env::Perturbation> menu, Options options)
    : env_(env), state_(state), store_(2), menu_(std::move(menu)),
      options_(options) {}

core::Status RxRecovery::execute(const std::function<core::Status()>& op) {
  store_.capture(state_);
  const env::SimEnv original = env_;

  core::Status outcome = op();
  if (outcome.has_value()) return outcome;

  const std::size_t rounds = options_.max_rounds == 0 ? 1 : options_.max_rounds;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (const auto& perturbation : menu_) {
      // Roll back the program state, change the environment, re-execute.
      if (auto restored = store_.restore_latest(state_); !restored.has_value()) {
        ++unrecovered_;
        return restored;
      }
      ++rollbacks_;
      env_ = perturbation.apply(env_);
      outcome = op();
      if (outcome.has_value()) {
        ++recoveries_;
        ++cures_[perturbation.name];
        if (options_.revert_env_after_success) env_ = original;
        return outcome;
      }
    }
  }
  // Menu exhausted: put the world back the way we found it.
  (void)store_.restore_latest(state_);
  env_ = original;
  ++unrecovered_;
  return outcome;
}

}  // namespace redundancy::techniques
