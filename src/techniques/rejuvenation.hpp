// Software rejuvenation (Huang, Kintala, Kolettis, Fulton 1995; Wang et
// al. 1995; Garg et al. 1996).
//
// A *preventive* use of environment redundancy: the system is restarted on
// purpose, before it fails, to clear accumulated aging (leaks, fragmented
// state). No adjudicator ever observes a failure; the policy acts on time
// or on measured age. Garg's refinement combines rejuvenation with
// checkpoints to minimize the completion time of long-running programs
// (env::simulate_completion).
//
// Taxonomy: deliberate / environment / preventive / Heisenbugs (aging).
#pragma once

#include <cstdint>
#include <string>

#include "core/registry.hpp"
#include "env/aging.hpp"

namespace redundancy::techniques {

/// When to rejuvenate.
struct RejuvenationPolicy {
  enum class Kind {
    none,       ///< never — crash-driven reboots only
    periodic,   ///< every `period` served requests
    threshold,  ///< when measured age fraction exceeds `age_threshold`
  };
  Kind kind = Kind::none;
  std::uint64_t period = 0;
  double age_threshold = 1.0;
  /// Planned restarts can be scheduled off-peak: downtime per rejuvenation.
  double planned_downtime = 80.0;

  [[nodiscard]] static RejuvenationPolicy none() { return {}; }
  [[nodiscard]] static RejuvenationPolicy periodic(std::uint64_t period,
                                                   double downtime = 80.0) {
    return {Kind::periodic, period, 1.0, downtime};
  }
  [[nodiscard]] static RejuvenationPolicy threshold(double age,
                                                    double downtime = 80.0) {
    return {Kind::threshold, 0, age, downtime};
  }

  [[nodiscard]] std::string describe() const;
};

/// Outcome of serving a fixed request stream under a policy.
struct RejuvenationRun {
  std::uint64_t offered = 0;       ///< requests offered
  std::uint64_t served = 0;        ///< requests served successfully
  std::uint64_t failed = 0;        ///< requests lost to crashes
  std::uint64_t crashes = 0;       ///< unplanned failures
  std::uint64_t rejuvenations = 0; ///< planned restarts
  double downtime = 0.0;           ///< total downtime units
  double elapsed = 0.0;            ///< total elapsed units

  [[nodiscard]] double availability() const {
    return elapsed > 0.0 ? 1.0 - downtime / elapsed : 1.0;
  }
  [[nodiscard]] double goodput() const {
    return offered ? static_cast<double>(served) /
                         static_cast<double>(offered)
                   : 0.0;
  }
};

/// Drive `requests` through an aging process under the policy. Crashes pay
/// the process's full reboot time; planned rejuvenations pay
/// `policy.planned_downtime` (scheduled restarts are cheaper).
[[nodiscard]] RejuvenationRun serve_with_rejuvenation(
    const env::AgingConfig& aging, const RejuvenationPolicy& policy,
    std::uint64_t requests, std::uint64_t seed);

[[nodiscard]] core::TaxonomyEntry rejuvenation_taxonomy();

}  // namespace redundancy::techniques
