// Data diversity for security — N-variant data (Nguyen-Tuong, Evans,
// Knight, Cox, Davidson 2008).
//
// Data is stored in N variants such that identical *concrete* values have
// different *interpretations* in each variant. A legitimate writer encodes
// per-variant; an attacker who corrupts memory writes the same concrete
// bytes into every variant (or hits only some variants), so the decoded
// interpretations disagree and the comparison — an implicit adjudicator —
// flags the corruption. To evade detection the attacker would have to alter
// each variant differently, with knowledge of every variant's encoding.
//
// Taxonomy: deliberate / data / reactive implicit / malicious faults.
#pragma once

#include <cstdint>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"
#include "util/rng.hpp"

namespace redundancy::techniques {

class NVariantStore {
 public:
  /// `variants` independent encodings; masks are derived from `seed` and
  /// private to the store (the attacker does not see them).
  NVariantStore(std::size_t cells, std::size_t variants, std::uint64_t seed);

  /// Legitimate write: encodes the value into every variant.
  core::Status write(std::size_t cell, std::int64_t value);

  /// Legitimate read: decodes every variant and compares interpretations.
  [[nodiscard]] core::Result<std::int64_t> read(std::size_t cell) const;

  // --- attack surface ----------------------------------------------------
  /// Memory-corruption attack: the attacker smashes the concrete storage of
  /// `cell`, writing the same raw word into every variant (they address
  /// physical memory, not the encoding).
  void smash_all_variants(std::size_t cell, std::int64_t raw);
  /// Partial corruption: only variant `v` is overwritten.
  void smash_one_variant(std::size_t cell, std::size_t v, std::int64_t raw);

  [[nodiscard]] std::size_t cells() const noexcept { return cells_; }
  [[nodiscard]] std::size_t variants() const noexcept { return masks_.size(); }
  [[nodiscard]] std::size_t detections() const noexcept { return detections_; }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Data diversity for security",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::data,
        .adjudicator = core::AdjudicatorKind::reactive_implicit,
        .faults = core::TargetFaults::malicious,
        .pattern = core::ArchitecturalPattern::parallel_evaluation,
        .summary = "stores data in variants where identical concrete values "
                   "have different interpretations; comparison exposes "
                   "corruption",
    };
  }

 private:
  [[nodiscard]] std::int64_t encode(std::size_t v, std::int64_t value) const;
  [[nodiscard]] std::int64_t decode(std::size_t v, std::int64_t raw) const;

  std::size_t cells_;
  std::vector<std::uint64_t> masks_;          ///< one per variant
  std::vector<std::vector<std::int64_t>> store_;  ///< [variant][cell]
  mutable std::size_t detections_ = 0;
};

}  // namespace redundancy::techniques
