#include "techniques/checkpoint_recovery.hpp"

namespace redundancy::techniques {

CheckpointRecovery::CheckpointRecovery(env::Checkpointable& subject,
                                       Options options)
    : subject_(subject), store_(options.retained), options_(options) {
  checkpoint();  // always have a consistent state to return to
}

void CheckpointRecovery::checkpoint() {
  store_.capture(subject_);
  ++checkpoints_;
  since_checkpoint_ = 0;
}

core::Status CheckpointRecovery::run(const std::function<core::Status()>& op) {
  if (options_.checkpoint_every > 0 &&
      since_checkpoint_ >= options_.checkpoint_every) {
    checkpoint();
  }
  core::Status outcome = op();
  if (outcome.has_value()) {
    ++since_checkpoint_;
    return outcome;
  }
  for (std::size_t attempt = 0; attempt < options_.max_retries; ++attempt) {
    if (auto restored = store_.restore_latest(subject_); !restored.has_value()) {
      ++unrecovered_;
      return restored;
    }
    ++rollbacks_;
    // Operations executed since the checkpoint are re-applied by the caller
    // at the granularity of this op; the environment re-rolls on its own.
    outcome = op();
    if (outcome.has_value()) {
      ++recoveries_;
      ++since_checkpoint_;
      return outcome;
    }
  }
  // Fail-stop with a consistent state: leave the subject at the checkpoint
  // rather than wherever the last failed re-execution abandoned it.
  if (auto restored = store_.restore_latest(subject_); restored.has_value()) {
    ++rollbacks_;
  }
  ++unrecovered_;
  return outcome;
}

}  // namespace redundancy::techniques
