#include "techniques/checkpoint_recovery.hpp"

#include "obs/obs.hpp"

namespace redundancy::techniques {

namespace {

/// Emit the explicit-adjudicator event for one protected operation: each
/// execution is a ballot, the acceptance test is "did the Status succeed".
void record_run(const obs::SpanContext& ctx, std::size_t attempts,
                std::size_t failures, bool accepted) {
  if (!ctx.active()) return;
  obs::AdjudicationEvent event;
  event.technique = "checkpoint_recovery";
  event.electorate = attempts;
  event.ballots_seen = attempts;
  event.ballots_failed = failures;
  event.accepted = accepted;
  event.verdict = accepted ? "ok" : "retries exhausted";
  obs::record_adjudication(ctx, std::move(event));
}

}  // namespace

CheckpointRecovery::CheckpointRecovery(env::Checkpointable& subject,
                                       Options options)
    : subject_(subject), store_(options.retained), options_(options) {
  checkpoint();  // always have a consistent state to return to
}

void CheckpointRecovery::checkpoint() {
  store_.capture(subject_);
  ++checkpoints_;
  since_checkpoint_ = 0;
}

core::Status CheckpointRecovery::run(const std::function<core::Status()>& op) {
  obs::ScopedSpan span{"checkpoint_recovery.run"};
  const obs::SpanContext ctx = span.context();
  const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  const auto finish = [&](std::size_t attempts, std::size_t failures,
                          bool accepted) {
    if (t0 != 0) {
      static obs::Histogram& latency =
          obs::histogram("technique.request_ns", "checkpoint_recovery");
      static obs::Counter& requests =
          obs::counter("technique.requests", "checkpoint_recovery");
      static obs::Counter& rolled =
          obs::counter("technique.rollbacks", "checkpoint_recovery");
      static obs::Counter& recovered =
          obs::counter("technique.recoveries", "checkpoint_recovery");
      static obs::Counter& lost =
          obs::counter("technique.unrecovered", "checkpoint_recovery");
      latency.record(obs::now_ns() - t0);
      requests.add();
      if (failures != 0) rolled.add(failures);
      if (accepted && failures != 0) recovered.add();
      if (!accepted) lost.add();
    }
    record_run(ctx, attempts, failures, accepted);
    span.set_ok(accepted);
  };
  if (options_.checkpoint_every > 0 &&
      since_checkpoint_ >= options_.checkpoint_every) {
    checkpoint();
  }
  core::Status outcome = op();
  if (outcome.has_value()) {
    ++since_checkpoint_;
    finish(1, 0, true);
    return outcome;
  }
  for (std::size_t attempt = 0; attempt < options_.max_retries; ++attempt) {
    if (auto restored = store_.restore_latest(subject_); !restored.has_value()) {
      ++unrecovered_;
      finish(attempt + 1, attempt + 1, false);
      return restored;
    }
    ++rollbacks_;
    // Operations executed since the checkpoint are re-applied by the caller
    // at the granularity of this op; the environment re-rolls on its own.
    outcome = op();
    if (outcome.has_value()) {
      ++recoveries_;
      ++since_checkpoint_;
      finish(attempt + 2, attempt + 1, true);
      return outcome;
    }
  }
  // Fail-stop with a consistent state: leave the subject at the checkpoint
  // rather than wherever the last failed re-execution abandoned it.
  if (auto restored = store_.restore_latest(subject_); restored.has_value()) {
    ++rollbacks_;
  }
  ++unrecovered_;
  finish(1 + options_.max_retries, 1 + options_.max_retries, false);
  return outcome;
}

}  // namespace redundancy::techniques
