#include "techniques/rule_engine.hpp"

namespace redundancy::techniques {

RuleEngine& RuleEngine::add_rule(Rule rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

core::Result<services::Message> RuleEngine::handle(
    const std::string& operation, const core::Failure& failure,
    const services::Message& request) {
  for (const auto& rule : rules_) {
    if (rule.on != failure.kind) continue;
    if (rule.operation != "*" && rule.operation != operation) continue;
    ++activations_;
    auto recovered = rule.action(request);
    if (recovered.has_value()) ++recoveries_;
    return recovered;
  }
  return failure;
}

services::Handler RuleEngine::protect(std::string operation,
                                      services::Handler inner) {
  return [this, operation = std::move(operation), inner = std::move(inner)](
             const services::Message& request)
             -> core::Result<services::Message> {
    auto out = inner(request);
    if (out.has_value()) return out;
    return handle(operation, out.error(), request);
  };
}

}  // namespace redundancy::techniques
