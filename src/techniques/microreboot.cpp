#include "techniques/microreboot.hpp"

#include <algorithm>

#include "core/cache_epoch.hpp"

namespace redundancy::techniques {

using core::failure;
using core::FailureKind;
using core::ok_status;
using core::Status;

Status MicrorebootContainer::add_component(const std::string& name,
                                           double init_cost,
                                           const std::string& parent) {
  if (components_.contains(name)) {
    return failure(FailureKind::crash, "duplicate component " + name);
  }
  if (!parent.empty() && !components_.contains(parent)) {
    return failure(FailureKind::crash, "unknown parent " + parent);
  }
  components_[name] = Component{init_cost, parent, {}, true};
  if (!parent.empty()) components_[parent].children.push_back(name);
  order_.push_back(name);
  return ok_status();
}

std::uint64_t MicrorebootContainer::open_session(const std::string& component,
                                                 bool externalized) {
  const std::uint64_t id = next_session_++;
  sessions_[id] = Session{component, externalized};
  return id;
}

Status MicrorebootContainer::fail(const std::string& name) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return failure(FailureKind::crash, "unknown component " + name);
  }
  it->second.healthy = false;
  return ok_status();
}

bool MicrorebootContainer::healthy(const std::string& name) const {
  auto it = components_.find(name);
  return it != components_.end() && it->second.healthy;
}

Status MicrorebootContainer::serve(const std::string& name) {
  auto it = components_.find(name);
  if (it == components_.end()) {
    return failure(FailureKind::unavailable, "unknown component " + name);
  }
  // The whole ancestor chain must be up.
  const Component* current = &it->second;
  std::string label = name;
  for (;;) {
    if (!current->healthy) {
      return failure(FailureKind::unavailable, label + " is down",
                     core::FaultClass::heisenbug);
    }
    if (current->parent.empty()) break;
    label = current->parent;
    current = &components_.at(current->parent);
  }
  return ok_status();
}

void MicrorebootContainer::subtree(const std::string& name,
                                   std::vector<std::string>& out) const {
  out.push_back(name);
  for (const auto& child : components_.at(name).children) {
    subtree(child, out);
  }
}

MicrorebootContainer::RecoveryReport MicrorebootContainer::restart(
    const std::vector<std::string>& names) {
  // Restarting components sheds their accumulated state; verdicts memoized
  // before the restart may embed exactly the corruption being shed, so the
  // process-wide cache epoch advances and strands them.
  if (!names.empty()) core::advance_cache_epoch();
  RecoveryReport report;
  for (const auto& name : names) {
    Component& c = components_.at(name);
    report.downtime += c.init_cost;
    ++report.components_restarted;
    c.healthy = true;
  }
  // In-component sessions pinned to a restarted component are destroyed;
  // externalized sessions live in the store and survive.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const bool hit =
        !it->second.externalized &&
        std::find(names.begin(), names.end(), it->second.component) !=
            names.end();
    if (hit) {
      ++report.sessions_lost;
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return report;
}

core::Result<MicrorebootContainer::RecoveryReport>
MicrorebootContainer::microreboot(const std::string& name) {
  if (!components_.contains(name)) {
    return failure(FailureKind::crash, "unknown component " + name);
  }
  std::vector<std::string> names;
  subtree(name, names);
  return restart(names);
}

MicrorebootContainer::RecoveryReport MicrorebootContainer::full_reboot() {
  return restart(order_);
}

core::Result<MicrorebootContainer::RecursiveReport>
MicrorebootContainer::recover(const std::string& observed_at) {
  if (!components_.contains(observed_at)) {
    return failure(FailureKind::crash, "unknown component " + observed_at);
  }
  RecursiveReport total;
  std::string target = observed_at;
  for (;;) {
    auto step = microreboot(target);
    total.downtime += step.value().downtime;
    total.components_restarted += step.value().components_restarted;
    total.sessions_lost += step.value().sessions_lost;
    if (serve(observed_at).has_value()) {
      total.recovered = true;
      return total;
    }
    // Still failing: the fault lives above the subtree we restarted.
    const std::string& parent = components_.at(target).parent;
    if (parent.empty()) {
      // Already restarted a root subtree; the last resort is everything.
      auto full = full_reboot();
      total.downtime += full.downtime;
      total.components_restarted += full.components_restarted;
      total.sessions_lost += full.sessions_lost;
      ++total.escalations;
      total.recovered = serve(observed_at).has_value();
      return total;
    }
    target = parent;
    ++total.escalations;
  }
}

double MicrorebootContainer::total_init_cost() const noexcept {
  double total = 0.0;
  for (const auto& [name, c] : components_) total += c.init_cost;
  return total;
}

}  // namespace redundancy::techniques
