#include "techniques/self_optimizing.hpp"

namespace redundancy::techniques {

SelfOptimizing::SelfOptimizing(std::vector<QosImplementation> implementations,
                               Options options)
    : impls_(std::move(implementations)), options_(options) {}

double SelfOptimizing::window_average_latency() const noexcept {
  if (window_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : window_) sum += v;
  return sum / static_cast<double>(window_.size());
}

core::Result<double> SelfOptimizing::run(double request) {
  if (impls_.empty()) {
    return core::failure(core::FailureKind::unavailable, "no implementations");
  }
  ++requests_;
  const auto [value, latency] = impls_[active_].handler(request);
  if (latency > options_.sla_latency_ms) ++violations_;
  window_.push_back(latency);
  while (window_.size() > options_.window) window_.pop_front();
  if (window_.size() >= options_.warmup &&
      window_average_latency() > options_.sla_latency_ms &&
      impls_.size() > 1) {
    active_ = (active_ + 1) % impls_.size();
    window_.clear();  // judge the new implementation on its own record
    ++switches_;
  }
  return value;
}

}  // namespace redundancy::techniques
