// Automatic workarounds (Carzaniga, Gorla, Pezzè 2008).
//
// Complex components often provide the same functionality through different
// combinations of elementary operations — *intrinsic* redundancy. When an
// operation sequence fails, equivalence rules over the component's API are
// used to generate alternative sequences with the same intended effect;
// candidates are ranked by likelihood of success (fewer rewrites first) and
// executed — after a state rollback — until one passes validation. That
// sequence is the workaround.
//
// Taxonomy: opportunistic / code / reactive explicit / development faults.
// Pattern: intra-component.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"

namespace redundancy::techniques {

/// One API call, e.g. "add(x)" or "clear". Tokens are opaque to the engine;
/// only the rewrite rules give them meaning.
using Action = std::string;
using Sequence = std::vector<Action>;

/// An equivalence over API sequences: `lhs` may be replaced by `rhs`
/// anywhere it occurs. Register both directions for symmetric equivalences.
struct RewriteRule {
  std::string name;
  Sequence lhs;
  Sequence rhs;
};

/// Generate candidate alternatives to `failing`, breadth-first by number of
/// rewrites applied (ties broken by generation order); the original
/// sequence itself is excluded. At most `max_candidates` are returned.
[[nodiscard]] std::vector<Sequence> generate_workarounds(
    const Sequence& failing, const std::vector<RewriteRule>& rules,
    std::size_t max_depth = 3, std::size_t max_candidates = 64);

class AutomaticWorkarounds {
 public:
  struct Options {
    std::size_t max_depth = 3;
    std::size_t max_candidates = 64;
  };

  /// `executor` runs a sequence against the component on a consistent state
  /// (the caller's rollback responsibility) and validates the outcome.
  AutomaticWorkarounds(std::vector<RewriteRule> rules,
                       std::function<core::Status(const Sequence&)> executor,
                       Options options);
  AutomaticWorkarounds(std::vector<RewriteRule> rules,
                       std::function<core::Status(const Sequence&)> executor)
      : AutomaticWorkarounds(std::move(rules), std::move(executor),
                             Options{}) {}

  /// Given a failing sequence, search for a workaround. On success returns
  /// the alternative sequence that executed and validated correctly.
  core::Result<Sequence> heal(const Sequence& failing);

  [[nodiscard]] std::size_t candidates_tried() const noexcept {
    return candidates_tried_;
  }
  [[nodiscard]] std::size_t healed() const noexcept { return healed_; }
  [[nodiscard]] std::size_t unhealed() const noexcept { return unhealed_; }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Automatic workarounds",
        .intention = core::Intention::opportunistic,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::intra_component,
        .summary = "exploits the intrinsic redundancy of software systems "
                   "to find equivalent, non-failing execution sequences",
    };
  }

 private:
  std::vector<RewriteRule> rules_;
  std::function<core::Status(const Sequence&)> executor_;
  Options options_;
  std::size_t candidates_tried_ = 0;
  std::size_t healed_ = 0;
  std::size_t unhealed_ = 0;
};

}  // namespace redundancy::techniques
