#include "techniques/rejuvenation.hpp"

#include <cstdio>

#include "core/cache_epoch.hpp"

namespace redundancy::techniques {

std::string RejuvenationPolicy::describe() const {
  char buf[96];
  switch (kind) {
    case Kind::none:
      return "none";
    case Kind::periodic:
      std::snprintf(buf, sizeof buf, "periodic(every %llu req)",
                    static_cast<unsigned long long>(period));
      return buf;
    case Kind::threshold:
      std::snprintf(buf, sizeof buf, "threshold(age>%.0f%%)",
                    age_threshold * 100.0);
      return buf;
  }
  return "?";
}

RejuvenationRun serve_with_rejuvenation(const env::AgingConfig& aging,
                                        const RejuvenationPolicy& policy,
                                        std::uint64_t requests,
                                        std::uint64_t seed) {
  env::AgingProcess proc{aging, seed};
  RejuvenationRun run;
  std::uint64_t since_rejuvenation = 0;
  for (std::uint64_t i = 0; i < requests; ++i) {
    // Preventive action first: rejuvenate *before* the next request when
    // the policy says the process is due.
    const bool due =
        (policy.kind == RejuvenationPolicy::Kind::periodic &&
         policy.period > 0 && since_rejuvenation >= policy.period) ||
        (policy.kind == RejuvenationPolicy::Kind::threshold &&
         proc.age_fraction() >= policy.age_threshold);
    if (due) {
      proc.reboot();
      // A rejuvenation discards accumulated state; memoized verdicts are
      // part of that state, so every RedundancyCache is invalidated too.
      core::advance_cache_epoch();
      // reboot() charged the full crash-reboot time; planned restarts cost
      // policy.planned_downtime instead.
      run.downtime += policy.planned_downtime;
      run.elapsed += policy.planned_downtime;
      ++run.rejuvenations;
      since_rejuvenation = 0;
    }
    ++run.offered;
    auto status = proc.serve();
    run.elapsed += aging.request_time;
    if (status.has_value()) {
      ++run.served;
      ++since_rejuvenation;
    } else {
      ++run.failed;
      ++run.crashes;
      proc.reboot();
      core::advance_cache_epoch();  // crash-reboot invalidates caches too
      run.downtime += aging.reboot_time;
      run.elapsed += aging.reboot_time;
      since_rejuvenation = 0;
    }
  }
  return run;
}

core::TaxonomyEntry rejuvenation_taxonomy() {
  return {
      .name = "Rejuvenation",
      .intention = core::Intention::deliberate,
      .type = core::RedundancyType::environment,
      .adjudicator = core::AdjudicatorKind::preventive,
      .faults = core::TargetFaults::heisenbugs,
      .pattern = core::ArchitecturalPattern::environment_level,
      .summary = "preventively reboots the system to avoid software aging "
                 "problems",
  };
}

}  // namespace redundancy::techniques
