#include "techniques/robust_data.hpp"

#include "util/rng.hpp"

namespace redundancy::techniques {

std::uint64_t RobustList::expected_id(std::uint64_t seq) const noexcept {
  std::uint64_t s = seq ^ 0x0b0751D5ULL;
  return util::splitmix64(s);
}

void RobustList::push_back(std::int64_t value) {
  std::size_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = pool_.size();
    pool_.emplace_back();
  }
  Node& node = pool_[idx];
  node.seq = next_seq_++;
  node.id = expected_id(node.seq);
  node.value = value;
  node.next = npos;
  node.prev = tail_;
  node.in_use = true;
  if (tail_ != npos) {
    pool_[tail_].next = idx;
  } else {
    head_ = idx;
  }
  tail_ = idx;
  ++count_;
}

core::Result<std::int64_t> RobustList::pop_front() {
  if (head_ == npos || count_ == 0) {
    return core::failure(core::FailureKind::unavailable, "empty list");
  }
  Node& node = pool_[head_];
  const std::int64_t value = node.value;
  const std::size_t next = node.next;
  node.in_use = false;
  free_.push_back(head_);
  head_ = next;
  if (head_ != npos) {
    pool_[head_].prev = npos;
  } else {
    tail_ = npos;
  }
  --count_;
  return value;
}

std::vector<std::int64_t> RobustList::to_vector() const {
  std::vector<std::int64_t> out;
  out.reserve(count_);
  std::size_t cur = head_;
  std::size_t guard = 0;
  while (cur != npos && valid_index(cur) && guard++ <= count_) {
    out.push_back(pool_[cur].value);
    cur = pool_[cur].next;
  }
  return out;
}

std::size_t RobustList::node_at_position(std::size_t pos) const {
  std::size_t cur = head_;
  for (std::size_t i = 0; i < pos && cur != npos && cur < pool_.size(); ++i) {
    cur = pool_[cur].next;
  }
  return cur;
}

void RobustList::corrupt_next(std::size_t pos, std::size_t garbage) {
  const std::size_t idx = node_at_position(pos);
  if (idx != npos && idx < pool_.size()) pool_[idx].next = garbage;
}

void RobustList::corrupt_prev(std::size_t pos, std::size_t garbage) {
  const std::size_t idx = node_at_position(pos);
  if (idx != npos && idx < pool_.size()) pool_[idx].prev = garbage;
}

void RobustList::corrupt_count(std::size_t garbage) { count_ = garbage; }

void RobustList::corrupt_id(std::size_t pos, std::uint64_t garbage) {
  const std::size_t idx = node_at_position(pos);
  if (idx != npos && idx < pool_.size()) pool_[idx].id = garbage;
}

AuditReport RobustList::audit() {
  AuditReport report;
  if (count_ == 0 && head_ == npos) return report;

  // Invariant 1: the head is a valid in-use node with no predecessor. If
  // the head index itself was smashed, recover it from the backward chain.
  if (!valid_index(head_)) {
    ++report.errors_detected;
    std::size_t candidate = npos;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].in_use && pool_[i].prev == npos) {
        candidate = i;
        break;
      }
    }
    if (candidate == npos) {
      report.structurally_sound = false;
      return report;
    }
    head_ = candidate;
    ++report.errors_repaired;
  }

  // Invariant 2: forward walk; each link must be confirmed by the reverse
  // link of the successor (double-link redundancy). A bad forward pointer
  // is reconstructed by searching for the unique node whose prev points
  // back at the current node; a bad backward pointer is overwritten from
  // the (confirmed) forward chain.
  std::size_t cur = head_;
  std::size_t walked = 1;
  ++report.nodes_checked;
  const std::size_t limit = pool_.size() + 1;
  while (walked <= limit) {
    Node& node = pool_[cur];
    const std::size_t nxt = node.next;
    const bool next_ok = nxt != npos && valid_index(nxt);
    if (next_ok && pool_[nxt].prev == cur) {
      cur = nxt;
      ++walked;
      ++report.nodes_checked;
      continue;
    }
    if (nxt == npos) break;  // claims to be the tail; verified below
    // Forward pointer is suspect. Look for the node that claims us as its
    // predecessor — the backward chain is the redundant copy of this link.
    ++report.errors_detected;
    std::size_t claimant = npos;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (i != cur && pool_[i].in_use && pool_[i].prev == cur) {
        claimant = i;
        break;
      }
    }
    if (claimant != npos) {
      node.next = claimant;
      ++report.errors_repaired;
      cur = claimant;
      ++walked;
      ++report.nodes_checked;
      continue;
    }
    if (!next_ok) {
      // No node claims us as predecessor and the forward pointer is dead:
      // under the single-fault assumption this node *is* the tail and its
      // next pointer was the smashed field.
      node.next = npos;
      ++report.errors_repaired;
      break;
    }
    if (next_ok) {
      // Forward pointer reaches a valid node whose prev disagrees: under
      // the single-fault assumption the *backward* pointer is the bad one.
      pool_[nxt].prev = cur;
      ++report.errors_repaired;
      cur = nxt;
      ++walked;
      ++report.nodes_checked;
      continue;
    }
    report.structurally_sound = false;
    return report;
  }
  if (walked > limit) {
    // A cycle: the structure lies beyond single-fault repair.
    ++report.errors_detected;
    report.structurally_sound = false;
    return report;
  }

  // Invariant 3: tail index must match the end of the verified walk.
  if (tail_ != cur) {
    ++report.errors_detected;
    tail_ = cur;
    ++report.errors_repaired;
  }

  // Invariant 4: the redundant count must match the verified walk.
  if (count_ != walked) {
    ++report.errors_detected;
    count_ = walked;
    ++report.errors_repaired;
  }

  // Invariant 5: every node's identifier must match its sequence number
  // (identifier redundancy detects wild stores into the id field and is
  // repaired by recomputation).
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (!pool_[i].in_use) continue;
    if (pool_[i].id != expected_id(pool_[i].seq)) {
      ++report.errors_detected;
      pool_[i].id = expected_id(pool_[i].seq);
      ++report.errors_repaired;
    }
  }
  return report;
}

void SoftwareAudit::watch(std::string name,
                          std::function<AuditReport()> check) {
  checks_.emplace_back(std::move(name), std::move(check));
}

void SoftwareAudit::tick() {
  if (++ticks_ % period_ == 0) (void)run_now();
}

AuditReport SoftwareAudit::run_now() {
  AuditReport round;
  for (auto& [name, check] : checks_) round += check();
  totals_ += round;
  ++runs_;
  return round;
}

}  // namespace redundancy::techniques
