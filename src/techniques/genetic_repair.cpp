#include "techniques/genetic_repair.hpp"

#include <algorithm>

namespace redundancy::techniques {

double fitness(const vm::Program& program, const TestSuite& suite,
               vm::VmConfig cfg) {
  if (suite.empty()) return 1.0;
  std::size_t passed = 0;
  for (const TestCase& test : suite) {
    auto behaviour = vm::execute(program, test.args, cfg);
    if (behaviour.has_value() && behaviour.value().ret == test.expected) {
      ++passed;
    }
  }
  return static_cast<double>(passed) / static_cast<double>(suite.size());
}

vm::Instr GeneticRepair::random_instr() {
  // Draw from the arithmetic/stack/control subset that makes sense for the
  // small pure kernels GP repairs; memory ops are excluded so variants
  // remain hermetic.
  static constexpr vm::Op kOps[] = {
      vm::Op::push, vm::Op::pop,  vm::Op::dup,  vm::Op::swap, vm::Op::over,
      vm::Op::add,  vm::Op::sub,  vm::Op::mul,  vm::Op::divi, vm::Op::mod,
      vm::Op::neg,  vm::Op::eq,   vm::Op::lt,   vm::Op::gt,   vm::Op::land,
      vm::Op::lor,  vm::Op::lnot, vm::Op::arg,  vm::Op::nop,  vm::Op::halt,
  };
  vm::Instr ins;
  ins.op = kOps[rng_.index(std::size(kOps))];
  if (ins.op == vm::Op::push) {
    ins.operand = rng_.between(-4, 8);
  } else if (ins.op == vm::Op::arg) {
    ins.operand = rng_.between(0, 3);
  }
  return ins;
}

vm::Program GeneticRepair::mutate(const vm::Program& parent) {
  vm::Program child = parent;
  child.name = parent.name;
  if (child.code.empty()) {
    child.code.push_back(random_instr());
    return child;
  }
  switch (rng_.below(4)) {
    case 0: {  // point mutation: replace an instruction
      child.code[rng_.index(child.code.size())] = random_instr();
      break;
    }
    case 1: {  // operand tweak
      auto& ins = child.code[rng_.index(child.code.size())];
      if (vm::has_operand(ins.op)) {
        ins.operand += rng_.between(-2, 2);
      } else {
        ins = random_instr();
      }
      break;
    }
    case 2: {  // insertion
      if (child.code.size() < cfg_.max_program_len) {
        const std::size_t at = rng_.index(child.code.size() + 1);
        child.code.insert(child.code.begin() + static_cast<std::ptrdiff_t>(at),
                          random_instr());
      }
      break;
    }
    default: {  // deletion
      if (child.code.size() > 1) {
        const std::size_t at = rng_.index(child.code.size());
        child.code.erase(child.code.begin() + static_cast<std::ptrdiff_t>(at));
      }
      break;
    }
  }
  return child;
}

vm::Program GeneticRepair::crossover(const vm::Program& a,
                                     const vm::Program& b) {
  vm::Program child;
  child.name = a.name;
  const std::size_t cut_a = a.code.empty() ? 0 : rng_.index(a.code.size() + 1);
  const std::size_t cut_b = b.code.empty() ? 0 : rng_.index(b.code.size() + 1);
  child.code.assign(a.code.begin(),
                    a.code.begin() + static_cast<std::ptrdiff_t>(cut_a));
  child.code.insert(child.code.end(),
                    b.code.begin() + static_cast<std::ptrdiff_t>(cut_b),
                    b.code.end());
  if (child.code.size() > cfg_.max_program_len) {
    child.code.resize(cfg_.max_program_len);
  }
  if (child.code.empty()) child.code.push_back(random_instr());
  return child;
}

std::size_t GeneticRepair::tournament_pick(const std::vector<double>& scores) {
  std::size_t best = rng_.index(scores.size());
  for (std::size_t i = 1; i < cfg_.tournament; ++i) {
    const std::size_t challenger = rng_.index(scores.size());
    if (scores[challenger] > scores[best]) best = challenger;
  }
  return best;
}

GeneticRepairOutcome GeneticRepair::repair(const vm::Program& faulty,
                                           const TestSuite& suite) {
  GeneticRepairOutcome outcome;

  std::vector<vm::Program> population;
  population.reserve(cfg_.population);
  population.push_back(faulty);  // the original is a legitimate candidate
  while (population.size() < cfg_.population) {
    population.push_back(mutate(faulty));
  }

  std::vector<double> scores(population.size(), 0.0);
  for (std::size_t g = 0; g < cfg_.max_generations; ++g) {
    outcome.generations = g + 1;
    for (std::size_t i = 0; i < population.size(); ++i) {
      scores[i] = fitness(population[i], suite, cfg_.vm);
      ++outcome.evaluations;
      outcome.best_fitness = std::max(outcome.best_fitness, scores[i]);
      if (scores[i] == 1.0) {
        outcome.repaired = population[i];
        return outcome;
      }
    }
    // Next generation: elites survive, the rest bred by tournament.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(std::min(
                                          cfg_.elitism, order.size())),
                      order.end(), [&scores](std::size_t a, std::size_t b) {
                        return scores[a] > scores[b];
                      });
    std::vector<vm::Program> next;
    next.reserve(population.size());
    for (std::size_t e = 0; e < std::min(cfg_.elitism, order.size()); ++e) {
      next.push_back(population[order[e]]);
    }
    while (next.size() < population.size()) {
      vm::Program child;
      if (rng_.chance(cfg_.crossover_rate)) {
        child = crossover(population[tournament_pick(scores)],
                          population[tournament_pick(scores)]);
      } else {
        child = population[tournament_pick(scores)];
      }
      if (rng_.chance(cfg_.mutation_rate)) child = mutate(child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }
  return outcome;
}

}  // namespace redundancy::techniques
