// Data diversity (Ammann & Knight 1988).
//
// The *same* program is executed on logically equivalent *re-expressions*
// of the input: faults that manifest only on particular input points
// (corner cases) are avoided by sliding off the failure region. Exact
// re-expressions preserve the output (possibly after a recovery transform);
// approximate re-expressions accept outputs within a tolerance.
//
// Two deployment forms, both implemented here:
//  * retry blocks — sequential alternatives over re-expressions, guarded by
//    an acceptance test (explicit adjudicator);
//  * N-copy programming — parallel evaluation of N re-expressed copies with
//    a voter (implicit adjudicator).
//
// Taxonomy: deliberate / data / reactive expl.-impl. / development faults.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/parallel_evaluation.hpp"
#include "core/registry.hpp"
#include "core/sequential_alternatives.hpp"
#include "core/voters.hpp"

namespace redundancy::techniques {

/// One way of re-expressing an input. `express` maps the original input to
/// an equivalent one; `recover` maps the output computed on the re-expressed
/// input back to the original problem's answer (identity when omitted).
template <typename In, typename Out>
struct ReExpression {
  std::string name;
  std::function<In(const In&)> express;
  std::function<Out(const In&, const Out&)> recover;  ///< may be null

  [[nodiscard]] Out recover_output(const In& original, const Out& out) const {
    return recover ? recover(original, out) : out;
  }
};

/// Identity re-expression (always the first alternative in a retry block).
template <typename In, typename Out>
[[nodiscard]] ReExpression<In, Out> identity_reexpression() {
  return {"identity", [](const In& x) { return x; }, nullptr};
}

/// Retry block: run the program on the original input; if the acceptance
/// test rejects (or the program fails), re-express and retry.
template <typename In, typename Out>
class RetryBlock {
 public:
  RetryBlock(std::function<core::Result<Out>(const In&)> program,
             std::vector<ReExpression<In, Out>> reexpressions,
             core::AcceptanceTest<In, Out> acceptance)
      : engine_(wrap(std::move(program), std::move(reexpressions)),
                std::move(acceptance)) {}

  core::Result<Out> run(const In& input) { return engine_.run(input); }

  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return engine_.metrics();
  }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Data diversity",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::data,
        .adjudicator = core::AdjudicatorKind::reactive_hybrid,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::sequential_alternatives,
        .summary = "executes the same code with perturbed (re-expressed) "
                   "input data",
    };
  }

 private:
  static std::vector<core::Variant<In, Out>> wrap(
      std::function<core::Result<Out>(const In&)> program,
      std::vector<ReExpression<In, Out>> reexpressions) {
    std::vector<core::Variant<In, Out>> variants;
    variants.reserve(reexpressions.size());
    for (auto& re : reexpressions) {
      variants.push_back(core::make_variant<In, Out>(
          re.name,
          [program, re](const In& input) -> core::Result<Out> {
            const In expressed = re.express(input);
            auto out = program(expressed);
            if (!out.has_value()) return out;
            return re.recover_output(input, out.value());
          }));
    }
    return variants;
  }

  core::SequentialAlternatives<In, Out> engine_;
};

/// N-copy programming: all re-expressed copies run "in parallel" and an
/// implicit voter adjudicates (majority by default; use an approximate
/// equality for approximate re-expressions).
template <typename In, typename Out>
class NCopyProgramming {
 public:
  NCopyProgramming(std::function<core::Result<Out>(const In&)> program,
                   std::vector<ReExpression<In, Out>> reexpressions,
                   core::Voter<Out> voter = core::majority_voter<Out>(),
                   core::Concurrency mode = core::Concurrency::sequential,
                   core::Adjudication adjudication = core::Adjudication::join_all)
      : engine_(wrap(std::move(program), std::move(reexpressions)),
                std::move(voter), mode, adjudication) {}

  core::Result<Out> run(const In& input) { return engine_.run(input); }

  [[nodiscard]] std::size_t copies() const noexcept { return engine_.width(); }
  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return engine_.metrics();
  }

 private:
  static std::vector<core::Variant<In, Out>> wrap(
      std::function<core::Result<Out>(const In&)> program,
      std::vector<ReExpression<In, Out>> reexpressions) {
    std::vector<core::Variant<In, Out>> variants;
    variants.reserve(reexpressions.size());
    for (auto& re : reexpressions) {
      variants.push_back(core::make_variant<In, Out>(
          re.name,
          [program, re](const In& input) -> core::Result<Out> {
            const In expressed = re.express(input);
            auto out = program(expressed);
            if (!out.has_value()) return out;
            return re.recover_output(input, out.value());
          }));
    }
    return variants;
  }

  core::ParallelEvaluation<In, Out> engine_;
};

}  // namespace redundancy::techniques
