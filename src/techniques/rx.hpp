// Environment perturbation — RX (Qin, Tucek, Zhou, Sundaresan 2007).
//
// "Treating bugs as allergies": when a failure is detected, roll the
// program back to a recent checkpoint and re-execute it under a *changed*
// environment — padded or randomized allocation, shuffled message delivery,
// a different schedule, lower priority, shed load. Unlike plain
// checkpoint-retry (which re-executes under the same conditions and only
// helps when the environment drifts on its own), RX changes the conditions
// deliberately, curing environment-dependent bugs deterministically.
//
// Taxonomy: deliberate / environment / reactive explicit / development
// faults (mainly Heisenbugs, some Bohrbugs and malicious interactions).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "env/checkpoint.hpp"
#include "env/simenv.hpp"

namespace redundancy::techniques {

class RxRecovery {
 public:
  struct Options {
    /// Try each perturbation at most once per failure (RX escalates through
    /// its menu); a second sweep retries compositions.
    std::size_t max_rounds = 0;  ///< 0 = one pass over the whole menu
    /// Restore the original environment once the request completes (RX
    /// keeps cures only for the re-execution window by default).
    bool revert_env_after_success = false;
  };

  /// `env` is the live environment the program reads; `state` the program
  /// state to roll back.
  RxRecovery(env::SimEnv& env, env::Checkpointable& state,
             std::vector<env::Perturbation> menu, Options options);
  RxRecovery(env::SimEnv& env, env::Checkpointable& state)
      : RxRecovery(env, state, env::standard_perturbations(), Options{}) {}
  RxRecovery(env::SimEnv& env, env::Checkpointable& state,
             std::vector<env::Perturbation> menu)
      : RxRecovery(env, state, std::move(menu), Options{}) {}

  /// Run `op` with RX protection: checkpoint, execute, and on failure walk
  /// the perturbation menu — rollback, perturb, re-execute — until the
  /// operation succeeds or the menu is exhausted.
  core::Status execute(const std::function<core::Status()>& op);

  [[nodiscard]] std::size_t recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] std::size_t unrecovered() const noexcept { return unrecovered_; }
  [[nodiscard]] std::size_t rollbacks() const noexcept { return rollbacks_; }
  /// How often each perturbation was the one that cured a failure.
  [[nodiscard]] const std::map<std::string, std::size_t>& cures()
      const noexcept {
    return cures_;
  }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Environment perturbation",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::environment,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::environment_level,
        .summary = "rolls back and re-executes failing programs under "
                   "modified environment conditions",
    };
  }

 private:
  env::SimEnv& env_;
  env::Checkpointable& state_;
  env::CheckpointStore store_;
  std::vector<env::Perturbation> menu_;
  Options options_;
  std::size_t recoveries_ = 0;
  std::size_t unrecovered_ = 0;
  std::size_t rollbacks_ = 0;
  std::map<std::string, std::size_t> cures_;
};

}  // namespace redundancy::techniques
