// Wrappers (Popov et al. 2001; Chang et al. 2009; Salles et al. 1999;
// Fetzer & Xiao 2001).
//
// Deliberately added intra-component code that mediates interactions with a
// component to prevent failures: protocol/precondition protectors for
// incompletely specified COTS components, and "healers" that bound-check
// writes to the heap to prevent buffer-overflow exploits before they
// corrupt memory.
//
// Taxonomy: deliberate / code / preventive / Bohrbugs + malicious.
// Pattern: intra-component.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/registry.hpp"
#include "env/heap_model.hpp"
#include "services/message.hpp"

namespace redundancy::techniques {

/// Fetzer-style heap healer: interposes on every heap write, consulting the
/// sizes remembered at allocation time and refusing (or truncating) writes
/// that would cross a block boundary — the overflow never reaches memory.
class HeapHealer {
 public:
  enum class Policy {
    reject,    ///< refuse the whole write
    truncate,  ///< write only the in-bounds prefix
  };

  explicit HeapHealer(env::HeapModel& heap, Policy policy = Policy::reject)
      : heap_(heap), policy_(policy) {}

  core::Result<env::BlockId> malloc(std::size_t size);
  core::Status free(env::BlockId id);
  /// Boundary-checked write; prevented overflows are counted.
  core::Status write(env::BlockId id, std::size_t offset,
                     std::span<const std::byte> data);

  [[nodiscard]] std::size_t prevented_overflows() const noexcept {
    return prevented_;
  }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Wrappers",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::preventive,
        .faults = core::TargetFaults::bohrbugs_and_malicious,
        .pattern = core::ArchitecturalPattern::intra_component,
        .summary = "intercept component interactions and fix them when "
                   "possible (protocol protectors, heap healers)",
    };
  }

 private:
  env::HeapModel& heap_;
  Policy policy_;
  std::map<env::BlockId, std::size_t> sizes_;  ///< healer's own size table
  std::size_t prevented_ = 0;
};

/// Popov-style protector: guards a COTS component's operations with
/// explicit preconditions; violating calls are rejected (or repaired by a
/// registered fixer) before they reach the component.
class ProtectorWrapper {
 public:
  using Operation =
      std::function<core::Result<services::Message>(const services::Message&)>;
  using Precondition = std::function<bool(const services::Message&)>;
  using Fixer = std::function<services::Message(services::Message)>;

  /// Register an operation of the wrapped component.
  ProtectorWrapper& expose(std::string op, Operation impl);
  /// Attach a precondition to an operation; optional fixer repairs
  /// violating requests instead of rejecting them.
  ProtectorWrapper& require(const std::string& op, Precondition pre,
                            Fixer fixer = nullptr);

  core::Result<services::Message> call(const std::string& op,
                                       const services::Message& request);

  [[nodiscard]] std::size_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::size_t repaired() const noexcept { return repaired_; }

 private:
  struct Guarded {
    Operation impl;
    std::vector<std::pair<Precondition, Fixer>> preconditions;
  };
  std::map<std::string, Guarded, std::less<>> operations_;
  std::size_t rejected_ = 0;
  std::size_t repaired_ = 0;
};

/// Protocol guard (Popov et al., Salles et al.): an incompletely specified
/// COTS component often has an implicit *usage protocol* (open before
/// read, no use after close, ...). The guard models the protocol as an
/// explicit finite state machine and refuses calls issued in the wrong
/// state — turning latent misuse (a Bohrbug waiting to corrupt the
/// component) into an immediate, clean error at the boundary.
class ProtocolGuard {
 public:
  using Operation = ProtectorWrapper::Operation;

  explicit ProtocolGuard(std::string initial_state)
      : initial_(initial_state), state_(std::move(initial_state)) {}

  /// Declare that `operation` is legal in `from` and moves the protocol to
  /// `to`. Operations may be legal in several states.
  ProtocolGuard& allow(const std::string& from, const std::string& operation,
                       const std::string& to);

  /// Check-and-advance: succeeds iff `operation` is legal in the current
  /// state, then performs the transition.
  core::Status fire(const std::string& operation);

  /// Reset the protocol to its initial state (component restart).
  void reset() { state_ = initial_; }

  [[nodiscard]] const std::string& state() const noexcept { return state_; }
  [[nodiscard]] std::size_t violations() const noexcept { return violations_; }

  /// Wrap a component call so it only reaches the component in-protocol.
  [[nodiscard]] Operation guard(std::string operation, Operation inner);

 private:
  std::string initial_;
  std::string state_;
  std::map<std::pair<std::string, std::string>, std::string> transitions_;
  std::size_t violations_ = 0;
};

}  // namespace redundancy::techniques
