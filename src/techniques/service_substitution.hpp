// Dynamic service substitution (Subramanian et al. 2008; Taher et al. 2006;
// Sadjadi & McKinley 2005; Mosincat & Binder 2008).
//
// Opportunistic code redundancy: popular services exist in multiple
// independent implementations behind (nearly) common interfaces. When the
// bound implementation fails, the consumer is transparently rebound to an
// alternative found in the registry — exact interfaces first, then similar
// interfaces behind an automatically derived converter; stateful
// substitutes are brought up to date by session replay. The mechanics live
// in services::DynamicBinding; this facade adds the technique-level
// accounting and taxonomy.
//
// Taxonomy: opportunistic / code / reactive explicit / development faults.
// Pattern: sequential alternatives.
#pragma once

#include <memory>

#include "core/metrics.hpp"
#include "core/registry.hpp"
#include "services/binding.hpp"

namespace redundancy::techniques {

class ServiceSubstitution {
 public:
  ServiceSubstitution(services::Interface iface, services::Registry& registry,
                      services::DynamicBinding::Options options)
      : binding_(std::make_shared<services::DynamicBinding>(
            std::move(iface), registry, options)) {}
  ServiceSubstitution(services::Interface iface, services::Registry& registry)
      : ServiceSubstitution(std::move(iface), registry,
                            services::DynamicBinding::Options{}) {}

  core::Result<services::Message> call(const services::Message& request) {
    ++metrics_.requests;
    const std::size_t before = binding_->rebinds();
    auto out = binding_->call(request);
    ++metrics_.variant_executions;
    if (!out.has_value()) {
      ++metrics_.unrecovered;
      ++metrics_.variant_failures;
    } else if (binding_->rebinds() > before) {
      ++metrics_.recoveries;
    }
    return out;
  }

  [[nodiscard]] const std::shared_ptr<services::DynamicBinding>& binding()
      const noexcept {
    return binding_;
  }
  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return metrics_;
  }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Dynamic service substitution",
        .intention = core::Intention::opportunistic,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::sequential_alternatives,
        .summary = "links to alternative services (adapted via converters "
                   "when interfaces merely resemble) to overcome failures",
    };
  }

 private:
  std::shared_ptr<services::DynamicBinding> binding_;
  core::Metrics metrics_;
};

}  // namespace redundancy::techniques
