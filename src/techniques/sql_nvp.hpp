// N-version programming over diverse SQL servers (Gashi, Popov, Stankovic,
// Strigini — discussed in Section 4.1 of the paper).
//
// "N-version programming is particularly advantageous since the interface
// of an SQL database is well defined, and several independent
// implementations are already available. However, reconciling the output
// and the state of multiple, heterogeneous servers may not be trivial."
//
// ReplicatedSqlServer executes every operation on all replica engines,
// adjudicates the *outputs* with a majority vote, and reconciles *state*
// by comparing the engines' order-insensitive digests: a replica whose
// output or state diverges from the majority is evicted (flagged faulty),
// and the remaining quorum carries on.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "core/metrics.hpp"
#include "core/redundancy_cache.hpp"
#include "core/registry.hpp"
#include "sql/store.hpp"

namespace redundancy::techniques {

class ReplicatedSqlServer final : public sql::SqlStore {
 public:
  struct Options {
    /// Compare state digests after every k mutations (0 = never).
    std::size_t reconcile_every = 8;
    /// Evict replicas that diverge from the majority.
    bool evict_divergent = true;
  };

  ReplicatedSqlServer(std::vector<sql::StorePtr> replicas, Options options);
  explicit ReplicatedSqlServer(std::vector<sql::StorePtr> replicas)
      : ReplicatedSqlServer(std::move(replicas), Options{}) {}

  // SqlStore interface — each call fans out and adjudicates.
  core::Status create_table(const std::string& table,
                            std::vector<std::string> columns) override;
  core::Status insert(const std::string& table, sql::Row row) override;
  core::Result<std::vector<sql::Row>> select(
      const std::string& table,
      const std::optional<sql::Condition>& where) const override;
  core::Result<std::int64_t> update(const std::string& table,
                                    const sql::Condition& where,
                                    const std::string& column,
                                    std::int64_t value) override;
  core::Result<std::int64_t> remove(const std::string& table,
                                    const sql::Condition& where) override;
  core::Result<std::uint64_t> state_digest() const override;
  [[nodiscard]] std::string_view engine() const override {
    return "nvp-replicated";
  }

  /// Compare replica state digests now; evict any minority.
  core::Status reconcile();

  /// Memoize adjudicated select() verdicts keyed by the (table, condition)
  /// digest. Every mutation (insert/update/remove/create_table) and every
  /// reconciliation eviction invalidates the whole cache — adjudicated reads
  /// must never outlive the state they were voted on. Restart epochs
  /// (rejuvenation/microreboot) invalidate as usual.
  void enable_select_cache(core::CacheConfig config = {});
  void disable_select_cache() noexcept { select_cache_.reset(); }
  [[nodiscard]] core::RedundancyCache<std::vector<sql::Row>>* select_cache()
      const noexcept {
    return select_cache_.get();
  }

  [[nodiscard]] std::size_t replicas_in_service() const;
  [[nodiscard]] const std::set<std::size_t>& evicted() const noexcept {
    return evicted_;
  }
  [[nodiscard]] std::size_t divergences_masked() const noexcept {
    return divergences_;
  }
  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return metrics_;
  }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    // The same Table 2 row as classic NVP — this is its service-level
    // incarnation, included for the SQL experiment's bookkeeping.
    return {
        .name = "N-version programming (SQL servers)",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::reactive_implicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::parallel_evaluation,
        .summary = "executes every statement on diverse SQL engines, votes "
                   "on outputs and reconciles state digests",
    };
  }

 private:
  /// Run `op` on every live replica and majority-adjudicate the results.
  template <typename T>
  core::Result<T> adjudicate(
      const std::function<core::Result<T>(sql::SqlStore&)>& op) const;

  void maybe_reconcile();
  void invalidate_select_cache() const noexcept {
    if (select_cache_) select_cache_->invalidate_all();
  }

  std::vector<sql::StorePtr> replicas_;
  mutable std::unique_ptr<core::RedundancyCache<std::vector<sql::Row>>>
      select_cache_;
  Options options_;
  mutable std::set<std::size_t> evicted_;
  mutable std::size_t divergences_ = 0;
  mutable core::Metrics metrics_;
  std::size_t mutations_since_reconcile_ = 0;
};

}  // namespace redundancy::techniques
