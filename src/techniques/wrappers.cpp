#include "techniques/wrappers.hpp"

namespace redundancy::techniques {

core::Result<env::BlockId> HeapHealer::malloc(std::size_t size) {
  auto id = heap_.malloc(size);
  if (id.has_value()) sizes_[id.value()] = size;
  return id;
}

core::Status HeapHealer::free(env::BlockId id) {
  sizes_.erase(id);
  return heap_.free(id);
}

core::Status HeapHealer::write(env::BlockId id, std::size_t offset,
                               std::span<const std::byte> data) {
  auto it = sizes_.find(id);
  if (it == sizes_.end()) {
    return core::failure(core::FailureKind::crash,
                         "healer: write to untracked block");
  }
  const std::size_t cap = it->second;
  if (offset + data.size() <= cap) {
    return heap_.write_raw(id, offset, data);
  }
  ++prevented_;
  if (policy_ == Policy::reject || offset >= cap) {
    return core::failure(core::FailureKind::corrupted_state,
                         "healer: write past block boundary rejected",
                         core::FaultClass::malicious);
  }
  // Truncate: the in-bounds prefix is preserved, the spill is dropped.
  return heap_.write_raw(id, offset, data.first(cap - offset));
}

ProtocolGuard& ProtocolGuard::allow(const std::string& from,
                                    const std::string& operation,
                                    const std::string& to) {
  transitions_[{from, operation}] = to;
  return *this;
}

core::Status ProtocolGuard::fire(const std::string& operation) {
  auto it = transitions_.find({state_, operation});
  if (it == transitions_.end()) {
    ++violations_;
    return core::failure(core::FailureKind::acceptance_failed,
                         "protocol violation: '" + operation +
                             "' is illegal in state '" + state_ + "'");
  }
  state_ = it->second;
  return core::ok_status();
}

ProtocolGuard::Operation ProtocolGuard::guard(std::string operation,
                                              Operation inner) {
  return [this, operation = std::move(operation), inner = std::move(inner)](
             const services::Message& request)
             -> core::Result<services::Message> {
    if (auto gate = fire(operation); !gate.has_value()) {
      return gate.error();
    }
    return inner(request);
  };
}

ProtectorWrapper& ProtectorWrapper::expose(std::string op, Operation impl) {
  operations_[std::move(op)] = Guarded{std::move(impl), {}};
  return *this;
}

ProtectorWrapper& ProtectorWrapper::require(const std::string& op,
                                            Precondition pre, Fixer fixer) {
  auto it = operations_.find(op);
  if (it != operations_.end()) {
    it->second.preconditions.emplace_back(std::move(pre), std::move(fixer));
  }
  return *this;
}

core::Result<services::Message> ProtectorWrapper::call(
    const std::string& op, const services::Message& request) {
  auto it = operations_.find(op);
  if (it == operations_.end()) {
    return core::failure(core::FailureKind::unavailable,
                         "protector: unknown operation " + op);
  }
  services::Message effective = request;
  for (const auto& [pre, fixer] : it->second.preconditions) {
    if (pre(effective)) continue;
    if (fixer) {
      effective = fixer(std::move(effective));
      ++repaired_;
      if (pre(effective)) continue;
    }
    ++rejected_;
    return core::failure(core::FailureKind::acceptance_failed,
                         "protector: precondition violated on " + op);
  }
  return it->second.impl(effective);
}

}  // namespace redundancy::techniques
