// Registers the taxonomy entries of all 17 technique families, in the row
// order of the paper's Table 2. Each entry is the one the implementing
// class declares — the generated Table 2 therefore reflects the code, and
// tests diff it against the published table.
#include "core/registry.hpp"
#include "techniques/checkpoint_recovery.hpp"
#include "techniques/data_diversity.hpp"
#include "techniques/genetic_repair.hpp"
#include "techniques/microreboot.hpp"
#include "techniques/nvariant_data.hpp"
#include "techniques/nvp.hpp"
#include "techniques/process_replicas.hpp"
#include "techniques/recovery_blocks.hpp"
#include "techniques/rejuvenation.hpp"
#include "techniques/robust_data.hpp"
#include "techniques/rule_engine.hpp"
#include "techniques/rx.hpp"
#include "techniques/self_checking.hpp"
#include "techniques/self_optimizing.hpp"
#include "techniques/service_substitution.hpp"
#include "techniques/workarounds.hpp"
#include "techniques/wrappers.hpp"

namespace redundancy::core {

void register_all_techniques() {
  using namespace redundancy::techniques;
  auto& registry = TechniqueRegistry::instance();
  registry.add(NVersionProgramming<int, int>::taxonomy());
  registry.add(RecoveryBlocks<int, int>::taxonomy());
  registry.add(SelfCheckingProgramming<int, int>::taxonomy());
  registry.add(SelfOptimizing::taxonomy());
  registry.add(RuleEngine::taxonomy());
  registry.add(HeapHealer::taxonomy());
  registry.add(RobustList::taxonomy());
  registry.add(RetryBlock<int, int>::taxonomy());
  registry.add(NVariantStore::taxonomy());
  registry.add(rejuvenation_taxonomy());
  registry.add(RxRecovery::taxonomy());
  registry.add(ProcessReplicas::taxonomy());
  registry.add(ServiceSubstitution::taxonomy());
  registry.add(GeneticRepair::taxonomy());
  registry.add(AutomaticWorkarounds::taxonomy());
  registry.add(CheckpointRecovery::taxonomy());
  registry.add(MicrorebootContainer::taxonomy());
}

}  // namespace redundancy::core
