#include "techniques/workarounds.hpp"

#include <set>

namespace redundancy::techniques {
namespace {

/// All single applications of `rule` to `seq`.
void apply_rule_everywhere(const Sequence& seq, const RewriteRule& rule,
                           std::vector<Sequence>& out) {
  if (rule.lhs.empty() || rule.lhs.size() > seq.size()) return;
  for (std::size_t at = 0; at + rule.lhs.size() <= seq.size(); ++at) {
    bool match = true;
    for (std::size_t i = 0; i < rule.lhs.size(); ++i) {
      if (seq[at + i] != rule.lhs[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    Sequence rewritten;
    rewritten.reserve(seq.size() - rule.lhs.size() + rule.rhs.size());
    rewritten.insert(rewritten.end(), seq.begin(),
                     seq.begin() + static_cast<std::ptrdiff_t>(at));
    rewritten.insert(rewritten.end(), rule.rhs.begin(), rule.rhs.end());
    rewritten.insert(
        rewritten.end(),
        seq.begin() + static_cast<std::ptrdiff_t>(at + rule.lhs.size()),
        seq.end());
    out.push_back(std::move(rewritten));
  }
}

}  // namespace

std::vector<Sequence> generate_workarounds(const Sequence& failing,
                                           const std::vector<RewriteRule>& rules,
                                           std::size_t max_depth,
                                           std::size_t max_candidates) {
  std::vector<Sequence> candidates;
  std::set<Sequence> seen;
  seen.insert(failing);
  std::vector<Sequence> frontier{failing};
  for (std::size_t depth = 0; depth < max_depth && !frontier.empty(); ++depth) {
    std::vector<Sequence> next;
    for (const Sequence& seq : frontier) {
      std::vector<Sequence> rewritten;
      for (const RewriteRule& rule : rules) {
        apply_rule_everywhere(seq, rule, rewritten);
      }
      for (Sequence& alt : rewritten) {
        if (!seen.insert(alt).second) continue;
        candidates.push_back(alt);
        if (candidates.size() >= max_candidates) return candidates;
        next.push_back(std::move(alt));
      }
    }
    frontier = std::move(next);
  }
  return candidates;
}

AutomaticWorkarounds::AutomaticWorkarounds(
    std::vector<RewriteRule> rules,
    std::function<core::Status(const Sequence&)> executor, Options options)
    : rules_(std::move(rules)), executor_(std::move(executor)),
      options_(options) {}

core::Result<Sequence> AutomaticWorkarounds::heal(const Sequence& failing) {
  const auto candidates = generate_workarounds(
      failing, rules_, options_.max_depth, options_.max_candidates);
  for (const Sequence& candidate : candidates) {
    ++candidates_tried_;
    if (executor_(candidate).has_value()) {
      ++healed_;
      return candidate;
    }
  }
  ++unhealed_;
  return core::failure(core::FailureKind::no_alternatives,
                       "no workaround among " +
                           std::to_string(candidates.size()) + " candidates");
}

}  // namespace redundancy::techniques
