// Process pairs (Gray 1986, "Why do computers stop and what can be done
// about it?" — reference [16] of the paper, the origin of the Heisenbug
// terminology the taxonomy uses).
//
// A primary process serves requests and periodically ships state
// checkpoints to a hot backup. When the primary fails, the backup takes
// over from the last shipped state and re-executes — and because Heisenbug
// activations re-roll under fresh execution conditions, the takeover
// usually succeeds: "the second processor does not fail the same way".
// Environment redundancy with a reactive, explicit adjudicator (the
// failure detector that triggers takeover).
#pragma once

#include <functional>

#include "core/registry.hpp"
#include "env/checkpoint.hpp"

namespace redundancy::techniques {

class ProcessPair {
 public:
  struct Options {
    /// Ship a checkpoint to the backup every k successful operations.
    std::size_t ship_every = 4;
    /// Takeover attempts per operation (primary, then backup, then the
    /// repaired primary, ...).
    std::size_t max_takeovers = 2;
  };

  /// `state` is the replicated process state; shipping snapshots it, a
  /// takeover restores the last shipped snapshot before re-executing.
  ProcessPair(env::Checkpointable& state, Options options);
  explicit ProcessPair(env::Checkpointable& state)
      : ProcessPair(state, Options{}) {}

  /// Run one operation on the acting process; on failure, fail over to the
  /// peer (restore the shipped state, re-execute).
  core::Status run(const std::function<core::Status()>& op);

  /// Which side is currently acting: 0 = original primary, 1 = backup.
  [[nodiscard]] std::size_t acting() const noexcept { return acting_; }
  [[nodiscard]] std::size_t takeovers() const noexcept { return takeovers_; }
  [[nodiscard]] std::size_t checkpoints_shipped() const noexcept {
    return shipped_;
  }
  [[nodiscard]] std::size_t unrecovered() const noexcept { return unrecovered_; }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    // Gray's mechanism predates the paper's Table 2 but sits squarely in
    // its frame: deliberate environment redundancy against Heisenbugs.
    return {
        .name = "Process pairs",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::environment,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::heisenbugs,
        .pattern = core::ArchitecturalPattern::environment_level,
        .summary = "a hot backup takes over from the last shipped "
                   "checkpoint when the primary fails (Gray's process "
                   "pairs)",
    };
  }

 private:
  env::Checkpointable& state_;
  env::CheckpointStore shipped_store_;
  Options options_;
  std::size_t acting_ = 0;
  std::size_t takeovers_ = 0;
  std::size_t shipped_ = 0;
  std::size_t unrecovered_ = 0;
  std::size_t since_ship_ = 0;
};

}  // namespace redundancy::techniques
