// Robust data structures and software audits (Taylor, Morgan & Black 1980;
// Connet, Pasternak & Wagner 1972).
//
// Deliberate *data* redundancy inside a structure: a doubly linked list
// carries a node count, per-node identifiers, and double links. The
// redundant information makes single corruptions detectable and — under the
// classic single-fault assumption — correctable: a smashed forward pointer
// is reconstructed from the backward chain, a wrong count is re-derived
// from a verified walk. Software audits run such integrity checks
// periodically at runtime.
//
// Taxonomy: deliberate / data / reactive implicit / development faults.
// Pattern: intra-component.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"

namespace redundancy::techniques {

struct AuditReport {
  std::size_t nodes_checked = 0;
  std::size_t errors_detected = 0;
  std::size_t errors_repaired = 0;
  bool structurally_sound = true;  ///< false if unrepairable damage remains

  AuditReport& operator+=(const AuditReport& other) {
    nodes_checked += other.nodes_checked;
    errors_detected += other.errors_detected;
    errors_repaired += other.errors_repaired;
    structurally_sound = structurally_sound && other.structurally_sound;
    return *this;
  }
};

/// Taylor-style robust doubly linked list over a node pool (indices, not
/// raw pointers, so corruption is injectable and survivable).
class RobustList {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void push_back(std::int64_t value);
  core::Result<std::int64_t> pop_front();
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::vector<std::int64_t> to_vector() const;

  /// Verify all redundant invariants and repair what the redundancy allows.
  AuditReport audit();

  // --- corruption injection (simulated wild stores) ----------------------
  /// Overwrite the forward pointer of the node at list position `pos`.
  void corrupt_next(std::size_t pos, std::size_t garbage);
  /// Overwrite the backward pointer of the node at list position `pos`.
  void corrupt_prev(std::size_t pos, std::size_t garbage);
  /// Overwrite the redundant element count.
  void corrupt_count(std::size_t garbage);
  /// Overwrite a node's identifier field.
  void corrupt_id(std::size_t pos, std::uint64_t garbage);

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Robust data structures, audits",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::data,
        .adjudicator = core::AdjudicatorKind::reactive_implicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::intra_component,
        .summary = "augment data structures with counts, identifiers and "
                   "redundant links; integrity checks detect and correct "
                   "faulty references",
    };
  }

 private:
  struct Node {
    std::uint64_t seq = 0; ///< insertion sequence number
    std::uint64_t id = 0;  ///< redundant identifier (seq-derived)
    std::int64_t value = 0;
    std::size_t next = npos;
    std::size_t prev = npos;
    bool in_use = false;
  };

  [[nodiscard]] bool valid_index(std::size_t i) const noexcept {
    return i < pool_.size() && pool_[i].in_use;
  }
  [[nodiscard]] std::uint64_t expected_id(std::uint64_t seq) const noexcept;
  [[nodiscard]] std::size_t node_at_position(std::size_t pos) const;

  std::vector<Node> pool_;
  std::vector<std::size_t> free_;
  std::size_t head_ = npos;
  std::size_t tail_ = npos;
  std::size_t count_ = 0;
  std::uint64_t next_seq_ = 1;
};

/// Software audits: a scheduler of integrity checks over registered
/// structures, run every `period` logical ticks.
class SoftwareAudit {
 public:
  explicit SoftwareAudit(std::size_t period = 16) : period_(period) {}

  void watch(std::string name, std::function<AuditReport()> check);
  /// Advance one tick; runs all checks when the period elapses.
  void tick();
  /// Run all checks immediately.
  AuditReport run_now();

  [[nodiscard]] const AuditReport& totals() const noexcept { return totals_; }
  [[nodiscard]] std::size_t runs() const noexcept { return runs_; }

 private:
  std::size_t period_;
  std::size_t ticks_ = 0;
  std::size_t runs_ = 0;
  AuditReport totals_;
  std::vector<std::pair<std::string, std::function<AuditReport()>>> checks_;
};

}  // namespace redundancy::techniques
