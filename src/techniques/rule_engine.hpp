// Exception handling and rule engines / registries (Baresi et al. 2007;
// Modafferi et al. 2006).
//
// Developers fill a registry at design time with (failure signature →
// recovery action) rules; at runtime, failures detected on a protected
// operation look up the registry and execute the matching recovery action —
// exception handling generalized into a first-class, inspectable table.
//
// Taxonomy: deliberate / code / reactive explicit / development faults.
// Pattern: sequential alternatives.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"
#include "services/service.hpp"

namespace redundancy::techniques {

/// A recovery action: given the original request that failed, produce a
/// substitute response (or fail in turn).
using RecoveryAction =
    std::function<core::Result<services::Message>(const services::Message&)>;

class RuleEngine {
 public:
  struct Rule {
    std::string operation;        ///< "*" matches any operation
    core::FailureKind on;         ///< failure kind the rule reacts to
    std::string name;
    RecoveryAction action;
  };

  RuleEngine& add_rule(Rule rule);

  /// Find and run the first matching rule; Result is the recovery outcome,
  /// or the original failure when no rule matches.
  core::Result<services::Message> handle(
      const std::string& operation, const core::Failure& failure,
      const services::Message& request);

  /// Wrap a handler so that its failures are routed through the registry.
  [[nodiscard]] services::Handler protect(std::string operation,
                                          services::Handler inner);

  [[nodiscard]] std::size_t rules() const noexcept { return rules_.size(); }
  [[nodiscard]] std::size_t activations() const noexcept { return activations_; }
  [[nodiscard]] std::size_t recoveries() const noexcept { return recoveries_; }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Exception handling, rule engines",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::sequential_alternatives,
        .summary = "failure handlers coded at design time are activated "
                   "through registries when matching failures occur",
    };
  }

 private:
  std::vector<Rule> rules_;
  std::size_t activations_ = 0;
  std::size_t recoveries_ = 0;
};

}  // namespace redundancy::techniques
