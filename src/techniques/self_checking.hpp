// Self-checking programming (Laprie et al. 1990; Yau & Cheung 1975).
//
// Each functionality is implemented by at least two self-checking
// components executing in parallel: an *acting* component whose result is
// used, and *hot spares* whose results stand ready. A self-checking
// component is either (a) an implementation plus a built-in acceptance
// test — an explicit adjudicator — or (b) a pair of implementations with a
// final comparison — an implicit adjudicator. A failed acting component is
// discarded and replaced by its spare; no rollback is ever needed, but the
// deployed redundancy is progressively consumed.
//
// Taxonomy: deliberate / code / reactive expl./impl. / development faults.
// Pattern: parallel selection (Figure 1b).
#pragma once

#include <vector>

#include "core/parallel_selection.hpp"
#include "core/registry.hpp"

namespace redundancy::techniques {

template <typename In, typename Out>
class SelfCheckingProgramming {
 public:
  using Component = typename core::ParallelSelection<In, Out>::Checked;

  /// Build a self-checking component of form (a): implementation + built-in
  /// acceptance test.
  static Component checked(core::Variant<In, Out> impl,
                           core::AcceptanceTest<In, Out> test) {
    return Component{std::move(impl), std::move(test)};
  }

  /// Build a self-checking component of form (b): a pair of independent
  /// implementations compared against each other — the comparison *is* the
  /// adjudicator, so no application-specific test is needed.
  static Component compared(core::Variant<In, Out> first,
                            core::Variant<In, Out> second) {
    auto pair_fn = [first, second](const In& input) -> core::Result<Out> {
      auto a = first(input);
      auto b = second(input);
      if (!a.has_value()) return a;
      if (!b.has_value()) return b;
      if (!(a.value() == b.value())) {
        return core::failure(core::FailureKind::wrong_output,
                             "internal comparison mismatch in " + first.name);
      }
      return a;
    };
    core::Variant<In, Out> fused = core::make_variant<In, Out>(
        first.name + "||" + second.name, std::move(pair_fn),
        first.cost + second.cost);
    return Component{std::move(fused), core::accept_all<In, Out>()};
  }

  /// With Concurrency::threaded the components fan out on the shared pool
  /// and the first passing result to arrive wins (components must be
  /// thread-safe); sequential keeps the acting/spare priority order.
  explicit SelfCheckingProgramming(
      std::vector<Component> components,
      core::Concurrency mode = core::Concurrency::sequential)
      : engine_(std::move(components),
                typename core::ParallelSelection<In, Out>::Options{
                    .disable_on_failure = true,
                    .lazy = false,
                    .concurrency = mode}) {
    engine_.set_obs_label("self_checking");
  }

  core::Result<Out> run(const In& input) { return engine_.run(input); }

  /// Identity of the component currently acting.
  [[nodiscard]] std::size_t acting() const noexcept { return engine_.acting(); }
  /// Spares (plus acting) still in service.
  [[nodiscard]] std::size_t in_service() const noexcept {
    return engine_.alive();
  }
  void redeploy_all() noexcept { engine_.reinstate_all(); }

  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return engine_.metrics();
  }
  void reset_metrics() noexcept { engine_.reset_metrics(); }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Self-checking programming",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::reactive_hybrid,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::parallel_selection,
        .summary = "parallelizes the execution of recovery blocks: acting "
                   "components are replaced by hot spares on failure",
    };
  }

 private:
  core::ParallelSelection<In, Out> engine_;
};

}  // namespace redundancy::techniques
