#include "techniques/process_replicas.hpp"

#include <optional>

#include "util/thread_pool.hpp"

namespace redundancy::techniques {

ProcessReplicas::ProcessReplicas(
    const vm::Program& program, Options options,
    std::function<void(vm::Vm&, std::size_t)> plant)
    : program_(program), options_(options), plant_(std::move(plant)) {
  if (options_.partition_addresses) {
    partitions_ =
        vm::partition_address_space(options_.memory_words, options_.replicas);
  } else {
    // Without partitioning every replica sees the same layout at base 0.
    partitions_.assign(options_.replicas,
                       vm::Partition{0, options_.memory_words});
  }
  for (std::size_t r = 0; r < options_.replicas; ++r) {
    vm::VmConfig cfg;
    cfg.memory_words = options_.memory_words;
    cfg.max_steps = options_.max_steps;
    cfg.enforce_tags = options_.tag_instructions;
    cfg.expected_tag = tag_for(r);
    if (options_.partition_addresses) {
      cfg.region_base = partitions_[r].base;
      cfg.region_words = partitions_[r].words;
    }
    vms_.push_back(std::make_unique<vm::Vm>(cfg));
  }
  reset();
}

void ProcessReplicas::reset() {
  for (std::size_t r = 0; r < vms_.size(); ++r) {
    vms_[r]->reset();
    vms_[r]->load(program_, partitions_[r].base, tag_for(r));
    if (plant_) plant_(*vms_[r], partitions_[r].base);
  }
}

core::Result<vm::Behaviour> ProcessReplicas::serve(
    const std::vector<std::int64_t>& request) {
  ++requests_;
  std::vector<core::Ballot<vm::Behaviour>> ballots;
  ballots.reserve(vms_.size());
  if (options_.concurrency == core::Concurrency::threaded) {
    // Replicas are disjoint VMs, so each can run on its own worker; the
    // barrier below keeps the comparison over the complete behaviour set.
    std::vector<std::optional<core::Ballot<vm::Behaviour>>> slots(vms_.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(vms_.size());
    for (std::size_t r = 0; r < vms_.size(); ++r) {
      tasks.push_back([this, r, &slots, &request] {
        slots[r].emplace(core::Ballot<vm::Behaviour>{
            r, "replica-" + std::to_string(r),
            vms_[r]->run(partitions_[r].base, request)});
      });
    }
    util::ThreadPool::shared().run_all(std::move(tasks));
    for (auto& slot : slots) ballots.push_back(std::move(*slot));
  } else {
    for (std::size_t r = 0; r < vms_.size(); ++r) {
      auto behaviour = vms_[r]->run(partitions_[r].base, request);
      ballots.push_back(
          {r, "replica-" + std::to_string(r), std::move(behaviour)});
    }
  }
  auto verdict = core::unanimity_voter<vm::Behaviour>()(ballots);
  if (!verdict.has_value() &&
      verdict.error().kind == core::FailureKind::detected_attack) {
    ++detections_;
  }
  return verdict;
}

}  // namespace redundancy::techniques
