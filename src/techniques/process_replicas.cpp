#include "techniques/process_replicas.hpp"

#include <optional>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace redundancy::techniques {

ProcessReplicas::ProcessReplicas(
    const vm::Program& program, Options options,
    std::function<void(vm::Vm&, std::size_t)> plant)
    : program_(program), options_(options), plant_(std::move(plant)) {
  if (options_.partition_addresses) {
    partitions_ =
        vm::partition_address_space(options_.memory_words, options_.replicas);
  } else {
    // Without partitioning every replica sees the same layout at base 0.
    partitions_.assign(options_.replicas,
                       vm::Partition{0, options_.memory_words});
  }
  for (std::size_t r = 0; r < options_.replicas; ++r) {
    vm::VmConfig cfg;
    cfg.memory_words = options_.memory_words;
    cfg.max_steps = options_.max_steps;
    cfg.enforce_tags = options_.tag_instructions;
    cfg.expected_tag = tag_for(r);
    if (options_.partition_addresses) {
      cfg.region_base = partitions_[r].base;
      cfg.region_words = partitions_[r].words;
    }
    vms_.push_back(std::make_unique<vm::Vm>(cfg));
  }
  reset();
}

void ProcessReplicas::reset() {
  for (std::size_t r = 0; r < vms_.size(); ++r) {
    vms_[r]->reset();
    vms_[r]->load(program_, partitions_[r].base, tag_for(r));
    if (plant_) plant_(*vms_[r], partitions_[r].base);
  }
}

core::Result<vm::Behaviour> ProcessReplicas::serve(
    const std::vector<std::int64_t>& request) {
  ++requests_;
  obs::ScopedSpan span{"process_replicas.serve"};
  const obs::SpanContext ctx = span.context();
  const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  std::vector<core::Ballot<vm::Behaviour>> ballots;
  ballots.reserve(vms_.size());
  if (options_.concurrency == core::Concurrency::threaded) {
    // Replicas are disjoint VMs, so each can run on its own worker; the
    // barrier below keeps the comparison over the complete behaviour set.
    std::vector<std::optional<core::Ballot<vm::Behaviour>>> slots(vms_.size());
    util::BatchRunner batch;
    for (std::size_t r = 0; r < vms_.size(); ++r) {
      batch.add([this, r, &slots, &request, ctx] {
        obs::ScopedSpan rspan{"replica", ctx};
        rspan.set_detail("replica-" + std::to_string(r));
        slots[r].emplace(core::Ballot<vm::Behaviour>{
            r, "replica-" + std::to_string(r),
            vms_[r]->run(partitions_[r].base, request)});
        rspan.set_ok(slots[r]->result.has_value());
      });
    }
    batch.run_and_wait();
    for (auto& slot : slots) ballots.push_back(std::move(*slot));
  } else {
    for (std::size_t r = 0; r < vms_.size(); ++r) {
      obs::ScopedSpan rspan{"replica", ctx};
      rspan.set_detail("replica-" + std::to_string(r));
      auto behaviour = vms_[r]->run(partitions_[r].base, request);
      rspan.set_ok(behaviour.has_value());
      ballots.push_back(
          {r, "replica-" + std::to_string(r), std::move(behaviour)});
    }
  }
  auto verdict = core::unanimity_voter<vm::Behaviour>()(ballots);
  const bool attack = !verdict.has_value() &&
                      verdict.error().kind == core::FailureKind::detected_attack;
  if (attack) ++detections_;
  if (ctx.active()) {
    obs::AdjudicationEvent event;
    event.technique = "process_replicas";
    event.electorate = ballots.size();
    event.ballots_seen = ballots.size();
    for (const auto& b : ballots) {
      if (!b.result.has_value()) ++event.ballots_failed;
    }
    event.accepted = verdict.has_value();
    event.verdict = verdict.has_value()
                        ? "ok"
                        : (attack ? "divergence: " + verdict.error().describe()
                                  : verdict.error().describe());
    obs::record_adjudication(ctx, std::move(event));
  }
  if (t0 != 0) {
    static obs::Histogram& latency =
        obs::histogram("technique.request_ns", "process_replicas");
    static obs::Counter& served =
        obs::counter("technique.requests", "process_replicas");
    static obs::Counter& detected =
        obs::counter("technique.detections", "process_replicas");
    latency.record(obs::now_ns() - t0);
    served.add();
    if (attack) detected.add();
  }
  span.set_ok(verdict.has_value());
  return verdict;
}

}  // namespace redundancy::techniques
