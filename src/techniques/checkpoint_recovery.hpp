// Checkpoint-recovery (Elnozahy, Alvisi, Wang, Johnson 2002).
//
// Opportunistic environment redundancy: consistent states are saved
// periodically; when the system fails, it is rolled back to the latest
// checkpoint and re-executed *without* changing anything — relying on the
// environment's spontaneous nondeterminism to steer the retry away from the
// failure. Effective against Heisenbugs (transient conditions re-roll on
// retry); powerless against Bohrbugs (the same input deterministically
// fails again).
//
// Taxonomy: opportunistic / environment / reactive explicit / Heisenbugs.
#pragma once

#include <functional>

#include "core/registry.hpp"
#include "env/checkpoint.hpp"

namespace redundancy::techniques {

class CheckpointRecovery {
 public:
  struct Options {
    std::size_t checkpoint_every = 8;  ///< operations between checkpoints
    std::size_t max_retries = 4;       ///< re-executions after rollback
    std::size_t retained = 4;          ///< checkpoints kept in the store
  };

  CheckpointRecovery(env::Checkpointable& subject, Options options);
  explicit CheckpointRecovery(env::Checkpointable& subject)
      : CheckpointRecovery(subject, Options{}) {}

  /// Run one operation under protection: on failure, roll back to the
  /// latest checkpoint and re-execute up to max_retries times. Checkpoints
  /// are taken every `checkpoint_every` successful operations.
  core::Status run(const std::function<core::Status()>& op);

  /// Force a checkpoint now.
  void checkpoint();

  [[nodiscard]] std::size_t checkpoints_taken() const noexcept {
    return checkpoints_;
  }
  [[nodiscard]] std::size_t rollbacks() const noexcept { return rollbacks_; }
  [[nodiscard]] std::size_t recoveries() const noexcept { return recoveries_; }
  [[nodiscard]] std::size_t unrecovered() const noexcept { return unrecovered_; }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Checkpoint-recovery",
        .intention = core::Intention::opportunistic,
        .type = core::RedundancyType::environment,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::heisenbugs,
        .pattern = core::ArchitecturalPattern::environment_level,
        .summary = "rebuilds a consistent state from periodic checkpoints "
                   "and re-executes the program",
    };
  }

 private:
  env::Checkpointable& subject_;
  env::CheckpointStore store_;
  Options options_;
  std::size_t since_checkpoint_ = 0;
  std::size_t checkpoints_ = 0;
  std::size_t rollbacks_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t unrecovered_ = 0;
};

}  // namespace redundancy::techniques
