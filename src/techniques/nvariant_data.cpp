#include "techniques/nvariant_data.hpp"

namespace redundancy::techniques {

NVariantStore::NVariantStore(std::size_t cells, std::size_t variants,
                             std::uint64_t seed)
    : cells_(cells) {
  util::Rng rng{seed};
  masks_.reserve(variants);
  for (std::size_t v = 0; v < variants; ++v) {
    // Variant 0 keeps the natural interpretation so that single-variant
    // deployments degrade to plain storage; others get secret masks.
    masks_.push_back(v == 0 ? 0 : rng());
  }
  store_.assign(variants, std::vector<std::int64_t>(cells, 0));
  for (std::size_t v = 0; v < variants; ++v) {
    for (std::size_t c = 0; c < cells; ++c) store_[v][c] = encode(v, 0);
  }
}

std::int64_t NVariantStore::encode(std::size_t v, std::int64_t value) const {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(value) ^
                                   masks_[v]);
}

std::int64_t NVariantStore::decode(std::size_t v, std::int64_t raw) const {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(raw) ^ masks_[v]);
}

core::Status NVariantStore::write(std::size_t cell, std::int64_t value) {
  if (cell >= cells_) {
    return core::failure(core::FailureKind::crash, "cell out of range");
  }
  for (std::size_t v = 0; v < store_.size(); ++v) {
    store_[v][cell] = encode(v, value);
  }
  return core::ok_status();
}

core::Result<std::int64_t> NVariantStore::read(std::size_t cell) const {
  if (cell >= cells_) {
    return core::failure(core::FailureKind::crash, "cell out of range");
  }
  const std::int64_t first = decode(0, store_[0][cell]);
  for (std::size_t v = 1; v < store_.size(); ++v) {
    if (decode(v, store_[v][cell]) != first) {
      ++detections_;
      return core::failure(core::FailureKind::detected_attack,
                           "variant interpretations disagree",
                           core::FaultClass::malicious);
    }
  }
  return first;
}

void NVariantStore::smash_all_variants(std::size_t cell, std::int64_t raw) {
  if (cell >= cells_) return;
  for (auto& variant : store_) variant[cell] = raw;
}

void NVariantStore::smash_one_variant(std::size_t cell, std::size_t v,
                                      std::int64_t raw) {
  if (cell >= cells_ || v >= store_.size()) return;
  store_[v][cell] = raw;
}

}  // namespace redundancy::techniques
