// Reboot and micro-reboot (Candea et al., JAGR 2003; Zhang 2007).
//
// The brute-force cure refined: instead of restarting the whole system, a
// carefully modularized application restarts only the failed component and
// its dependents. Recovery time shrinks from the sum of all component
// initialization costs to that of a small subtree, and session state
// survives if it was externalized into a session store that reboots do not
// touch. Requires reboot-safe modular design — which this container models
// explicitly.
//
// Taxonomy: opportunistic / environment / reactive explicit / Heisenbugs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/result.hpp"

namespace redundancy::techniques {

class MicrorebootContainer {
 public:
  /// Register a component; `parent` empty = a root. `init_cost` is the time
  /// to bring the component back up after a (re)boot.
  core::Status add_component(const std::string& name, double init_cost,
                             const std::string& parent = "");

  /// Open a session pinned to a component. Externalized sessions live in
  /// the container's session store and survive reboots of the component;
  /// in-component sessions are lost when it restarts.
  std::uint64_t open_session(const std::string& component, bool externalized);
  [[nodiscard]] std::size_t active_sessions() const noexcept {
    return sessions_.size();
  }

  /// Inject a failure: the component stops serving until rebooted.
  core::Status fail(const std::string& name);
  [[nodiscard]] bool healthy(const std::string& name) const;

  /// Serve a request against a component: requires the component and all
  /// its ancestors to be healthy.
  core::Status serve(const std::string& name);

  struct RecoveryReport {
    double downtime = 0.0;              ///< sum of init costs restarted
    std::size_t components_restarted = 0;
    std::size_t sessions_lost = 0;      ///< in-component sessions destroyed
  };

  /// Restart only the failed component and its dependent subtree.
  core::Result<RecoveryReport> microreboot(const std::string& name);
  /// Restart everything (classic full reboot).
  RecoveryReport full_reboot();

  /// Candea's *recursive* recovery: micro-reboot the component where the
  /// failure was observed; if the observation point still fails (the real
  /// fault sits higher in the tree), escalate to its parent's subtree, and
  /// so on up to a full reboot. Returns the cumulative report.
  struct RecursiveReport : RecoveryReport {
    std::size_t escalations = 0;   ///< how many levels were climbed
    bool recovered = false;        ///< observation point serves again
  };
  core::Result<RecursiveReport> recover(const std::string& observed_at);

  [[nodiscard]] std::size_t components() const noexcept { return order_.size(); }
  [[nodiscard]] double total_init_cost() const noexcept;

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Reboot and micro-reboot",
        .intention = core::Intention::opportunistic,
        .type = core::RedundancyType::environment,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::heisenbugs,
        .pattern = core::ArchitecturalPattern::environment_level,
        .summary = "restarts the system — or just the failed component "
                   "subtree — to recover from transient failures",
    };
  }

 private:
  struct Component {
    double init_cost = 0.0;
    std::string parent;
    std::vector<std::string> children;
    bool healthy = true;
  };
  struct Session {
    std::string component;
    bool externalized = false;
  };

  /// Collect `name` and its transitive dependents.
  void subtree(const std::string& name, std::vector<std::string>& out) const;
  RecoveryReport restart(const std::vector<std::string>& names);

  std::map<std::string, Component, std::less<>> components_;
  std::vector<std::string> order_;  ///< registration order (boot order)
  std::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_ = 1;
};

}  // namespace redundancy::techniques
