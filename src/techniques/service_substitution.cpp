#include "techniques/service_substitution.hpp"

// ServiceSubstitution is a thin header-only facade over
// services::DynamicBinding; this translation unit anchors the header in the
// build so its declarations are compiled exactly once with full warnings.

namespace redundancy::techniques {}
