#include "techniques/sql_nvp.hpp"

#include "core/voters.hpp"
#include "obs/obs.hpp"
#include "util/checksum.hpp"

namespace redundancy::techniques {

namespace {

/// Digest of a select statement: table plus the (presence, column, op,
/// value) of the condition, length-prefixed so keys are unambiguous.
std::uint64_t select_key(const std::string& table,
                         const std::optional<sql::Condition>& where) {
  util::Digest64 d;
  d.update(table);
  d.update(where.has_value());
  if (where.has_value()) {
    d.update(where->column);
    d.update(where->op);
    d.update(where->value);
  }
  return d.value();
}

}  // namespace

ReplicatedSqlServer::ReplicatedSqlServer(std::vector<sql::StorePtr> replicas,
                                         Options options)
    : replicas_(std::move(replicas)), options_(options) {}

std::size_t ReplicatedSqlServer::replicas_in_service() const {
  return replicas_.size() - evicted_.size();
}

template <typename T>
core::Result<T> ReplicatedSqlServer::adjudicate(
    const std::function<core::Result<T>(sql::SqlStore&)>& op) const {
  ++metrics_.requests;
  obs::ScopedSpan span{"sql_nvp.op"};
  const obs::SpanContext ctx = span.context();
  const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
  std::vector<core::Ballot<T>> ballots;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (evicted_.contains(i)) continue;
    ++metrics_.variant_executions;
    obs::ScopedSpan rspan{"replica", ctx};
    rspan.set_detail(std::string{replicas_[i]->engine()});
    auto out = op(*replicas_[i]);
    rspan.set_ok(out.has_value());
    if (!out.has_value()) ++metrics_.variant_failures;
    ballots.push_back({i, std::string{replicas_[i]->engine()}, std::move(out)});
  }
  const auto finish = [&](bool ok) {
    if (t0 != 0) {
      static obs::Histogram& latency =
          obs::histogram("technique.request_ns", "sql_nvp");
      static obs::Counter& requests =
          obs::counter("technique.requests", "sql_nvp");
      latency.record(obs::now_ns() - t0);
      requests.add();
    }
    span.set_ok(ok);
  };
  if (ballots.empty()) {
    ++metrics_.unrecovered;
    finish(false);
    return core::failure(core::FailureKind::no_alternatives,
                         "every replica evicted");
  }
  ++metrics_.adjudications;
  // Failures are legitimate, comparable outcomes for a database (e.g. a
  // duplicate-key error must be reported by every correct engine), so the
  // vote runs over (has_value, value-or-kind) tuples rather than treating
  // failures as abstentions.
  struct Outcome {
    bool ok;
    T value{};
    core::FailureKind kind{};
    bool operator==(const Outcome& other) const {
      if (ok != other.ok) return false;
      return ok ? value == other.value : kind == other.kind;
    }
  };
  std::vector<core::Ballot<Outcome>> wrapped;
  wrapped.reserve(ballots.size());
  for (auto& b : ballots) {
    Outcome o;
    if (b.result.has_value()) {
      o = Outcome{true, std::move(b.result).take(), {}};
    } else {
      o = Outcome{false, T{}, b.result.error().kind};
    }
    wrapped.push_back({b.variant_index, b.variant_name, std::move(o)});
  }
  auto verdict = core::majority_voter<Outcome>()(wrapped);
  if (ctx.active()) {
    obs::AdjudicationEvent event;
    event.technique = "sql_nvp";
    event.electorate = replicas_.size();
    event.ballots_seen = wrapped.size();
    for (const auto& b : wrapped) {
      if (!b.result.value().ok) ++event.ballots_failed;
    }
    event.accepted = verdict.has_value();
    event.verdict =
        verdict.has_value() ? "ok" : "replica outputs have no majority";
    obs::record_adjudication(ctx, std::move(event));
  }
  if (!verdict.has_value()) {
    ++metrics_.unrecovered;
    finish(false);
    return core::failure(core::FailureKind::adjudication_failed,
                         "replica outputs have no majority");
  }
  // Flag and (optionally) evict replicas that disagreed with the verdict.
  for (const auto& b : wrapped) {
    if (b.result.value() == verdict.value()) continue;
    ++divergences_;
    ++metrics_.recoveries;
    if (obs::enabled()) {
      static obs::Counter& diverged =
          obs::counter("technique.divergences", "sql_nvp");
      diverged.add();
    }
    if (options_.evict_divergent) {
      evicted_.insert(b.variant_index);
      ++metrics_.disabled_components;
      // The electorate changed; verdicts voted by the old quorum are stale.
      invalidate_select_cache();
    }
  }
  const Outcome& out = verdict.value();
  finish(out.ok);
  if (!out.ok) return core::failure(out.kind, "replicated verdict: failure");
  return out.value;
}

void ReplicatedSqlServer::maybe_reconcile() {
  if (options_.reconcile_every == 0) return;
  if (++mutations_since_reconcile_ >= options_.reconcile_every) {
    mutations_since_reconcile_ = 0;
    (void)reconcile();
  }
}

core::Status ReplicatedSqlServer::reconcile() {
  auto digest = adjudicate<std::uint64_t>(
      [](sql::SqlStore& s) { return s.state_digest(); });
  if (!digest.has_value()) {
    return core::failure(digest.error().kind, "state reconciliation failed");
  }
  return core::ok_status();
}

core::Status ReplicatedSqlServer::create_table(
    const std::string& table, std::vector<std::string> columns) {
  auto out = adjudicate<core::Unit>([&](sql::SqlStore& s) {
    return s.create_table(table, columns);
  });
  invalidate_select_cache();
  maybe_reconcile();
  return out;
}

core::Status ReplicatedSqlServer::insert(const std::string& table,
                                         sql::Row row) {
  auto out = adjudicate<core::Unit>(
      [&](sql::SqlStore& s) { return s.insert(table, row); });
  invalidate_select_cache();
  maybe_reconcile();
  return out;
}

core::Result<std::vector<sql::Row>> ReplicatedSqlServer::select(
    const std::string& table,
    const std::optional<sql::Condition>& where) const {
  if (select_cache_) {
    return select_cache_->get_or_run(select_key(table, where), [&] {
      return adjudicate<std::vector<sql::Row>>(
          [&](sql::SqlStore& s) { return s.select(table, where); });
    });
  }
  return adjudicate<std::vector<sql::Row>>(
      [&](sql::SqlStore& s) { return s.select(table, where); });
}

void ReplicatedSqlServer::enable_select_cache(core::CacheConfig config) {
  if (config.label.empty() || config.label == "cache") {
    config.label = "sql_nvp";
  }
  select_cache_ =
      std::make_unique<core::RedundancyCache<std::vector<sql::Row>>>(
          std::move(config));
}

core::Result<std::int64_t> ReplicatedSqlServer::update(
    const std::string& table, const sql::Condition& where,
    const std::string& column, std::int64_t value) {
  auto out = adjudicate<std::int64_t>([&](sql::SqlStore& s) {
    return s.update(table, where, column, value);
  });
  invalidate_select_cache();
  maybe_reconcile();
  return out;
}

core::Result<std::int64_t> ReplicatedSqlServer::remove(
    const std::string& table, const sql::Condition& where) {
  auto out = adjudicate<std::int64_t>(
      [&](sql::SqlStore& s) { return s.remove(table, where); });
  invalidate_select_cache();
  maybe_reconcile();
  return out;
}

core::Result<std::uint64_t> ReplicatedSqlServer::state_digest() const {
  return adjudicate<std::uint64_t>(
      [](sql::SqlStore& s) { return s.state_digest(); });
}

}  // namespace redundancy::techniques
