// Recovery blocks (Randell 1975).
//
// A primary block executes; an explicitly designed *acceptance test* judges
// its result. On rejection the system rolls back to the state it had before
// the primary ran and executes the next alternate, repeating while
// alternates remain.
//
// Taxonomy: deliberate / code / reactive explicit / development faults.
// Pattern: sequential alternatives (Figure 1c).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/parallel_selection.hpp"
#include "core/registry.hpp"
#include "core/sequential_alternatives.hpp"
#include "env/checkpoint.hpp"

namespace redundancy::techniques {

template <typename In, typename Out>
class RecoveryBlocks {
 public:
  /// Stateless form: no rollback is needed because alternates are pure.
  RecoveryBlocks(std::vector<core::Variant<In, Out>> alternates,
                 core::AcceptanceTest<In, Out> acceptance)
      : engine_(std::move(alternates), std::move(acceptance)) {
    engine_.set_obs_label("recovery_blocks");
  }

  /// Stateful form: `state` is checkpointed on entry to run() and restored
  /// before each alternate after a rejection — Randell's recovery cache.
  RecoveryBlocks(std::vector<core::Variant<In, Out>> alternates,
                 core::AcceptanceTest<In, Out> acceptance,
                 env::Checkpointable& state)
      : store_(std::in_place, 2),
        state_(&state),
        engine_(std::move(alternates), std::move(acceptance),
                typename core::SequentialAlternatives<In, Out>::Options{
                    .rollback =
                        [this] {
                          if (state_ != nullptr) {
                            (void)store_->restore_latest(*state_);
                          }
                        },
                    .max_attempts = 0,
                    .hedge = {}}) {
    engine_.set_obs_label("recovery_blocks");
  }

  core::Result<Out> run(const In& input) {
    if (state_ != nullptr) store_->capture(*state_);
    return engine_.run(input);
  }

  /// Memoize accepted results (stateless, deterministic alternate sets
  /// only); keyed by (technique, input digest), invalidated by restart
  /// epochs. See core/redundancy_cache.hpp.
  void enable_cache(core::CacheConfig config = {}) {
    engine_.enable_cache(std::move(config));
  }
  void disable_cache() noexcept { engine_.disable_cache(); }
  [[nodiscard]] core::RedundancyCache<Out>* cache() noexcept {
    return engine_.cache();
  }
  void invalidate_cache() noexcept { engine_.invalidate_cache(); }

  /// Hedge slow primaries: launch the next alternate once the primary has
  /// run past a p95-derived latency budget instead of waiting for it to
  /// fail. Stateless form only — the engine ignores hedging when a rollback
  /// is installed.
  void enable_hedging(
      typename core::SequentialAlternatives<In, Out>::Options::Hedge hedge =
          {.enabled = true}) {
    hedge.enabled = true;
    engine_.set_hedge(hedge);
  }
  [[nodiscard]] std::uint64_t hedge_budget_ns() {
    return engine_.hedge_budget_ns();
  }

  [[nodiscard]] std::size_t last_used_alternate() const noexcept {
    return engine_.last_used();
  }
  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return engine_.metrics();
  }
  void reset_metrics() noexcept { engine_.reset_metrics(); }

  [[nodiscard]] static core::TaxonomyEntry taxonomy() {
    return {
        .name = "Recovery blocks",
        .intention = core::Intention::deliberate,
        .type = core::RedundancyType::code,
        .adjudicator = core::AdjudicatorKind::reactive_explicit,
        .faults = core::TargetFaults::development,
        .pattern = core::ArchitecturalPattern::sequential_alternatives,
        .summary = "check the results of executing a program version and "
                   "switch to a different version if the current execution "
                   "fails",
    };
  }

 private:
  std::optional<env::CheckpointStore> store_;
  env::Checkpointable* state_ = nullptr;
  core::SequentialAlternatives<In, Out> engine_;
};

/// Concurrent recovery blocks: primary and alternates race on the shared
/// pool and the first result to pass the acceptance test is returned
/// (Randell's scheme with the rollback latency traded for redundant
/// execution cost). Only valid for *stateless* (pure) alternates — there is
/// no checkpoint to restore because nothing shared is mutated — and the
/// alternates must be thread-safe. Unlike the sequential form, a rejected
/// alternate is not taken out of service: rejection reflects this input,
/// not component death.
template <typename In, typename Out>
class ConcurrentRecoveryBlocks {
 public:
  ConcurrentRecoveryBlocks(std::vector<core::Variant<In, Out>> alternates,
                           core::AcceptanceTest<In, Out> acceptance)
      : engine_(wrap(std::move(alternates), std::move(acceptance)),
                typename core::ParallelSelection<In, Out>::Options{
                    .disable_on_failure = false,
                    .lazy = true,
                    .concurrency = core::Concurrency::threaded}) {
    engine_.set_obs_label("concurrent_recovery_blocks");
  }

  core::Result<Out> run(const In& input) { return engine_.run(input); }

  /// Index of the alternate whose result was last accepted.
  [[nodiscard]] std::size_t last_used_alternate() const noexcept {
    return engine_.acting();
  }
  [[nodiscard]] const core::Metrics& metrics() const noexcept {
    return engine_.metrics();
  }
  void reset_metrics() noexcept { engine_.reset_metrics(); }

 private:
  static std::vector<typename core::ParallelSelection<In, Out>::Checked> wrap(
      std::vector<core::Variant<In, Out>> alternates,
      core::AcceptanceTest<In, Out> acceptance) {
    std::vector<typename core::ParallelSelection<In, Out>::Checked> checked;
    checked.reserve(alternates.size());
    for (auto& alt : alternates) {
      checked.push_back({std::move(alt), acceptance});
    }
    return checked;
  }

  core::ParallelSelection<In, Out> engine_;
};

}  // namespace redundancy::techniques
