// E16 — rollback-recovery protocols in message-passing systems (Elnozahy
// et al., the survey behind the paper's checkpoint-recovery row).
//
// The same seeded workloads run under uncoordinated checkpointing,
// coordinated checkpointing, and pessimistic message logging; one process
// crashes and each protocol recovers. Shape to reproduce (the survey's
// core comparison):
//   * uncoordinated — cheap checkpoints, but recovery cascades (domino
//     effect): multiple processes roll back, work loss is unbounded and
//     grows with message rate, occasionally all the way to the initial
//     state;
//   * coordinated  — every process rolls back, but never past the last
//     coordinated line: loss bounded by one interval;
//   * message logging (pessimistic) — only the victim rolls back and
//     replay loses no work, at the cost of a synchronous log write per
//     delivery;
//   * optimistic logging — log writes are asynchronous (lag 5 steps), so
//     the victim loses at most its unlogged tail and the cascade is
//     bounded: the middle ground of the design space.
#include <iostream>

#include "rollback/distsim.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace redundancy;
using rollback::Protocol;
using rollback::Simulation;

namespace {

struct Aggregate {
  util::Accumulator rolled, lost, replayed, msg_lost;
  std::size_t dominos_to_origin = 0;
  std::size_t inconsistent = 0;
};

Aggregate evaluate(Protocol protocol, double send_probability,
                   std::size_t runs) {
  Aggregate agg;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    Simulation::Config cfg;
    cfg.processes = 6;
    cfg.protocol = protocol;
    cfg.checkpoint_every = 25;
    cfg.send_probability = send_probability;
    cfg.seed = seed;
    Simulation sim{cfg};
    // Land the crash at a seed-dependent offset inside a checkpoint
    // interval (crashing exactly on a coordinated line would be free).
    sim.run(600 + seed % 23);
    auto report = sim.crash_and_recover(seed % cfg.processes);
    agg.rolled.add(static_cast<double>(report.value().processes_rolled_back));
    agg.lost.add(static_cast<double>(report.value().work_lost));
    agg.replayed.add(static_cast<double>(report.value().messages_replayed));
    agg.msg_lost.add(static_cast<double>(report.value().messages_lost));
    if (report.value().rolled_to_initial_state) ++agg.dominos_to_origin;
    if (!sim.consistent()) ++agg.inconsistent;
  }
  return agg;
}

}  // namespace

int main() {
  constexpr std::size_t kRuns = 40;

  util::Table table{
      "E16. Rollback-recovery protocols: one crash after 600 steps, 6 "
      "processes, checkpoint interval 25 (mean over 40 seeded runs)"};
  table.header({"message rate", "protocol", "procs rolled back", "work lost",
                "msgs lost", "msgs replayed", "domino to origin",
                "inconsistent"});

  for (const double rate : {0.2, 0.5, 0.8}) {
    for (const Protocol protocol :
         {Protocol::uncoordinated, Protocol::coordinated,
          Protocol::message_logging, Protocol::optimistic_logging}) {
      const auto agg = evaluate(protocol, rate, kRuns);
      table.row({util::Table::num(rate, 1), std::string{to_string(protocol)},
                 util::Table::num(agg.rolled.mean(), 2),
                 util::Table::num(agg.lost.mean(), 1),
                 util::Table::num(agg.msg_lost.mean(), 1),
                 util::Table::num(agg.replayed.mean(), 1),
                 util::Table::count(agg.dominos_to_origin),
                 util::Table::count(agg.inconsistent)});
    }
    table.separator();
  }
  table.print(std::cout);
  std::cout << "Shape check: every recovery leaves a consistent system (0\n"
               "orphans). Uncoordinated rollback cascades — the processes\n"
               "rolled back and the work lost grow with the message rate\n"
               "(the domino effect). Coordinated rollback always touches all\n"
               "6 processes but its loss is bounded by one checkpoint\n"
               "interval regardless of chatter. Message logging confines\n"
               "recovery to the single victim with zero lost work, paying\n"
               "instead in replayed (logged) messages; optimistic logging\n"
               "sits between — near-zero loss and a small bounded cascade\n"
               "from the unlogged tail, without the synchronous write.\n";
  return 0;
}
