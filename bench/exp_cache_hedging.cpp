// E-cache. Acceptance experiment for the hot-path overhaul: the result
// cache and the hedging scheduler must each earn their keep on the
// workloads they were built for.
//
// Part A — memoization under a Zipf key distribution. Requests draw keys
// from a Zipf(s=1.0) law over kKeys distinct inputs; the cache capacity is
// chosen as the smallest key-prefix holding >= 90% of the probability
// mass, so the steady-state hit rate lands near 90% by construction (the
// paper-style "hot head" scenario). A 3-variant parallel evaluation with
// ~2 us variant bodies is timed uncached vs cached; the gate is a >= 5x
// throughput gain.
//
// Part B — hedged sequential alternatives on a skewed-latency primary.
// The primary answers in ~200 us except for 1 request in 25 which stalls
// for 20 ms (a GC pause / slow replica model); a ~300 us fallback stands
// by. Plain recovery blocks only engage the fallback on *failure*, so the
// stalls land squarely on p99. With hedging the fallback is raced as soon
// as the primary exceeds a budget derived from the live alternative
// latency histogram; the gate is hedged p99 <= 0.5x the sequential p99.
//
// Emits BENCH_exp_cache_hedging.json in the bench_json_main schema
// (percentiles here are exact order statistics over per-request samples,
// not histogram estimates) plus metrics_cache_hedging.prom.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_evaluation.hpp"
#include "core/redundancy_cache.hpp"
#include "core/sequential_alternatives.hpp"
#include "core/voters.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

using namespace redundancy;

namespace {

// --- part A parameters ------------------------------------------------------
constexpr std::size_t kKeys = 4096;          // Zipf key universe
constexpr double kZipfS = 1.0;               // classic harmonic skew
constexpr double kTargetMass = 0.93;         // cache the head holding 93%:
                                             // LRU churn on the tail costs a
                                             // few points, landing ~90% hits
constexpr std::size_t kZipfWarmup = 10'000;  // fills the cache + the sketch
constexpr std::size_t kZipfRequests = 30'000;
constexpr int kZipfRounds = 3;               // best-of, sheds scheduler noise
constexpr double kSpeedupGate = 5.0;

// --- part B parameters ------------------------------------------------------
constexpr std::size_t kHedgeWarmup = 100;    // seeds the latency histogram
constexpr std::size_t kHedgeRequests = 500;
constexpr int kSlowEvery = 25;               // 4% of requests stall...
constexpr auto kStall = std::chrono::milliseconds(20);  // ...for this long
constexpr std::uint64_t kPrimaryNs = 200'000;
constexpr std::uint64_t kFallbackNs = 300'000;
constexpr double kP99Gate = 0.5;             // hedged p99 vs baseline p99

/// Spin for ~ns of real work (a parser / checksum variant stand-in).
void busy(std::uint64_t ns) {
  const std::uint64_t t0 = obs::now_ns();
  unsigned acc = 1;
  while (obs::now_ns() - t0 < ns) acc = acc * 1664525u + 1013904223u;
  if (acc == 0) std::printf(" ");  // defeat dead-code elimination
}

std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic Zipf sampler: inverse-CDF lookup over precomputed mass.
class ZipfSampler {
 public:
  ZipfSampler() : cdf_(kKeys) {
    double total = 0.0;
    for (std::size_t i = 0; i < kKeys; ++i) {
      total += 1.0 / std::pow(double(i + 1), kZipfS);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  /// Smallest k such that the top-k keys carry >= mass of the distribution.
  [[nodiscard]] std::size_t head_keys(double mass) const {
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), mass);
    return std::size_t(it - cdf_.begin()) + 1;
  }

  [[nodiscard]] int next(std::uint64_t& rng_state) const {
    const double u =
        double(splitmix(rng_state) >> 11) * (1.0 / 9007199254740992.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return int(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

core::ParallelEvaluation<int, int> make_electorate() {
  std::vector<core::Variant<int, int>> variants;
  for (int i = 0; i < 3; ++i) {
    variants.push_back(core::make_variant<int, int>(
        "v" + std::to_string(i), [](const int& x) -> core::Result<int> {
          busy(2'000);
          return x * 2;
        }));
  }
  return core::ParallelEvaluation<int, int>(std::move(variants),
                                            core::majority_voter<int>());
}

struct Series {
  std::vector<double> latency_ns;  // one sample per request
  double mean_ns = 0.0;
  [[nodiscard]] double ops_per_sec() const {
    return mean_ns > 0.0 ? 1e9 / mean_ns : 0.0;
  }
  /// Exact order-statistic percentile (q in [0, 100]) of the samples.
  [[nodiscard]] double percentile(double q) const {
    if (latency_ns.empty()) return 0.0;
    std::vector<double> sorted = latency_ns;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = std::min(
        sorted.size() - 1, std::size_t(q / 100.0 * double(sorted.size())));
    return sorted[idx];
  }
};

/// One warmed round of the Zipf workload; per-request timestamps.
template <typename Engine>
Series run_zipf_round(Engine& engine, const ZipfSampler& zipf) {
  std::uint64_t rng = 0x5EEDBA5Eull;
  for (std::size_t i = 0; i < kZipfWarmup; ++i) {
    (void)engine.run(zipf.next(rng));
  }
  Series s;
  s.latency_ns.reserve(kZipfRequests);
  double total = 0.0;
  std::uint64_t prev = obs::now_ns();
  for (std::size_t i = 0; i < kZipfRequests; ++i) {
    (void)engine.run(zipf.next(rng));
    const std::uint64_t t = obs::now_ns();
    s.latency_ns.push_back(double(t - prev));
    total += double(t - prev);
    prev = t;
  }
  s.mean_ns = total / double(kZipfRequests);
  return s;
}

/// Skewed-latency recovery-block engine: ~200 us primary that stalls 20 ms
/// every kSlowEvery-th call, plus a ~300 us always-correct fallback.
core::SequentialAlternatives<int, int> make_hedge_engine(
    const std::string& label) {
  auto calls = std::make_shared<std::atomic<std::uint64_t>>(0);
  std::vector<core::Variant<int, int>> alts;
  alts.push_back(core::make_variant<int, int>(
      "primary", [calls](const int& x) -> core::Result<int> {
        if (calls->fetch_add(1) % kSlowEvery == kSlowEvery - 1) {
          std::this_thread::sleep_for(kStall);
        } else {
          busy(kPrimaryNs);
        }
        return x + 1;
      }));
  alts.push_back(core::make_variant<int, int>(
      "fallback", [](const int& x) -> core::Result<int> {
        busy(kFallbackNs);
        return x + 1;
      }));
  core::SequentialAlternatives<int, int> engine{std::move(alts),
                                                core::accept_all<int, int>()};
  engine.set_obs_label(label);
  return engine;
}

/// Time kHedgeRequests through the engine, draining hedge stragglers from
/// the shared pool OUTSIDE the timed window so later requests never queue
/// behind a 20 ms sleeper left by an earlier hedge.
Series run_hedge_round(core::SequentialAlternatives<int, int>& engine) {
  for (std::size_t i = 0; i < kHedgeWarmup; ++i) {
    (void)engine.run(int(i));
    util::ThreadPool::shared().wait_idle();
  }
  Series s;
  s.latency_ns.reserve(kHedgeRequests);
  double total = 0.0;
  for (std::size_t i = 0; i < kHedgeRequests; ++i) {
    const std::uint64_t t0 = obs::now_ns();
    (void)engine.run(int(i));
    const double dt = double(obs::now_ns() - t0);
    s.latency_ns.push_back(dt);
    total += dt;
    util::ThreadPool::shared().wait_idle();
  }
  s.mean_ns = total / double(kHedgeRequests);
  return s;
}

void write_json(const std::vector<std::pair<std::string, Series>>& all) {
  const char* path = "BENCH_exp_cache_hedging.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "exp_cache_hedging: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"binary\": \"exp_cache_hedging\",\n");
  std::fprintf(f, "  \"pool_threads\": %zu,\n",
               util::ThreadPool::shared_size_from_env());
  std::fprintf(f, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& [name, s] : all) {
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"ops_per_sec\": %.3f, "
                 "\"latency_ns_mean\": %.1f, \"latency_ns_p50\": %.1f, "
                 "\"latency_ns_p95\": %.1f, \"latency_ns_p99\": %.1f, "
                 "\"repetitions\": %zu, \"threads\": 1}",
                 first ? "" : ",\n", name.c_str(), s.ops_per_sec(), s.mean_ns,
                 s.percentile(50.0), s.percentile(95.0), s.percentile(99.0),
                 s.latency_ns.size());
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main() {
  if (!core::kCacheCompiledIn) {
    std::printf("exp_cache_hedging: built with REDUNDANCY_CACHE_OFF; "
                "nothing to measure -> SKIP\n");
    return 0;
  }

  const ZipfSampler zipf;
  const std::size_t capacity = zipf.head_keys(kTargetMass);

  // --- part A: uncached vs cached throughput on the Zipf workload ----------
  Series uncached;
  for (int r = 0; r < kZipfRounds; ++r) {
    auto engine = make_electorate();
    engine.set_obs_label("cachebench_uncached");
    Series s = run_zipf_round(engine, zipf);
    if (r == 0 || s.mean_ns < uncached.mean_ns) uncached = std::move(s);
  }

  Series cached;
  double hit_rate = 0.0;
  for (int r = 0; r < kZipfRounds; ++r) {
    auto engine = make_electorate();
    engine.set_obs_label("cachebench_cached");
    core::CacheConfig config;
    config.capacity = capacity;
    engine.enable_cache(config);
    Series s = run_zipf_round(engine, zipf);
    if (r == 0 || s.mean_ns < cached.mean_ns) {
      cached = std::move(s);
      hit_rate = engine.cache()->stats().hit_rate();
    }
  }
  const double speedup =
      cached.mean_ns > 0.0 ? uncached.mean_ns / cached.mean_ns : 0.0;

  // --- part B: sequential baseline vs hedged tail latency ------------------
  auto baseline_engine = make_hedge_engine("cachebench_sequential");
  const Series baseline = run_hedge_round(baseline_engine);

  auto hedged_engine = make_hedge_engine("cachebench_hedged");
  typename core::SequentialAlternatives<int, int>::Options::Hedge hedge;
  hedge.enabled = true;
  hedge.quantile = 95.0;
  hedge.multiplier = 2.0;          // budget = 2x live p95 of alternative_ns
  hedge.fallback_budget_ns = 1'000'000;  // until the histogram warms up
  hedge.min_samples = 64;
  hedge.max_budget_ns = 5'000'000;  // never wait more than 5 ms to hedge
  hedged_engine.set_hedge(hedge);
  const Series hedged = run_hedge_round(hedged_engine);
  const std::uint64_t budget_ns = hedged_engine.hedge_budget_ns();
  const std::uint64_t hedge_fires = hedged_engine.metrics().hedged_launches;

  const double p99_ratio = baseline.percentile(99.0) > 0.0
                               ? hedged.percentile(99.0) /
                                     baseline.percentile(99.0)
                               : 1.0;
  const bool pass_cache = speedup >= kSpeedupGate;
  const bool pass_hedge = p99_ratio <= kP99Gate;

  std::printf("E-cache. Result cache + hedging on the hot path\n\n");
  std::printf("Part A: Zipf(s=%.1f) over %zu keys, capacity=%zu "
              "(head holding %.0f%% of mass), %zu requests, best of %d\n",
              kZipfS, kKeys, capacity, kTargetMass * 100.0, kZipfRequests,
              kZipfRounds);
  std::printf("  %-24s %10.1f ns/req  %12.0f req/s\n", "uncached",
              uncached.mean_ns, uncached.ops_per_sec());
  std::printf("  %-24s %10.1f ns/req  %12.0f req/s   hit rate %.1f%%\n",
              "cached", cached.mean_ns, cached.ops_per_sec(),
              hit_rate * 100.0);
  std::printf("  speedup %.2fx (gate >= %.1fx) -> %s\n\n", speedup,
              kSpeedupGate, pass_cache ? "PASS" : "FAIL");

  std::printf("Part B: %zu requests, primary ~%.0f us with a %lld ms stall "
              "every %dth call, fallback ~%.0f us\n",
              kHedgeRequests, kPrimaryNs / 1e3,
              static_cast<long long>(kStall.count()), kSlowEvery,
              kFallbackNs / 1e3);
  std::printf("  %-24s p50 %8.0f us  p95 %8.0f us  p99 %8.0f us\n",
              "sequential baseline", baseline.percentile(50.0) / 1e3,
              baseline.percentile(95.0) / 1e3, baseline.percentile(99.0) / 1e3);
  std::printf("  %-24s p50 %8.0f us  p95 %8.0f us  p99 %8.0f us\n", "hedged",
              hedged.percentile(50.0) / 1e3, hedged.percentile(95.0) / 1e3,
              hedged.percentile(99.0) / 1e3);
  std::printf("  hedge budget %.0f us (live p95-derived), %llu hedges fired\n",
              double(budget_ns) / 1e3,
              static_cast<unsigned long long>(hedge_fires));
  std::printf("  p99 ratio %.3f (gate <= %.2f) -> %s\n\n", p99_ratio, kP99Gate,
              pass_hedge ? "PASS" : "FAIL");

  write_json({{"zipf/uncached", uncached},
              {"zipf/cached", cached},
              {"hedge/sequential_baseline", baseline},
              {"hedge/hedged", hedged}});
  if (obs::MetricsRegistry::instance().write_prometheus_file(
          "metrics_cache_hedging.prom")) {
    std::printf("wrote metrics_cache_hedging.prom\n");
  }
  return (pass_cache && pass_hedge) ? 0 : 1;
}
