// E19 — Section 4.1: exception handling and rule engines / registries
// (Baresi et al.; Modafferi et al.). Developers fill a registry with
// (failure signature → recovery action) rules at design time; runtime
// failures look up and execute the matching rule.
//
// Measured: recovery rate as a function of *registry coverage* — the
// fraction of the failure signatures actually occurring in production for
// which a rule was written. The design-time-knowledge dependence is the
// defining property (and limitation) of the registry approach.
#include <iostream>

#include "techniques/rule_engine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace redundancy;
using services::Message;

namespace {

const std::vector<std::pair<std::string, core::FailureKind>> kSignatures{
    {"getQuote", core::FailureKind::timeout},
    {"getQuote", core::FailureKind::unavailable},
    {"reserve", core::FailureKind::timeout},
    {"reserve", core::FailureKind::wrong_output},
    {"charge", core::FailureKind::unavailable},
    {"charge", core::FailureKind::crash},
    {"notify", core::FailureKind::timeout},
    {"notify", core::FailureKind::crash},
};

core::Result<Message> cached(const Message&) {
  return Message{{"source", std::string{"fallback"}}};
}

}  // namespace

int main() {
  util::Table table{
      "E19. Rule-engine registries: recovery rate vs registry coverage "
      "(8 failure signatures in production, 4000 failures, 5 seeds)"};
  table.header({"rules written", "coverage", "failures recovered",
                "recovery rate", "activations"});

  for (const std::size_t rules_written : {0u, 2u, 4u, 6u, 8u}) {
    double recovered = 0, total = 0, activations = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      techniques::RuleEngine engine;
      // Design time: the developers anticipated the first k signatures.
      for (std::size_t r = 0; r < rules_written; ++r) {
        engine.add_rule({kSignatures[r].first, kSignatures[r].second,
                         "rule-" + std::to_string(r), cached});
      }
      // Production: failures drawn uniformly over all signatures.
      util::Rng rng{seed};
      for (int i = 0; i < 800; ++i) {
        const auto& [op, kind] = kSignatures[rng.index(kSignatures.size())];
        auto out = engine.handle(op, core::failure(kind), {});
        ++total;
        if (out.has_value()) ++recovered;
      }
      activations += static_cast<double>(engine.activations());
    }
    table.row({util::Table::count(rules_written),
               util::Table::pct(double(rules_written) / kSignatures.size(), 0),
               util::Table::num(recovered / 5, 1),
               util::Table::pct(recovered / total, 1),
               util::Table::num(activations / 5, 1)});
  }
  table.print(std::cout);

  // Wildcard rules: one generic handler as the safety net under the
  // specific ones.
  techniques::RuleEngine engine;
  engine.add_rule({"charge", core::FailureKind::unavailable, "specific",
                   [](const Message&) -> core::Result<Message> {
                     return Message{{"source", std::string{"specific"}}};
                   }});
  engine.add_rule({"*", core::FailureKind::unavailable, "generic", cached});
  auto specific =
      engine.handle("charge", core::failure(core::FailureKind::unavailable), {});
  auto generic =
      engine.handle("notify", core::failure(core::FailureKind::unavailable), {});
  util::Table wildcard{"E19b. Rule precedence: specific before wildcard"};
  wildcard.header({"failing operation", "rule that fired"});
  wildcard.row({"charge/unavailable",
                std::get<std::string>(specific.value().at("source"))});
  wildcard.row({"notify/unavailable",
                std::get<std::string>(generic.value().at("source"))});
  wildcard.print(std::cout);

  std::cout << "Shape check: recovery rate tracks registry coverage almost\n"
               "exactly (k/8 of failures recovered with k rules written) —\n"
               "the registry heals precisely what its developers foresaw,\n"
               "nothing more; wildcard rules broaden the net at the price\n"
               "of less specific recoveries.\n";
  return 0;
}
